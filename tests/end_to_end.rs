//! Cross-crate end-to-end tests over generated workloads: pipeline counts,
//! determinism, report integrity, ablation orderings, and the incremental
//! analyzer's consistency with the full run.

use std::collections::HashSet;

use valuecheck::{
    incremental::analyze_commit,
    pipeline::{
        run,
        Options, //
    },
    prune::PruneConfig,
    rank::RankConfig,
};
use vc_ir::Program;
use vc_workload::{
    generate,
    AppProfile,
    PlantKind, //
};

fn scaled_run(profile: AppProfile) -> (vc_workload::GeneratedApp, Program, valuecheck::Analysis) {
    let app = generate(&profile);
    let prog = Program::build(&app.source_refs(), &app.defines).unwrap();
    let analysis = run(&prog, &app.repo, &Options::paper());
    (app, prog, analysis)
}

#[test]
fn pipeline_hits_profile_targets_per_app() {
    for profile in AppProfile::all() {
        let profile = profile.scaled(0.12);
        let (_app, _prog, analysis) = scaled_run(profile.clone());
        assert_eq!(
            analysis.cross_scope_candidates,
            profile.original_candidates(),
            "{}",
            profile.name
        );
        assert_eq!(analysis.detected(), profile.detected(), "{}", profile.name);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let profile = AppProfile::nfs_ganesha().scaled(0.15);
    let (_, _, a) = scaled_run(profile.clone());
    let (_, _, b) = scaled_run(profile);
    let rows_a: Vec<String> = a
        .report
        .rows
        .iter()
        .map(|r| format!("{}:{}:{}", r.function, r.variable, r.line))
        .collect();
    let rows_b: Vec<String> = b
        .report
        .rows
        .iter()
        .map(|r| format!("{}:{}:{}", r.function, r.variable, r.line))
        .collect();
    assert_eq!(rows_a, rows_b);
}

#[test]
fn report_rows_are_ranked_by_familiarity() {
    let (_, _, analysis) = scaled_run(AppProfile::linux().scaled(0.15));
    let fams: Vec<f64> = analysis
        .report
        .rows
        .iter()
        .filter_map(|r| r.familiarity)
        .collect();
    for w in fams.windows(2) {
        assert!(w[0] <= w[1] + 1e-12, "ranking not ascending: {fams:?}");
    }
    // Ranks are 1..=n.
    for (i, r) in analysis.report.rows.iter().enumerate() {
        assert_eq!(r.rank, i + 1);
    }
}

#[test]
fn csv_report_round_trips_row_count() {
    let (_, _, analysis) = scaled_run(AppProfile::openssl().scaled(0.15));
    let csv = analysis.report.to_csv();
    assert_eq!(csv.lines().count(), analysis.report.rows.len() + 1);
    assert!(csv.starts_with("rank,file,line,function"));
}

#[test]
fn cross_scope_filter_only_removes_non_cross() {
    let profile = AppProfile::openssl().scaled(0.15);
    let app = generate(&profile);
    let prog = Program::build(&app.source_refs(), &app.defines).unwrap();
    let with = run(&prog, &app.repo, &Options::paper());
    let without = run(
        &prog,
        &app.repo,
        &Options {
            cross_scope_only: false,
            ..Options::paper()
        },
    );
    assert!(without.cross_scope_candidates >= with.cross_scope_candidates);
    // Every finding of the filtered run also appears in the unfiltered one.
    let unfiltered: HashSet<(String, String)> = without
        .report
        .rows
        .iter()
        .map(|r| (r.function.clone(), r.variable.clone()))
        .collect();
    for r in &with.report.rows {
        assert!(
            unfiltered.contains(&(r.function.clone(), r.variable.clone())),
            "{}:{} missing from unfiltered run",
            r.function,
            r.variable
        );
    }
    // The non-cross pool (drifter redundancies, benign ignorers) only shows
    // up in the unfiltered run.
    let planted_non_cross = app
        .truth
        .planted
        .iter()
        .filter(|p| matches!(p.kind, PlantKind::NonCross { .. }))
        .count();
    assert!(planted_non_cross > 0);
    assert!(without.detected() - with.detected() > 0);
}

#[test]
fn disabling_pruners_reports_more() {
    let profile = AppProfile::nfs_ganesha().scaled(0.15);
    let app = generate(&profile);
    let prog = Program::build(&app.source_refs(), &app.defines).unwrap();
    let full = run(&prog, &app.repo, &Options::paper());
    let unpruned = run(
        &prog,
        &app.repo,
        &Options {
            prune: PruneConfig {
                config_dependency: false,
                cursor: false,
                unused_hints: false,
                peer_definitions: false,
                ..PruneConfig::default()
            },
            ..Options::paper()
        },
    );
    assert_eq!(
        unpruned.detected(),
        full.detected() + full.prune_outcome.total_pruned()
    );
}

#[test]
fn incremental_findings_agree_with_full_run_at_head() {
    let profile = AppProfile::openssl().scaled(0.1);
    let app = generate(&profile);
    let prog = Program::build(&app.source_refs(), &app.defines).unwrap();
    let full = run(&prog, &app.repo, &Options::paper());
    let head = app.repo.head().unwrap();
    let inc = analyze_commit(
        &app.repo,
        head,
        &app.defines,
        &PruneConfig::default(),
        &RankConfig::default(),
    )
    .unwrap();
    // Every incremental finding (restricted to the changed files) must be a
    // subset of the full run's findings on those files.
    let full_ids: HashSet<(String, String)> = full
        .report
        .rows
        .iter()
        .map(|r| (r.function.clone(), r.variable.clone()))
        .collect();
    for f in &inc.findings {
        let id = (
            f.item.candidate.func_name.clone(),
            f.item.candidate.var_name.clone(),
        );
        assert!(full_ids.contains(&id), "incremental-only finding {id:?}");
    }
}

#[test]
fn generated_loc_is_substantial() {
    // Table 7's scale column: full-scale workloads total ~85k MiniC lines.
    let total: usize = AppProfile::all()
        .iter()
        .map(|p| generate(&p.scaled(0.1)).loc())
        .sum();
    assert!(total > 5_000, "scaled LOC too small: {total}");
}
