//! Round-trip of the CLI data path: a generated workload exported to disk
//! in `vcheck`'s project layout (sources + history.json), re-loaded through
//! `valuecheck::project::load_dir`, and analysed — the findings must match
//! the in-memory pipeline exactly.

use std::fs;

use valuecheck::{
    pipeline::{
        run,
        Options, //
    },
    project::load_dir,
};
use vc_ir::Program;
use vc_vcs::HistorySpec;
use vc_workload::{
    generate,
    AppProfile, //
};

#[test]
fn exported_project_reanalyzes_identically() {
    let app = generate(&AppProfile::nfs_ganesha().scaled(0.12));

    // In-memory analysis.
    let prog = Program::build(&app.source_refs(), &app.defines).unwrap();
    let mem = run(&prog, &app.repo, &Options::paper());

    // Export to disk exactly as `genapp` does.
    let dir = std::env::temp_dir().join(format!("vc_roundtrip_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    for (path, content) in &app.sources {
        let full = dir.join(path);
        fs::create_dir_all(full.parent().unwrap()).unwrap();
        fs::write(&full, content).unwrap();
    }
    let spec = HistorySpec::from_repo(&app.repo);
    fs::write(dir.join("history.json"), spec.to_json()).unwrap();

    // Re-load through the CLI path and re-analyse.
    let project = load_dir(&dir).unwrap();
    assert!(project.has_history);
    assert_eq!(project.sources.len(), app.sources.len());
    let prog2 = Program::build(&project.source_refs(), &app.defines).unwrap();
    let disk = run(&prog2, &project.repo, &Options::paper());

    let ids = |a: &valuecheck::Analysis| -> Vec<(String, String)> {
        a.report
            .rows
            .iter()
            .map(|r| (r.function.clone(), r.variable.clone()))
            .collect()
    };
    assert_eq!(mem.raw_candidates, disk.raw_candidates);
    assert_eq!(mem.cross_scope_candidates, disk.cross_scope_candidates);
    assert_eq!(ids(&mem), ids(&disk));

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn history_spec_preserves_blame() {
    let app = generate(&AppProfile::openssl().scaled(0.1));
    let rebuilt = HistorySpec::from_repo(&app.repo).build();
    // Spot-check blame equality over every file's first and last lines.
    for path in app.repo.paths() {
        let n = app.repo.line_count(path) as u32;
        for line in [1, n.max(1)] {
            let a = app
                .repo
                .blame(path, line)
                .map(|b| app.repo.author(b.author).name.clone());
            let b = rebuilt
                .blame(path, line)
                .map(|b| rebuilt.author(b.author).name.clone());
            assert_eq!(a, b, "{path}:{line}");
        }
    }
}
