//! Cross-crate integration tests reconstructing the paper's figures:
//! Fig. 1a (bitmap attribute), Fig. 1b (bufsz), Fig. 5 (cursor), Fig. 6b
//! (semantic host bug), and Fig. 8 (the bug only ValueCheck finds).

use std::collections::HashSet;

use valuecheck::{
    pipeline::{
        run,
        Options, //
    },
    Scenario,
};
use vc_baselines::{
    clang_unused,
    coverity_unused,
    infer_unused,
    smatch_unused, //
};
use vc_ir::{
    parser::parse,
    FileId,
    Program, //
};
use vc_vcs::{
    FileWrite,
    Repository, //
};

/// Builds a two-commit history: `author1` writes `v1`, `author2` writes `v2`.
fn two_authors(path: &str, v1: &str, v2: &str) -> Repository {
    let mut repo = Repository::new();
    let a1 = repo.add_author("author1");
    let a2 = repo.add_author("author2");
    repo.commit(
        a1,
        1_400_000_000,
        "original",
        vec![FileWrite {
            path: path.into(),
            content: v1.into(),
        }],
    );
    repo.commit(
        a2,
        1_500_000_000,
        "rework",
        vec![FileWrite {
            path: path.into(),
            content: v2.into(),
        }],
    );
    repo
}

#[test]
fn figure_1a_bitmap_attribute_bug() {
    let v1 = "int next_attr(int *bm);\n\
              void set_bit(int *m, int a);\n\
              int conv(int *bm, int *m) {\n\
              int attr = next_attr(bm);\n\
              while (attr != -1) { set_bit(m, attr); attr = next_attr(bm); }\n\
              return 0;\n\
              }\n";
    let v2 = "int next_attr(int *bm);\n\
              void set_bit(int *m, int a);\n\
              int conv(int *bm, int *m) {\n\
              int attr = next_attr(bm);\n\
              for (attr = next_attr(bm); attr != -1; attr = next_attr(bm)) { set_bit(m, attr); }\n\
              return 0;\n\
              }\n";
    let repo = two_authors("attrs.c", v1, v2);
    let prog = Program::build(&[("attrs.c", v2)], &[]).unwrap();
    let analysis = run(&prog, &repo, &Options::paper());
    assert_eq!(analysis.detected(), 1);
    let cand = &analysis.ranked[0].item.candidate;
    assert_eq!(cand.var_name, "attr");
    assert_eq!(cand.span.line(), 4);
    assert_eq!(cand.overwriters.len(), 1);
    assert_eq!(cand.overwriters[0].line(), 5);
}

#[test]
fn figure_1b_bufsz_configuration_bug() {
    let logfile = "void setup(char *p, size_t n);\n\
                   int logfile_mod_open(char *path, size_t bufsz) {\n\
                   bufsz = 1400;\n\
                   if (bufsz > 0) { setup(path, bufsz); }\n\
                   return 0;\n\
                   }\n";
    let caller = "int logfile_mod_open(char *path, size_t bufsz);\n\
                  void keep(int h);\n\
                  void init(void) {\n\
                  int h = logfile_mod_open(\"headers.log\", 0);\n\
                  keep(h);\n\
                  }\n";
    let mut repo = Repository::new();
    let author2 = repo.add_author("author2");
    let author1 = repo.add_author("author1");
    repo.commit(
        author2,
        1_400_000_000,
        "log module",
        vec![FileWrite {
            path: "logfile.c".into(),
            content: logfile.into(),
        }],
    );
    repo.commit(
        author1,
        1_450_000_000,
        "wire logging",
        vec![FileWrite {
            path: "main.c".into(),
            content: caller.into(),
        }],
    );
    let prog = Program::build(&[("logfile.c", logfile), ("main.c", caller)], &[]).unwrap();
    let analysis = run(&prog, &repo, &Options::paper());
    let bufsz = analysis
        .ranked
        .iter()
        .find(|r| r.item.candidate.var_name == "bufsz")
        .expect("bufsz finding");
    assert!(matches!(
        bufsz.item.candidate.scenario,
        Scenario::Param { index: 1 }
    ));
    assert!(bufsz.item.cross_scope);
}

#[test]
fn figure_5_cursor_is_pruned_not_reported() {
    // dashes_to_underscores: the trailing `*o++ = '\0'` is a cursor. The
    // overwrite by a second author makes it cross-scope, but the cursor
    // pruner removes it.
    let v1 = "void dashes(char *i, char *o) {\n\
              while (*i) { if (*i == '-') { *o++ = '_'; } i++; }\n\
              *o++ = '\\0';\n\
              }\n";
    let v2 = "char *reset_out(void);\n\
              void use_out(char *o);\n\
              void dashes(char *i, char *o) {\n\
              while (*i) { if (*i == '-') { *o++ = '_'; } i++; }\n\
              *o++ = '\\0';\n\
              o = reset_out();\n\
              use_out(o);\n\
              }\n";
    let repo = two_authors("fmt.c", v1, v2);
    let prog = Program::build(&[("fmt.c", v2)], &[]).unwrap();
    let analysis = run(&prog, &repo, &Options::paper());
    assert_eq!(analysis.detected(), 0, "{:?}", analysis.report.rows);
    assert_eq!(
        analysis.pruned_by(valuecheck::PruneReason::Cursor),
        1,
        "cursor must be pruned, not reported"
    );
}

#[test]
fn figure_6b_wrong_host_semantic_bug() {
    // `to_host` assigned but the call uses the wrong variable afterwards.
    let v1 = "int make_host(int id);\n\
              void assign_host(int h, int *sctx);\n\
              void setup(int id, int *sctx) {\n\
              int to_host = make_host(id);\n\
              assign_host(to_host, sctx);\n\
              }\n";
    let v2 = "int make_host(int id);\n\
              void assign_host(int h, int *sctx);\n\
              void setup(int id, int *sctx) {\n\
              int to_host = make_host(id);\n\
              assign_host(id, sctx);\n\
              }\n";
    let repo = two_authors("host.c", v1, v2);
    let prog = Program::build(&[("host.c", v2)], &[]).unwrap();
    let analysis = run(&prog, &repo, &Options::paper());
    assert_eq!(analysis.detected(), 1);
    assert_eq!(analysis.ranked[0].item.candidate.var_name, "to_host");
}

#[test]
fn figure_8_only_valuecheck_detects() {
    // get_permset's result is overwritten; `ret` is referenced in `if (ret)`
    // so AST tools consider it used, and Coverity cannot infer a
    // single-call-site function's contract.
    let v1 = "int get_permset(int en);\n\
              int calc_mask(int *acl);\n\
              void handle_err(int r);\n\
              int fsal_acl(int en, int *acl) {\n\
              int ret = get_permset(en);\n\
              if (ret) { handle_err(ret); }\n\
              return 0;\n\
              }\n";
    let v2 = "int get_permset(int en);\n\
              int calc_mask(int *acl);\n\
              void handle_err(int r);\n\
              int fsal_acl(int en, int *acl) {\n\
              int ret = get_permset(en);\n\
              ret = calc_mask(acl);\n\
              if (ret) { handle_err(ret); }\n\
              return 0;\n\
              }\n";
    let repo = two_authors("acl.c", v1, v2);
    let prog = Program::build(&[("acl.c", v2)], &[]).unwrap();

    // ValueCheck: detected, cross-scope, attributed to author2.
    let analysis = run(&prog, &repo, &Options::paper());
    assert_eq!(analysis.detected(), 1);
    assert_eq!(analysis.ranked[0].item.candidate.var_name, "ret");

    // Clang: silent (ret is referenced).
    let module = parse(FileId(0), v2).unwrap();
    assert!(clang_unused(&[("acl.c".to_string(), module.clone())]).is_empty());

    // Smatch: silent on the unused-return pattern (syntactic read exists).
    let smatch = smatch_unused(&[("acl.c".to_string(), module)]);
    assert!(
        smatch.iter().all(|f| f.kind != "unused-return"),
        "{smatch:?}"
    );

    // Coverity: the unchecked-return arm cannot fire (single call site) —
    // but its dead-store arm does see the overwritten call result. The
    // *combination* the paper highlights is the ignored-result variant:
    let v2_ignored = v2.replace("int ret = get_permset(en);\n", "get_permset(en);\n");
    let v2_ignored = v2_ignored.replace("ret = calc_mask(acl);", "int ret = calc_mask(acl);");
    let prog2 = Program::build(&[("acl.c", v2_ignored.as_str())], &[]).unwrap();
    let cov = coverity_unused(&prog2, &HashSet::new());
    assert!(
        cov.iter().all(|f| f.kind != "unchecked-return"),
        "single call site must be uninferable: {cov:?}"
    );

    // Infer: does see this dead store (it is flow-sensitive) — and the
    // paper confirms every true Infer finding is also a ValueCheck finding.
    let infer = infer_unused(&prog);
    assert_eq!(infer.len(), 1);
    assert_eq!(infer[0].variable, "ret");
}
