#!/usr/bin/env sh
# Offline CI gate: build, test, format. No network access required — the
# workspace has zero crates-io dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# faults: the 32-seed fault-injection sweep (crates/workload/tests/faults.rs)
# — every seeded run must survive truncated files, degenerate CFGs, absurd
# arity, missing blame, and an injected panic, with a balanced funnel and
# exactly one piece of evidence per fault.
echo "==> cargo test -p vc-workload --test faults -q (32 seeds)"
cargo test -p vc-workload --test faults -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: OK"
