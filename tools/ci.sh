#!/usr/bin/env sh
# Offline CI gate: build, test, format. No network access required — the
# workspace has zero crates-io dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# faults: the 32-seed fault-injection sweep (crates/workload/tests/faults.rs)
# — every seeded run must survive truncated files, degenerate CFGs, absurd
# arity, missing blame, and an injected panic, with a balanced funnel and
# exactly one piece of evidence per fault.
echo "==> cargo test -p vc-workload --test faults -q (32 seeds)"
cargo test -p vc-workload --test faults -q

# recovery: the parse-recovery corruption sweep
# (crates/workload/tests/recovery.rs) — 32 seeded apps, each corrupted five
# ways (truncation, deleted brace, lexer garbage, unterminated string,
# mangled signature); zero escaped panics, every planted bug outside the
# corrupted region keeps its fingerprint, exactly one function-granular
# parse failure per corruption, and byte-identical reports across --jobs
# and a journaled --resume on corrupted input.
echo "==> cargo test -p vc-workload --test recovery -q (32 seeds x 5 corruption kinds)"
cargo test -p vc-workload --test recovery -q

# crash: the kill-at-random-point sweep (crates/workload/tests/crash.rs) —
# child processes abort mid-journal-append (clean and torn) at every grid
# offset; resuming from the survivor journal must lose and duplicate
# nothing. Bounded seeds keep this step well under a minute.
echo "==> cargo test -p vc-workload --test crash -q (kill-point sweep)"
cargo test -p vc-workload --test crash -q

# sentinel: byte-identical reports and --stats across --jobs 1/2/8, journal
# replay idempotence, and the fault sweep under parallel workers.
echo "==> cargo test -p vc-workload --test sentinel -q"
cargo test -p vc-workload --test sentinel -q

# delta: differential scans over generated two-commit workloads — the
# planted new/fixed/persisting split is recovered exactly, pure line drift
# never misclassifies a finding, and the delta report is byte-identical for
# --jobs 1 vs --jobs 4 and across a journaled resume.
echo "==> cargo test -p vc-workload --test delta -q"
cargo test -p vc-workload --test delta -q

# history: lifecycle replays over generated multi-commit workloads
# (crates/workload/tests/history.rs) — every planted bug's scripted fate
# (live / fixed / suppressed / churned) is classified correctly, the
# lifecycle funnel balances (born = fixed + suppressed + live), a seeded
# suppression-store entry keeps covering its finding under drift, and the
# findings database is byte-identical for --jobs 1 vs --jobs 4 and across
# a journaled resume.
echo "==> cargo test -p vc-workload --test history -q"
cargo test -p vc-workload --test history -q

# serve: chaos-proven recovery of the warm scan daemon
# (crates/core/tests/chaos.rs) — seeded request streams against the real
# `vcheck serve` binary, interleaving on-disk corruption, malformed lines,
# oversized bursts against a wedged worker, injected panics, and mid-stream
# kill+restart; zero unexpected daemon exits, every clean warm reply
# byte-identical to a cold batch scan of the same tree, and balanced
# protocol/funnel counters. The memory observatory (chaos_mem.rs) holds
# live_bytes inside a fixed band over 200 warm cycles.
echo "==> cargo test -p valuecheck --test chaos --test chaos_mem -q (serve chaos)"
cargo test -p valuecheck --test chaos -q
cargo test -p valuecheck --test chaos_mem -q

# summaries: the per-function summary layer (crates/core/tests/summaries.rs)
# — dead-store facts built exactly once per function per cold scan
# (summary.built == function count, counter-verified), reused rather than
# rebuilt on a warm `serve` re-scan of an unchanged tree, reports
# byte-identical across the sequential pipeline / --jobs 4 / serve
# warm+cold, and cursor prune decisions identical to the pre-summary
# inline rescan on generated truth workloads.
echo "==> cargo test -p valuecheck --test summaries -q (summary layer)"
cargo test -p valuecheck --test summaries -q

# bench: the perf observatory (crates/bench/src/perf.rs) — a deterministic
# scaled scan measured median-of-N, written as BENCH_scan.json /
# BENCH_stages.json. The serve_bench step is the sustained-throughput case:
# a seeded edit storm through the in-process warm serve engine via the
# daemon's own request path, reduced to exact latency percentiles
# (serve/sustained_p50|p95|p99) plus req/s, written as BENCH_serve.json.
# One perfgate run then gates all three reports against the committed
# bench/baseline.json with noise-tolerant thresholds (both 1.6x slower AND
# 10ms absolutely slower before a case regresses). Refresh with
# `tools/perfgate --write-baseline` when a slowdown is intentional.
echo "==> perf observatory (scaled bench + serve edit storm)"
cargo run --quiet --release -p vc-bench --bin perf -- --out .
echo "==> serve_bench: BENCH_serve.json carries sustained req/s + percentiles"
grep -q '"throughput_rps"' BENCH_serve.json
grep -q '"serve/sustained_p99"' BENCH_serve.json
tools/perfgate

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: OK"
