#!/usr/bin/env sh
# Offline CI gate: build, test, format. No network access required — the
# workspace has zero crates-io dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: OK"
