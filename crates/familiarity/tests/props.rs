//! Property tests for the familiarity models: DOK monotonicity and OLS
//! weight recovery for arbitrary (well-conditioned) true models.
//!
//! Each property runs as a deterministic loop over cases drawn from a
//! seeded [`SplitMix64`]; a failing case prints its case number so it can
//! be replayed exactly.

use vc_familiarity::{
    fit_dok,
    DokModel,
    FactorMask,
    Metrics, //
};
use vc_obs::SplitMix64;

/// Uniform draw from the half-open interval `[lo, hi)`.
fn uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

fn random_metrics(rng: &mut SplitMix64) -> Metrics {
    Metrics {
        fa: rng.range_usize(0, 2) as f64,
        dl: uniform(rng, 0.0, 40.0),
        ac: uniform(rng, 0.0, 40.0),
    }
}

/// Familiarity is monotone: more first-authorship or deliveries never
/// lowers it; more foreign deliveries never raises it.
#[test]
fn dok_is_monotone() {
    let mut rng = SplitMix64::new(0xD1);
    for case in 0..200 {
        let m = random_metrics(&mut rng);
        let bump = uniform(&mut rng, 0.1, 10.0);
        let model = DokModel::PAPER;
        let base = model.score(&m);
        let more_dl = model.score(&Metrics {
            dl: m.dl + bump,
            ..m
        });
        let with_fa = model.score(&Metrics { fa: 1.0, ..m });
        let without_fa = model.score(&Metrics { fa: 0.0, ..m });
        let more_ac = model.score(&Metrics {
            ac: m.ac + bump,
            ..m
        });
        assert!(more_dl >= base, "case {case}: {m:?} bump {bump}");
        assert!(with_fa >= without_fa, "case {case}: {m:?}");
        assert!(more_ac <= base, "case {case}: {m:?} bump {bump}");
    }
}

/// Masking a factor makes the score independent of that factor.
#[test]
fn masked_factor_has_no_influence() {
    let mut rng = SplitMix64::new(0xD2);
    for case in 0..200 {
        let m = random_metrics(&mut rng);
        let bump = uniform(&mut rng, 0.5, 20.0);
        let model = DokModel::PAPER;
        for (factor, bumped) in [
            (
                "ac",
                Metrics {
                    ac: m.ac + bump,
                    ..m
                },
            ),
            (
                "dl",
                Metrics {
                    dl: m.dl + bump,
                    ..m
                },
            ),
            (
                "fa",
                Metrics {
                    fa: 1.0 - m.fa,
                    ..m
                },
            ),
        ] {
            let mask = FactorMask::without(factor);
            assert!(
                (model.score_masked(&m, mask) - model.score_masked(&bumped, mask)).abs() < 1e-12,
                "case {case}: factor {factor} leaked for {m:?}"
            );
        }
    }
}

/// OLS recovers an arbitrary true model from noiseless samples over a
/// factor grid.
#[test]
fn fit_recovers_arbitrary_weights() {
    let mut rng = SplitMix64::new(0xD3);
    for case in 0..100 {
        let truth = DokModel {
            alpha0: uniform(&mut rng, -5.0, 5.0),
            alpha_fa: uniform(&mut rng, -3.0, 3.0),
            alpha_dl: uniform(&mut rng, -1.0, 1.0),
            alpha_ac: uniform(&mut rng, -2.0, 2.0),
        };
        let mut samples = Vec::new();
        for fa in [0.0, 1.0] {
            for dl in [0.0, 2.0, 7.0, 19.0] {
                for ac in [0.0, 1.0, 5.0, 14.0] {
                    let m = Metrics { fa, dl, ac };
                    samples.push((m, truth.score(&m)));
                }
            }
        }
        let fitted = fit_dok(&samples).expect("well-conditioned grid");
        assert!((fitted.alpha0 - truth.alpha0).abs() < 1e-6, "case {case}");
        assert!(
            (fitted.alpha_fa - truth.alpha_fa).abs() < 1e-6,
            "case {case}"
        );
        assert!(
            (fitted.alpha_dl - truth.alpha_dl).abs() < 1e-6,
            "case {case}"
        );
        assert!(
            (fitted.alpha_ac - truth.alpha_ac).abs() < 1e-6,
            "case {case}"
        );
    }
}
