//! Property tests for the familiarity models: DOK monotonicity and OLS
//! weight recovery for arbitrary (well-conditioned) true models.

use proptest::prelude::*;
use vc_familiarity::{
    fit_dok,
    DokModel,
    FactorMask,
    Metrics, //
};

fn metrics_strategy() -> impl Strategy<Value = Metrics> {
    (0u8..2, 0.0f64..40.0, 0.0f64..40.0).prop_map(|(fa, dl, ac)| Metrics {
        fa: fa as f64,
        dl,
        ac,
    })
}

proptest! {
    /// Familiarity is monotone: more first-authorship or deliveries never
    /// lowers it; more foreign deliveries never raises it.
    #[test]
    fn dok_is_monotone(m in metrics_strategy(), bump in 0.1f64..10.0) {
        let model = DokModel::PAPER;
        let base = model.score(&m);
        let more_dl = model.score(&Metrics { dl: m.dl + bump, ..m });
        let with_fa = model.score(&Metrics { fa: 1.0, ..m });
        let without_fa = model.score(&Metrics { fa: 0.0, ..m });
        let more_ac = model.score(&Metrics { ac: m.ac + bump, ..m });
        prop_assert!(more_dl >= base);
        prop_assert!(with_fa >= without_fa);
        prop_assert!(more_ac <= base);
    }

    /// Masking a factor makes the score independent of that factor.
    #[test]
    fn masked_factor_has_no_influence(m in metrics_strategy(), bump in 0.5f64..20.0) {
        let model = DokModel::PAPER;
        for (factor, bumped) in [
            ("ac", Metrics { ac: m.ac + bump, ..m }),
            ("dl", Metrics { dl: m.dl + bump, ..m }),
            ("fa", Metrics { fa: 1.0 - m.fa, ..m }),
        ] {
            let mask = FactorMask::without(factor);
            prop_assert!(
                (model.score_masked(&m, mask) - model.score_masked(&bumped, mask)).abs() < 1e-12,
                "factor {factor} leaked"
            );
        }
    }

    /// OLS recovers an arbitrary true model from noiseless samples over a
    /// factor grid.
    #[test]
    fn fit_recovers_arbitrary_weights(
        a0 in -5.0f64..5.0,
        afa in -3.0f64..3.0,
        adl in -1.0f64..1.0,
        aac in -2.0f64..2.0,
    ) {
        let truth = DokModel {
            alpha0: a0,
            alpha_fa: afa,
            alpha_dl: adl,
            alpha_ac: aac,
        };
        let mut samples = Vec::new();
        for fa in [0.0, 1.0] {
            for dl in [0.0, 2.0, 7.0, 19.0] {
                for ac in [0.0, 1.0, 5.0, 14.0] {
                    let m = Metrics { fa, dl, ac };
                    samples.push((m, truth.score(&m)));
                }
            }
        }
        let fitted = fit_dok(&samples).expect("well-conditioned grid");
        prop_assert!((fitted.alpha0 - truth.alpha0).abs() < 1e-6);
        prop_assert!((fitted.alpha_fa - truth.alpha_fa).abs() < 1e-6);
        prop_assert!((fitted.alpha_dl - truth.alpha_dl).abs() < 1e-6);
        prop_assert!((fitted.alpha_ac - truth.alpha_ac).abs() < 1e-6);
    }
}
