//! # vc-familiarity — code-familiarity models
//!
//! The software-engineering substrate of the ValueCheck reproduction's
//! ranking stage (§6 of the paper):
//!
//! - [`metrics::Metrics`] — FA/DL/AC factor extraction from the VCS log;
//! - [`dok::DokModel`] — the degree-of-knowledge linear model, with the
//!   paper's fitted weights as [`dok::DokModel::PAPER`] and per-factor
//!   ablation masks for the Table 6 experiment;
//! - [`fit::fit_dok`] — OLS re-fitting of the weights from self-rating
//!   samples, replicating the paper's calibration procedure;
//! - [`ea::EaModel`] — the alternative EA model of §9.2.

pub mod dok;
pub mod ea;
pub mod fit;
pub mod metrics;

pub use dok::{
    DokModel,
    FactorMask, //
};
pub use ea::EaModel;
pub use fit::fit_dok;
pub use metrics::Metrics;
