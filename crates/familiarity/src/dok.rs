//! The degree-of-knowledge (DOK) code-familiarity model.
//!
//! `DOK = α₀ + α_FA·FA + α_DL·DL − α_AC·ln(1 + AC)` (§6 of the paper), with
//! the weights the authors fitted from developer self-ratings:
//! `α₀ = 3.1, α_FA = 1.2, α_DL = 0.2, α_AC = 0.5`.
//!
//! Lower DOK means the author is *less* familiar with the file, so unused
//! definitions they introduced rank higher for review.

use crate::metrics::Metrics;

/// A linear DOK model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DokModel {
    /// Intercept α₀.
    pub alpha0: f64,
    /// First-authorship weight α_FA.
    pub alpha_fa: f64,
    /// Deliveries weight α_DL.
    pub alpha_dl: f64,
    /// Acceptances weight α_AC (applied to `ln(1+AC)` with a minus sign).
    pub alpha_ac: f64,
}

/// Which DOK factors are active; used by the Table 6 ablations
/// (w/o AC, w/o DL, w/o FA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FactorMask {
    /// Include the FA term.
    pub fa: bool,
    /// Include the DL term.
    pub dl: bool,
    /// Include the AC term.
    pub ac: bool,
}

impl Default for FactorMask {
    fn default() -> Self {
        Self {
            fa: true,
            dl: true,
            ac: true,
        }
    }
}

impl FactorMask {
    /// All factors active.
    pub const ALL: FactorMask = FactorMask {
        fa: true,
        dl: true,
        ac: true,
    };

    /// Drops one factor by name (`"fa"`, `"dl"`, `"ac"`).
    pub fn without(factor: &str) -> FactorMask {
        let mut m = FactorMask::ALL;
        match factor {
            "fa" => m.fa = false,
            "dl" => m.dl = false,
            "ac" => m.ac = false,
            _ => {}
        }
        m
    }
}

impl DokModel {
    /// The weights reported in §6 of the paper.
    pub const PAPER: DokModel = DokModel {
        alpha0: 3.1,
        alpha_fa: 1.2,
        alpha_dl: 0.2,
        alpha_ac: 0.5,
    };

    /// Scores familiarity for the given metrics; higher = more familiar.
    pub fn score(&self, m: &Metrics) -> f64 {
        self.score_masked(m, FactorMask::ALL)
    }

    /// Scores with some factors ablated (Table 6).
    pub fn score_masked(&self, m: &Metrics, mask: FactorMask) -> f64 {
        let mut s = self.alpha0;
        if mask.fa {
            s += self.alpha_fa * m.fa;
        }
        if mask.dl {
            s += self.alpha_dl * m.dl;
        }
        if mask.ac {
            s -= self.alpha_ac * (1.0 + m.ac).ln();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(fa: f64, dl: f64, ac: f64) -> Metrics {
        Metrics { fa, dl, ac }
    }

    #[test]
    fn paper_weights_score_shape() {
        let model = DokModel::PAPER;
        // A first author with many deliveries is more familiar than a
        // stranger to the file.
        let owner = model.score(&m(1.0, 10.0, 2.0));
        let stranger = model.score(&m(0.0, 0.0, 30.0));
        assert!(owner > stranger);
    }

    #[test]
    fn monotone_in_fa_and_dl() {
        let model = DokModel::PAPER;
        assert!(model.score(&m(1.0, 3.0, 5.0)) > model.score(&m(0.0, 3.0, 5.0)));
        assert!(model.score(&m(0.0, 4.0, 5.0)) > model.score(&m(0.0, 3.0, 5.0)));
    }

    #[test]
    fn antitone_in_ac() {
        let model = DokModel::PAPER;
        assert!(model.score(&m(0.0, 3.0, 10.0)) < model.score(&m(0.0, 3.0, 2.0)));
    }

    #[test]
    fn masking_removes_factor_influence() {
        let model = DokModel::PAPER;
        let no_ac = FactorMask::without("ac");
        assert_eq!(
            model.score_masked(&m(1.0, 2.0, 5.0), no_ac),
            model.score_masked(&m(1.0, 2.0, 50.0), no_ac)
        );
        let no_fa = FactorMask::without("fa");
        assert_eq!(
            model.score_masked(&m(0.0, 2.0, 5.0), no_fa),
            model.score_masked(&m(1.0, 2.0, 5.0), no_fa)
        );
        let no_dl = FactorMask::without("dl");
        assert_eq!(
            model.score_masked(&m(1.0, 2.0, 5.0), no_dl),
            model.score_masked(&m(1.0, 9.0, 5.0), no_dl)
        );
    }
}
