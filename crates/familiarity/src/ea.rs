//! The EA (expertise-atom) alternative familiarity model.
//!
//! §9.2 of the paper discusses the EA model \[49\] as an alternative to DOK
//! that "models the type of commits made by a developer, such as bug fixes,
//! refactoring, and new functionality" without requiring developer
//! participation. This implementation classifies a developer's commits to a
//! file by message keywords and combines per-kind counts with fixed weights:
//! authoring new functionality teaches more than a mechanical refactor.

use vc_vcs::{
    AuthorId,
    Repository, //
};

/// Commit categories recognised by the EA model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitKind {
    /// Bug fix (message mentions fix/bug/repair/fault).
    BugFix,
    /// Refactoring (refactor/cleanup/rename/move).
    Refactor,
    /// New functionality (anything else).
    Feature,
}

/// Classifies a commit message by keyword.
pub fn classify_message(message: &str) -> CommitKind {
    let m = message.to_ascii_lowercase();
    if ["fix", "bug", "repair", "fault", "cve"]
        .iter()
        .any(|k| m.contains(k))
    {
        CommitKind::BugFix
    } else if ["refactor", "cleanup", "clean up", "rename", "move", "style"]
        .iter()
        .any(|k| m.contains(k))
    {
        CommitKind::Refactor
    } else {
        CommitKind::Feature
    }
}

/// The EA familiarity model: weighted per-kind commit counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EaModel {
    /// Weight of feature commits.
    pub w_feature: f64,
    /// Weight of bug-fix commits.
    pub w_bugfix: f64,
    /// Weight of refactor commits.
    pub w_refactor: f64,
}

impl Default for EaModel {
    fn default() -> Self {
        // Writing new code builds the most knowledge; fixing bugs requires
        // (and builds) understanding; refactors are often mechanical.
        Self {
            w_feature: 1.0,
            w_bugfix: 0.8,
            w_refactor: 0.3,
        }
    }
}

impl EaModel {
    /// Scores the expertise of `author` on `path`; higher = more familiar.
    pub fn score(&self, repo: &Repository, path: &str, author: AuthorId) -> f64 {
        let mut s = 0.0;
        for c in repo.log(path) {
            let info = repo.commit_info(*c);
            if info.author != author {
                continue;
            }
            s += match classify_message(&info.message) {
                CommitKind::Feature => self.w_feature,
                CommitKind::BugFix => self.w_bugfix,
                CommitKind::Refactor => self.w_refactor,
            };
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_vcs::FileWrite;

    fn write(path: &str, content: &str) -> FileWrite {
        FileWrite {
            path: path.into(),
            content: content.into(),
        }
    }

    #[test]
    fn classification_by_keywords() {
        assert_eq!(
            classify_message("Fix NULL deref in acl path"),
            CommitKind::BugFix
        );
        assert_eq!(
            classify_message("refactor logging module"),
            CommitKind::Refactor
        );
        assert_eq!(
            classify_message("add bitmap conversion"),
            CommitKind::Feature
        );
    }

    #[test]
    fn feature_author_outranks_refactorer() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let janitor = repo.add_author("janitor");
        repo.commit(dev, 1, "add parser", vec![write("f.c", "a\n")]);
        repo.commit(dev, 2, "add emitter", vec![write("f.c", "a\nb\n")]);
        repo.commit(janitor, 3, "style cleanup", vec![write("f.c", "a\nb \n")]);
        repo.commit(janitor, 4, "rename things", vec![write("f.c", "a2\nb \n")]);
        let model = EaModel::default();
        assert!(model.score(&repo, "f.c", dev) > model.score(&repo, "f.c", janitor));
    }

    #[test]
    fn no_commits_means_zero() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        assert_eq!(EaModel::default().score(&repo, "f.c", a), 0.0);
    }
}
