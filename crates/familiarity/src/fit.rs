//! Ordinary-least-squares fitting of the DOK weights.
//!
//! The paper fits the linear DOK model from 40 sampled source lines per
//! application, each self-rated 1–5 by its author (§6). This module performs
//! the same fit: given `(metrics, rating)` samples it solves the normal
//! equations for `[α₀, α_FA, α_DL, α_AC]` over the design
//! `[1, FA, DL, -ln(1+AC)]`.

use crate::{
    dok::DokModel,
    metrics::Metrics, //
};

/// An error from a degenerate fit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FitError {
    /// Why the fit failed.
    pub message: String,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DOK fit failed: {}", self.message)
    }
}

impl std::error::Error for FitError {}

/// Fits a [`DokModel`] to `(metrics, self-rating)` samples by OLS.
///
/// Requires at least 4 samples with a non-singular design; otherwise returns
/// an error, at which point callers fall back to [`DokModel::PAPER`].
pub fn fit_dok(samples: &[(Metrics, f64)]) -> Result<DokModel, FitError> {
    if samples.len() < 4 {
        return Err(FitError {
            message: format!("need >= 4 samples, got {}", samples.len()),
        });
    }
    // Normal equations: (XᵀX) w = Xᵀy with X rows [1, fa, dl, -ln(1+ac)].
    let mut xtx = [[0.0f64; 4]; 4];
    let mut xty = [0.0f64; 4];
    for (m, y) in samples {
        let row = [1.0, m.fa, m.dl, -(1.0 + m.ac).ln()];
        for i in 0..4 {
            for j in 0..4 {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * *y;
        }
    }
    let w = solve4(xtx, xty).ok_or_else(|| FitError {
        message: "singular design matrix (samples lack factor variation)".into(),
    })?;
    Ok(DokModel {
        alpha0: w[0],
        alpha_fa: w[1],
        alpha_dl: w[2],
        alpha_ac: w[3],
    })
}

/// Solves a 4×4 linear system by Gaussian elimination with partial pivoting.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    const EPS: f64 = 1e-9;
    for col in 0..4 {
        // Pivot.
        let pivot = (col..4).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < EPS {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..4 {
            let k = a[row][col] / a[col][col];
            for j in col..4 {
                a[row][j] -= k * a[col][j];
            }
            b[row] -= k * b[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; 4];
    for row in (0..4).rev() {
        let mut s = b[row];
        for j in (row + 1)..4 {
            s -= a[row][j] * x[j];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> Vec<Metrics> {
        let mut out = Vec::new();
        for fa in [0.0, 1.0] {
            for dl in [0.0, 1.0, 3.0, 8.0, 20.0] {
                for ac in [0.0, 1.0, 4.0, 15.0] {
                    out.push(Metrics { fa, dl, ac });
                }
            }
        }
        out
    }

    #[test]
    fn recovers_exact_weights_from_noiseless_data() {
        let truth = DokModel::PAPER;
        let samples: Vec<(Metrics, f64)> = sample_grid()
            .into_iter()
            .map(|m| (m, truth.score(&m)))
            .collect();
        let fitted = fit_dok(&samples).unwrap();
        assert!((fitted.alpha0 - truth.alpha0).abs() < 1e-6, "{fitted:?}");
        assert!((fitted.alpha_fa - truth.alpha_fa).abs() < 1e-6);
        assert!((fitted.alpha_dl - truth.alpha_dl).abs() < 1e-6);
        assert!((fitted.alpha_ac - truth.alpha_ac).abs() < 1e-6);
    }

    #[test]
    fn tolerates_small_noise() {
        let truth = DokModel::PAPER;
        // Deterministic pseudo-noise.
        let samples: Vec<(Metrics, f64)> = sample_grid()
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                let noise = ((i as f64 * 0.7391).sin()) * 0.05;
                (m, truth.score(&m) + noise)
            })
            .collect();
        let fitted = fit_dok(&samples).unwrap();
        assert!((fitted.alpha_fa - truth.alpha_fa).abs() < 0.1, "{fitted:?}");
        assert!((fitted.alpha_dl - truth.alpha_dl).abs() < 0.05);
        assert!((fitted.alpha_ac - truth.alpha_ac).abs() < 0.1);
    }

    #[test]
    fn rejects_underdetermined_input() {
        let samples = vec![
            (
                Metrics {
                    fa: 0.0,
                    dl: 0.0,
                    ac: 0.0
                },
                3.0
            );
            3
        ];
        assert!(fit_dok(&samples).is_err());
    }

    #[test]
    fn rejects_degenerate_design() {
        // All samples identical: singular XᵀX.
        let samples = vec![
            (
                Metrics {
                    fa: 1.0,
                    dl: 2.0,
                    ac: 3.0
                },
                4.0
            );
            10
        ];
        assert!(fit_dok(&samples).is_err());
    }
}
