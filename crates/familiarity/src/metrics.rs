//! Extraction of code-familiarity metrics from the VCS history.
//!
//! The three factors of the degree-of-knowledge model (§6 of the paper):
//!
//! - **FA** (first authorship): whether the developer authored the file's
//!   first delivery;
//! - **DL** (deliveries): how many commits the developer made to the file;
//! - **AC** (acceptances): how many commits *others* made to the file.
//!
//! The paper counts commit numbers rather than committed lines, citing the
//! strong correlation between the two \[50\]; we do the same.

use vc_vcs::{
    AuthorId,
    Repository, //
};

/// The DOK input factors for one `(author, file)` pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// 1.0 if the author made the first delivery to the file, else 0.0.
    pub fa: f64,
    /// Number of deliveries by the author to the file.
    pub dl: f64,
    /// Number of deliveries to the file by other authors.
    pub ac: f64,
}

impl Metrics {
    /// Computes FA/DL/AC for `author` against `path` from the commit log.
    ///
    /// A file with no history yields all-zero metrics (complete
    /// unfamiliarity), which ranks its definitions highest for review.
    pub fn compute(repo: &Repository, path: &str, author: AuthorId) -> Metrics {
        let log = repo.log(path);
        let fa = match log.first() {
            Some(first) if repo.commit_info(*first).author == author => 1.0,
            _ => 0.0,
        };
        let mut dl = 0.0;
        let mut ac = 0.0;
        for c in log {
            if repo.commit_info(*c).author == author {
                dl += 1.0;
            } else {
                ac += 1.0;
            }
        }
        Metrics { fa, dl, ac }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_vcs::FileWrite;

    fn write(path: &str, content: &str) -> FileWrite {
        FileWrite {
            path: path.into(),
            content: content.into(),
        }
    }

    #[test]
    fn first_author_has_fa() {
        let mut repo = Repository::new();
        let alice = repo.add_author("alice");
        let bob = repo.add_author("bob");
        repo.commit(alice, 1, "init", vec![write("f.c", "a\n")]);
        repo.commit(bob, 2, "edit", vec![write("f.c", "a\nb\n")]);
        repo.commit(alice, 3, "more", vec![write("f.c", "a\nb\nc\n")]);

        let ma = Metrics::compute(&repo, "f.c", alice);
        assert_eq!(
            ma,
            Metrics {
                fa: 1.0,
                dl: 2.0,
                ac: 1.0
            }
        );
        let mb = Metrics::compute(&repo, "f.c", bob);
        assert_eq!(
            mb,
            Metrics {
                fa: 0.0,
                dl: 1.0,
                ac: 2.0
            }
        );
    }

    #[test]
    fn unknown_file_is_all_zero() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let m = Metrics::compute(&repo, "nope.c", a);
        assert_eq!(
            m,
            Metrics {
                fa: 0.0,
                dl: 0.0,
                ac: 0.0
            }
        );
    }

    #[test]
    fn commits_to_other_files_do_not_count() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        repo.commit(a, 1, "init f", vec![write("f.c", "x\n")]);
        repo.commit(a, 2, "init g", vec![write("g.c", "y\n")]);
        let m = Metrics::compute(&repo, "f.c", a);
        assert_eq!(m.dl, 1.0);
    }
}
