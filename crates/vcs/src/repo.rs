//! An in-memory version-control repository with per-line blame.
//!
//! The GitPython substitute: ValueCheck's authorship lookup needs
//! `blame(file, line) → author` and `log(file) → commits`, and its
//! familiarity model needs per-author delivery counts. The repository keeps a
//! linear history (like `git log --first-parent`) where each commit writes
//! full file contents; blame is maintained incrementally by diffing each
//! write against the previous content.

use std::collections::HashMap;

use crate::diff::{
    diff_lines,
    Edit, //
};

/// Identifier of an author.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AuthorId(pub u32);

/// Identifier of a commit; ids increase in history order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommitId(pub u32);

/// An author identity.
#[derive(Clone, Debug)]
pub struct Author {
    /// Display name.
    pub name: String,
}

/// One file modification inside a commit (full new content).
#[derive(Clone, Debug)]
pub struct FileWrite {
    /// Repository-relative path.
    pub path: String,
    /// Complete new content.
    pub content: String,
}

/// A commit: author, timestamp, message, and file writes.
#[derive(Clone, Debug)]
pub struct Commit {
    /// The commit id.
    pub id: CommitId,
    /// Who authored it.
    pub author: AuthorId,
    /// Unix timestamp (seconds).
    pub timestamp: i64,
    /// Commit message.
    pub message: String,
    /// Files written by this commit.
    pub writes: Vec<FileWrite>,
}

/// Blame information for one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlameEntry {
    /// The author of the line's last modification.
    pub author: AuthorId,
    /// The commit that introduced the line.
    pub commit: CommitId,
    /// Timestamp of that commit.
    pub timestamp: i64,
}

#[derive(Clone, Debug)]
struct LineRecord {
    text: String,
    blame: BlameEntry,
}

#[derive(Clone, Debug, Default)]
struct FileState {
    lines: Vec<LineRecord>,
}

/// An in-memory repository with a linear history.
#[derive(Clone, Debug, Default)]
pub struct Repository {
    authors: Vec<Author>,
    commits: Vec<Commit>,
    files: HashMap<String, FileState>,
    /// Per-file list of commit ids that touched the file, oldest first.
    file_log: HashMap<String, Vec<CommitId>>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new author.
    pub fn add_author(&mut self, name: impl Into<String>) -> AuthorId {
        let id = AuthorId(self.authors.len() as u32);
        self.authors.push(Author { name: name.into() });
        id
    }

    /// The author with the given id.
    pub fn author(&self, id: AuthorId) -> &Author {
        &self.authors[id.0 as usize]
    }

    /// Number of registered authors.
    pub fn author_count(&self) -> usize {
        self.authors.len()
    }

    /// Records a commit writing the given files, returning its id.
    ///
    /// Timestamps must be non-decreasing across commits; out-of-order
    /// timestamps are clamped to the previous commit's to keep the history
    /// linear, matching how a rebase-based workflow behaves.
    pub fn commit(
        &mut self,
        author: AuthorId,
        timestamp: i64,
        message: impl Into<String>,
        writes: Vec<FileWrite>,
    ) -> CommitId {
        let timestamp = match self.commits.last() {
            Some(prev) if timestamp < prev.timestamp => prev.timestamp,
            _ => timestamp,
        };
        let id = CommitId(self.commits.len() as u32);
        for w in &writes {
            self.apply_write(id, author, timestamp, w);
            self.file_log.entry(w.path.clone()).or_default().push(id);
        }
        self.commits.push(Commit {
            id,
            author,
            timestamp,
            message: message.into(),
            writes,
        });
        id
    }

    fn apply_write(&mut self, commit: CommitId, author: AuthorId, timestamp: i64, w: &FileWrite) {
        let new_lines: Vec<String> = split_lines(&w.content);
        let state = self.files.entry(w.path.clone()).or_default();
        let old_lines: Vec<String> = state.lines.iter().map(|l| l.text.clone()).collect();
        let script = diff_lines(&old_lines, &new_lines);
        let blame = BlameEntry {
            author,
            commit,
            timestamp,
        };
        let mut out = Vec::with_capacity(new_lines.len());
        let mut pos = 0usize;
        for edit in script {
            match edit {
                Edit::Keep(n) => {
                    out.extend_from_slice(&state.lines[pos..pos + n]);
                    pos += n;
                }
                Edit::Delete(n) => pos += n,
                Edit::Insert(lines) => {
                    out.extend(lines.into_iter().map(|text| LineRecord { text, blame }));
                }
            }
        }
        state.lines = out;
    }

    /// Current content of a file, if it exists.
    pub fn file_content(&self, path: &str) -> Option<String> {
        self.files.get(path).map(|s| {
            let mut out = String::new();
            for (i, l) in s.lines.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&l.text);
            }
            out
        })
    }

    /// All tracked file paths, sorted.
    pub fn paths(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.files.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Blame for one line (1-based), if the file and line exist.
    pub fn blame(&self, path: &str, line: u32) -> Option<BlameEntry> {
        let state = self.files.get(path)?;
        if line == 0 {
            return None;
        }
        state.lines.get((line - 1) as usize).map(|l| l.blame)
    }

    /// The author of one line, if known.
    pub fn blame_author(&self, path: &str, line: u32) -> Option<AuthorId> {
        self.blame(path, line).map(|b| b.author)
    }

    /// Number of lines currently in a file.
    pub fn line_count(&self, path: &str) -> usize {
        self.files.get(path).map(|s| s.lines.len()).unwrap_or(0)
    }

    /// Commits that touched `path`, oldest first.
    pub fn log(&self, path: &str) -> &[CommitId] {
        self.file_log.get(path).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The commit with the given id.
    pub fn commit_info(&self, id: CommitId) -> &Commit {
        &self.commits[id.0 as usize]
    }

    /// All commits, oldest first.
    pub fn commits(&self) -> &[Commit] {
        &self.commits
    }

    /// Reconstructs the full tree as of (and including) `at`, by replay.
    pub fn snapshot_at(&self, at: CommitId) -> HashMap<String, String> {
        let mut tree: HashMap<String, String> = HashMap::new();
        for c in &self.commits {
            if c.id > at {
                break;
            }
            for w in &c.writes {
                tree.insert(w.path.clone(), w.content.clone());
            }
        }
        tree
    }

    /// The latest commit id, if any commit exists.
    pub fn head(&self) -> Option<CommitId> {
        self.commits.last().map(|c| c.id)
    }

    /// Materializes the repository as of (and including) `at`: same authors,
    /// truncated history, blame and logs reflecting that point in time.
    ///
    /// This is the `git checkout <old>` equivalent the §3.1 preliminary
    /// experiment needs to analyse a 2019 snapshot with 2019 blame.
    pub fn checkout(&self, at: CommitId) -> Repository {
        let mut out = Repository::new();
        for a in &self.authors {
            out.add_author(a.name.clone());
        }
        for c in &self.commits {
            if c.id > at {
                break;
            }
            out.commit(c.author, c.timestamp, c.message.clone(), c.writes.clone());
        }
        out
    }

    /// The last commit at or before `timestamp`, if any.
    pub fn commit_at_time(&self, timestamp: i64) -> Option<CommitId> {
        self.commits
            .iter()
            .take_while(|c| c.timestamp <= timestamp)
            .last()
            .map(|c| c.id)
    }
}

/// Splits file content into lines; a trailing newline does not create an
/// empty final line (matching `git`'s line accounting).
fn split_lines(content: &str) -> Vec<String> {
    if content.is_empty() {
        return Vec::new();
    }
    let trimmed = content.strip_suffix('\n').unwrap_or(content);
    trimmed.split('\n').map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(path: &str, content: &str) -> FileWrite {
        FileWrite {
            path: path.into(),
            content: content.into(),
        }
    }

    #[test]
    fn initial_commit_blames_every_line_to_author() {
        let mut repo = Repository::new();
        let alice = repo.add_author("alice");
        let c = repo.commit(alice, 1000, "init", vec![write("a.c", "l1\nl2\nl3\n")]);
        for line in 1..=3 {
            let b = repo.blame("a.c", line).unwrap();
            assert_eq!(b.author, alice);
            assert_eq!(b.commit, c);
        }
        assert_eq!(repo.blame("a.c", 4), None);
    }

    #[test]
    fn edit_reassigns_only_touched_lines() {
        let mut repo = Repository::new();
        let alice = repo.add_author("alice");
        let bob = repo.add_author("bob");
        repo.commit(alice, 1000, "init", vec![write("a.c", "l1\nl2\nl3\n")]);
        repo.commit(
            bob,
            2000,
            "edit line 2",
            vec![write("a.c", "l1\nl2-changed\nl3\n")],
        );
        assert_eq!(repo.blame_author("a.c", 1), Some(alice));
        assert_eq!(repo.blame_author("a.c", 2), Some(bob));
        assert_eq!(repo.blame_author("a.c", 3), Some(alice));
    }

    #[test]
    fn insertion_shifts_blame_correctly() {
        let mut repo = Repository::new();
        let alice = repo.add_author("alice");
        let bob = repo.add_author("bob");
        repo.commit(alice, 1000, "init", vec![write("a.c", "l1\nl3\n")]);
        repo.commit(bob, 2000, "insert", vec![write("a.c", "l1\nl2\nl3\n")]);
        assert_eq!(repo.blame_author("a.c", 1), Some(alice));
        assert_eq!(repo.blame_author("a.c", 2), Some(bob));
        assert_eq!(repo.blame_author("a.c", 3), Some(alice));
    }

    #[test]
    fn blame_covers_exactly_the_file() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        repo.commit(a, 1, "c", vec![write("f", "x\ny\n")]);
        assert_eq!(repo.line_count("f"), 2);
        assert!(repo.blame("f", 0).is_none());
        assert!(repo.blame("f", 2).is_some());
        assert!(repo.blame("f", 3).is_none());
        assert_eq!(repo.file_content("f").unwrap(), "x\ny");
    }

    #[test]
    fn log_lists_touching_commits_in_order() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let c1 = repo.commit(a, 1, "one", vec![write("f", "1\n")]);
        let _c2 = repo.commit(a, 2, "other file", vec![write("g", "1\n")]);
        let c3 = repo.commit(a, 3, "two", vec![write("f", "1\n2\n")]);
        assert_eq!(repo.log("f"), &[c1, c3]);
    }

    #[test]
    fn snapshot_replays_history() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let c1 = repo.commit(a, 1, "v1", vec![write("f", "v1\n")]);
        let c2 = repo.commit(a, 2, "v2", vec![write("f", "v2\n")]);
        assert_eq!(repo.snapshot_at(c1).get("f").unwrap(), "v1\n");
        assert_eq!(repo.snapshot_at(c2).get("f").unwrap(), "v2\n");
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        repo.commit(a, 100, "one", vec![write("f", "1\n")]);
        let c2 = repo.commit(a, 50, "backdated", vec![write("f", "2\n")]);
        assert_eq!(repo.commit_info(c2).timestamp, 100);
    }

    #[test]
    fn checkout_restores_historical_blame_and_logs() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let b = repo.add_author("b");
        let c1 = repo.commit(
            a,
            10,
            "init",
            vec![write(
                "f", "one
two
",
            )],
        );
        let _c2 = repo.commit(
            b,
            20,
            "edit",
            vec![write(
                "f",
                "one
two-x
",
            )],
        );
        let old = repo.checkout(c1);
        assert_eq!(old.blame_author("f", 2), Some(a));
        assert_eq!(repo.blame_author("f", 2), Some(b));
        assert_eq!(old.log("f").len(), 1);
        assert_eq!(old.head(), Some(c1));
    }

    #[test]
    fn commit_at_time_picks_latest_at_or_before() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let c1 = repo.commit(a, 10, "one", vec![write("f", "1\n")]);
        let c2 = repo.commit(a, 20, "two", vec![write("f", "2\n")]);
        assert_eq!(repo.commit_at_time(5), None);
        assert_eq!(repo.commit_at_time(10), Some(c1));
        assert_eq!(repo.commit_at_time(15), Some(c1));
        assert_eq!(repo.commit_at_time(99), Some(c2));
    }

    #[test]
    fn rewrite_attributes_rewritten_region() {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let b = repo.add_author("b");
        repo.commit(a, 1, "init", vec![write("f", "keep\nold1\nold2\nkeep2\n")]);
        repo.commit(
            b,
            2,
            "rewrite middle",
            vec![write("f", "keep\nnew1\nnew2\nnew3\nkeep2\n")],
        );
        assert_eq!(repo.blame_author("f", 1), Some(a));
        assert_eq!(repo.blame_author("f", 2), Some(b));
        assert_eq!(repo.blame_author("f", 3), Some(b));
        assert_eq!(repo.blame_author("f", 4), Some(b));
        assert_eq!(repo.blame_author("f", 5), Some(a));
    }
}
