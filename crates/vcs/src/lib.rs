//! # vc-vcs — in-memory version-control substrate
//!
//! The git/GitPython substitute of the ValueCheck reproduction. Provides a
//! linear-history repository with commits, full-content file writes, a
//! line-oriented [`diff`], incremental per-line [`repo::Repository::blame`],
//! per-file logs, and history snapshots (used by the §3.1 preliminary
//! experiment to compare 2019 vs 2021 trees).

pub mod diff;
pub mod repo;
pub mod spec;

pub use spec::HistorySpec;

pub use repo::{
    Author,
    AuthorId,
    BlameEntry,
    Commit,
    CommitId,
    FileWrite,
    Repository, //
};
