//! A serializable history format (`history.json`) for moving repositories
//! in and out of the process — the interchange format of the `vcheck` and
//! `genapp` command-line tools.

use serde::{
    Deserialize,
    Serialize, //
};

use crate::repo::{
    FileWrite,
    Repository, //
};

/// One file write inside a commit spec.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct WriteSpec {
    /// Repository-relative path.
    pub path: String,
    /// Full new content.
    pub content: String,
}

/// One commit in the history spec.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct CommitSpec {
    /// Author name; registered on first use.
    pub author: String,
    /// Unix timestamp (seconds).
    pub timestamp: i64,
    /// Commit message.
    pub message: String,
    /// Files written.
    pub writes: Vec<WriteSpec>,
}

/// A whole linear history.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct HistorySpec {
    /// Commits, oldest first.
    pub commits: Vec<CommitSpec>,
}

impl HistorySpec {
    /// Materializes the spec as a repository.
    pub fn build(&self) -> Repository {
        let mut repo = Repository::new();
        let mut ids = std::collections::HashMap::new();
        for c in &self.commits {
            let author = *ids
                .entry(c.author.clone())
                .or_insert_with(|| repo.add_author(c.author.clone()));
            repo.commit(
                author,
                c.timestamp,
                c.message.clone(),
                c.writes
                    .iter()
                    .map(|w| FileWrite {
                        path: w.path.clone(),
                        content: w.content.clone(),
                    })
                    .collect(),
            );
        }
        repo
    }

    /// Extracts a spec from a repository (inverse of [`HistorySpec::build`]).
    pub fn from_repo(repo: &Repository) -> HistorySpec {
        HistorySpec {
            commits: repo
                .commits()
                .iter()
                .map(|c| CommitSpec {
                    author: repo.author(c.author).name.clone(),
                    timestamp: c.timestamp,
                    message: c.message.clone(),
                    writes: c
                        .writes
                        .iter()
                        .map(|w| WriteSpec {
                            path: w.path.clone(),
                            content: w.content.clone(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// A single-commit history covering `files`, for projects without
    /// version-control data: everything belongs to one unknown author.
    pub fn single_author(files: &[(String, String)]) -> HistorySpec {
        HistorySpec {
            commits: vec![CommitSpec {
                author: "unknown".into(),
                timestamp: 0,
                message: "imported working tree".into(),
                writes: files
                    .iter()
                    .map(|(path, content)| WriteSpec {
                        path: path.clone(),
                        content: content.clone(),
                    })
                    .collect(),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_repository() {
        let spec = HistorySpec {
            commits: vec![
                CommitSpec {
                    author: "alice".into(),
                    timestamp: 100,
                    message: "init".into(),
                    writes: vec![WriteSpec {
                        path: "a.c".into(),
                        content: "int x;\n".into(),
                    }],
                },
                CommitSpec {
                    author: "bob".into(),
                    timestamp: 200,
                    message: "edit".into(),
                    writes: vec![WriteSpec {
                        path: "a.c".into(),
                        content: "int x;\nint y;\n".into(),
                    }],
                },
            ],
        };
        let repo = spec.build();
        assert_eq!(repo.author_count(), 2);
        assert_eq!(repo.blame_author("a.c", 2).map(|a| repo.author(a).name.clone()),
            Some("bob".to_string()));
        let back = HistorySpec::from_repo(&repo);
        assert_eq!(spec, back);
    }

    #[test]
    fn single_author_covers_all_files() {
        let files = vec![
            ("a.c".to_string(), "int a;\n".to_string()),
            ("b.c".to_string(), "int b;\n".to_string()),
        ];
        let repo = HistorySpec::single_author(&files).build();
        assert_eq!(repo.paths().len(), 2);
        assert!(repo.blame_author("b.c", 1).is_some());
    }
}
