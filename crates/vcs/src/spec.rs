//! A serializable history format (`history.json`) for moving repositories
//! in and out of the process — the interchange format of the `vcheck` and
//! `genapp` command-line tools.

use vc_obs::{
    json,
    Json, //
};

use crate::repo::{
    FileWrite,
    Repository, //
};

/// One file write inside a commit spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteSpec {
    /// Repository-relative path.
    pub path: String,
    /// Full new content.
    pub content: String,
}

/// One commit in the history spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitSpec {
    /// Author name; registered on first use.
    pub author: String,
    /// Unix timestamp (seconds).
    pub timestamp: i64,
    /// Commit message.
    pub message: String,
    /// Files written.
    pub writes: Vec<WriteSpec>,
}

/// A whole linear history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistorySpec {
    /// Commits, oldest first.
    pub commits: Vec<CommitSpec>,
}

impl HistorySpec {
    /// Materializes the spec as a repository.
    pub fn build(&self) -> Repository {
        let mut repo = Repository::new();
        let mut ids = std::collections::HashMap::new();
        for c in &self.commits {
            let author = *ids
                .entry(c.author.clone())
                .or_insert_with(|| repo.add_author(c.author.clone()));
            repo.commit(
                author,
                c.timestamp,
                c.message.clone(),
                c.writes
                    .iter()
                    .map(|w| FileWrite {
                        path: w.path.clone(),
                        content: w.content.clone(),
                    })
                    .collect(),
            );
        }
        repo
    }

    /// Extracts a spec from a repository (inverse of [`HistorySpec::build`]).
    pub fn from_repo(repo: &Repository) -> HistorySpec {
        HistorySpec {
            commits: repo
                .commits()
                .iter()
                .map(|c| CommitSpec {
                    author: repo.author(c.author).name.clone(),
                    timestamp: c.timestamp,
                    message: c.message.clone(),
                    writes: c
                        .writes
                        .iter()
                        .map(|w| WriteSpec {
                            path: w.path.clone(),
                            content: w.content.clone(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// A single-commit history covering `files`, for projects without
    /// version-control data: everything belongs to one unknown author.
    pub fn single_author(files: &[(String, String)]) -> HistorySpec {
        HistorySpec {
            commits: vec![CommitSpec {
                author: "unknown".into(),
                timestamp: 0,
                message: "imported working tree".into(),
                writes: files
                    .iter()
                    .map(|(path, content)| WriteSpec {
                        path: path.clone(),
                        content: content.clone(),
                    })
                    .collect(),
            }],
        }
    }

    /// The spec as a JSON value.
    fn json_value(&self) -> Json {
        let commits = self
            .commits
            .iter()
            .map(|c| {
                let writes = c
                    .writes
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("path".into(), Json::Str(w.path.clone())),
                            ("content".into(), Json::Str(w.content.clone())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("author".into(), Json::Str(c.author.clone())),
                    ("timestamp".into(), Json::Int(c.timestamp)),
                    ("message".into(), Json::Str(c.message.clone())),
                    ("writes".into(), Json::Arr(writes)),
                ])
            })
            .collect();
        Json::Obj(vec![("commits".into(), Json::Arr(commits))])
    }

    /// Compact `history.json` text.
    pub fn to_json(&self) -> String {
        self.json_value().to_string()
    }

    /// Pretty-printed `history.json` text.
    pub fn to_json_pretty(&self) -> String {
        self.json_value().to_string_pretty()
    }

    /// Parses `history.json` text.
    pub fn from_json(text: &str) -> Result<HistorySpec, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let commits = doc
            .get("commits")
            .and_then(Json::as_arr)
            .ok_or("history spec: missing \"commits\" array")?;
        let mut out = HistorySpec::default();
        for (i, c) in commits.iter().enumerate() {
            let field = |name: &str| {
                c.get(name)
                    .ok_or_else(|| format!("commit #{i}: missing \"{name}\""))
            };
            let str_field = |name: &str| {
                field(name)?
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("commit #{i}: \"{name}\" must be a string"))
            };
            let mut writes = Vec::new();
            for (j, w) in field("writes")?
                .as_arr()
                .ok_or_else(|| format!("commit #{i}: \"writes\" must be an array"))?
                .iter()
                .enumerate()
            {
                let wstr = |name: &str| {
                    w.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("commit #{i} write #{j}: bad \"{name}\""))
                };
                writes.push(WriteSpec {
                    path: wstr("path")?,
                    content: wstr("content")?,
                });
            }
            out.commits.push(CommitSpec {
                author: str_field("author")?,
                timestamp: field("timestamp")?
                    .as_i64()
                    .ok_or_else(|| format!("commit #{i}: \"timestamp\" must be an integer"))?,
                message: str_field("message")?,
                writes,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_repository() {
        let spec = HistorySpec {
            commits: vec![
                CommitSpec {
                    author: "alice".into(),
                    timestamp: 100,
                    message: "init".into(),
                    writes: vec![WriteSpec {
                        path: "a.c".into(),
                        content: "int x;\n".into(),
                    }],
                },
                CommitSpec {
                    author: "bob".into(),
                    timestamp: 200,
                    message: "edit".into(),
                    writes: vec![WriteSpec {
                        path: "a.c".into(),
                        content: "int x;\nint y;\n".into(),
                    }],
                },
            ],
        };
        let repo = spec.build();
        assert_eq!(repo.author_count(), 2);
        assert_eq!(
            repo.blame_author("a.c", 2)
                .map(|a| repo.author(a).name.clone()),
            Some("bob".to_string())
        );
        let back = HistorySpec::from_repo(&repo);
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = HistorySpec {
            commits: vec![CommitSpec {
                author: "alice \"quoted\"".into(),
                timestamp: -3,
                message: "line1\nline2\t🎉".into(),
                writes: vec![WriteSpec {
                    path: "dir/a.c".into(),
                    content: "int x;\n".into(),
                }],
            }],
        };
        let compact = spec.to_json();
        let pretty = spec.to_json_pretty();
        assert_eq!(HistorySpec::from_json(&compact).unwrap(), spec);
        assert_eq!(HistorySpec::from_json(&pretty).unwrap(), spec);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn from_json_reports_shape_errors() {
        assert!(HistorySpec::from_json("{}").is_err());
        assert!(HistorySpec::from_json("{\"commits\":[{}]}").is_err());
        assert!(HistorySpec::from_json("not json").is_err());
    }

    #[test]
    fn single_author_covers_all_files() {
        let files = vec![
            ("a.c".to_string(), "int a;\n".to_string()),
            ("b.c".to_string(), "int b;\n".to_string()),
        ];
        let repo = HistorySpec::single_author(&files).build();
        assert_eq!(repo.paths().len(), 2);
        assert!(repo.blame_author("b.c", 1).is_some());
    }
}
