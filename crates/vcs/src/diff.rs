//! Line-oriented diff used for blame attribution.
//!
//! The VCS substrate assigns blame by diffing each commit's new file content
//! against the previous content: kept lines retain their blame, inserted
//! lines are attributed to the committing author — the same attribution rule
//! `git blame` implements.
//!
//! The algorithm trims the common prefix and suffix (commits usually touch a
//! small contiguous region) and runs an exact LCS on the remaining middle.
//! If the middle is pathologically large the diff degrades to
//! delete-all/insert-all for the middle — still a correct patch, just not
//! minimal, mirroring the heuristic cutoffs of production diff tools.

/// One hunk of an edit script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// The next `n` lines are unchanged.
    Keep(usize),
    /// The next `n` old lines are removed.
    Delete(usize),
    /// These new lines are inserted.
    Insert(Vec<String>),
}

/// Middle sizes whose product exceeds this fall back to full replacement.
const LCS_CELL_LIMIT: usize = 16_000_000;

/// Computes a line edit script transforming `old` into `new`.
///
/// The script is minimal whenever the changed region is below the DP cutoff
/// (16M cells, ~4000×4000 changed lines), which covers every realistic
/// commit; `patch(old, &diff_lines(old, new)) == new` holds unconditionally.
///
/// # Examples
///
/// ```
/// use vc_vcs::diff::{diff_lines, patch};
/// let old = ["a", "b", "c"].map(String::from).to_vec();
/// let new = ["a", "x", "c"].map(String::from).to_vec();
/// let script = diff_lines(&old, &new);
/// assert_eq!(patch(&old, &script), new);
/// ```
pub fn diff_lines(old: &[String], new: &[String]) -> Vec<Edit> {
    // Trim common prefix.
    let mut prefix = 0;
    while prefix < old.len() && prefix < new.len() && old[prefix] == new[prefix] {
        prefix += 1;
    }
    // Trim common suffix (not overlapping the prefix).
    let mut suffix = 0;
    while suffix < old.len() - prefix
        && suffix < new.len() - prefix
        && old[old.len() - 1 - suffix] == new[new.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let mid_old = &old[prefix..old.len() - suffix];
    let mid_new = &new[prefix..new.len() - suffix];

    let mut edits = Vec::new();
    if prefix > 0 {
        edits.push(Edit::Keep(prefix));
    }
    append_middle(mid_old, mid_new, &mut edits);
    if suffix > 0 {
        edits.push(Edit::Keep(suffix));
    }
    coalesce(edits)
}

/// Diffs the changed middle region via LCS, appending hunks to `edits`.
fn append_middle(old: &[String], new: &[String], edits: &mut Vec<Edit>) {
    let (n, m) = (old.len(), new.len());
    if n == 0 && m == 0 {
        return;
    }
    if n == 0 {
        edits.push(Edit::Insert(new.to_vec()));
        return;
    }
    if m == 0 {
        edits.push(Edit::Delete(n));
        return;
    }
    if n.saturating_mul(m) > LCS_CELL_LIMIT {
        edits.push(Edit::Delete(n));
        edits.push(Edit::Insert(new.to_vec()));
        return;
    }

    // LCS length table; lcs[i][j] = LCS of old[i..], new[j..].
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[at(i, j)] = if old[i] == new[j] {
                lcs[at(i + 1, j + 1)] + 1
            } else {
                lcs[at(i + 1, j)].max(lcs[at(i, j + 1)])
            };
        }
    }
    // Walk the table emitting hunks.
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old[i] == new[j] {
            push_keep(edits, 1);
            i += 1;
            j += 1;
        } else if lcs[at(i + 1, j)] >= lcs[at(i, j + 1)] {
            push_delete(edits, 1);
            i += 1;
        } else {
            push_insert(edits, new[j].clone());
            j += 1;
        }
    }
    if i < n {
        push_delete(edits, n - i);
    }
    while j < m {
        push_insert(edits, new[j].clone());
        j += 1;
    }
}

fn push_keep(edits: &mut Vec<Edit>, n: usize) {
    match edits.last_mut() {
        Some(Edit::Keep(k)) => *k += n,
        _ => edits.push(Edit::Keep(n)),
    }
}

fn push_delete(edits: &mut Vec<Edit>, n: usize) {
    match edits.last_mut() {
        Some(Edit::Delete(k)) => *k += n,
        _ => edits.push(Edit::Delete(n)),
    }
}

fn push_insert(edits: &mut Vec<Edit>, line: String) {
    match edits.last_mut() {
        Some(Edit::Insert(lines)) => lines.push(line),
        _ => edits.push(Edit::Insert(vec![line])),
    }
}

/// Merges adjacent same-kind hunks (defensive; builders above already merge).
fn coalesce(edits: Vec<Edit>) -> Vec<Edit> {
    let mut out: Vec<Edit> = Vec::with_capacity(edits.len());
    for e in edits {
        match (out.last_mut(), e) {
            (Some(Edit::Keep(a)), Edit::Keep(b)) => *a += b,
            (Some(Edit::Delete(a)), Edit::Delete(b)) => *a += b,
            (Some(Edit::Insert(a)), Edit::Insert(b)) => a.extend(b),
            (_, e) => out.push(e),
        }
    }
    out
}

/// Applies an edit script to `old`, producing the new line vector.
///
/// # Panics
///
/// Panics if the script does not match `old` (wrong hunk lengths).
pub fn patch(old: &[String], script: &[Edit]) -> Vec<String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for edit in script {
        match edit {
            Edit::Keep(n) => {
                out.extend_from_slice(&old[pos..pos + n]);
                pos += n;
            }
            Edit::Delete(n) => {
                pos += n;
            }
            Edit::Insert(lines) => {
                out.extend_from_slice(lines);
            }
        }
    }
    assert_eq!(pos, old.len(), "edit script does not cover the old file");
    out
}

/// A bidirectional 1-based line-number mapping across an edit script.
///
/// Built once from a [`diff_lines`] script, it answers "where did old line
/// *n* land in the new file?" (and the inverse) in O(1). Lines inside
/// `Delete`/`Insert` hunks have no counterpart and map to `None` — only
/// `Keep` hunks carry a line across revisions. This is what makes warning
/// identities drift-stable: a finding's line can be followed through a
/// commit's edit script instead of being compared numerically.
///
/// # Examples
///
/// ```
/// use vc_vcs::diff::{diff_lines, LineMap};
/// let old = ["a", "b", "c"].map(String::from).to_vec();
/// let new = ["x", "a", "b", "c"].map(String::from).to_vec();
/// let map = LineMap::new(&diff_lines(&old, &new));
/// assert_eq!(map.old_to_new(1), Some(2)); // "a" shifted down by the insert
/// assert_eq!(map.new_to_old(1), None); // "x" is new
/// ```
#[derive(Clone, Debug)]
pub struct LineMap {
    /// `old_to_new[i]` is the new 1-based line of old line `i + 1`.
    old_to_new: Vec<Option<u32>>,
    /// `new_to_old[j]` is the old 1-based line of new line `j + 1`.
    new_to_old: Vec<Option<u32>>,
}

impl LineMap {
    /// Builds the mapping from an edit script.
    pub fn new(script: &[Edit]) -> LineMap {
        let mut old_to_new = Vec::new();
        let mut new_to_old = Vec::new();
        for edit in script {
            match edit {
                Edit::Keep(n) => {
                    for _ in 0..*n {
                        let old_line = old_to_new.len() as u32 + 1;
                        let new_line = new_to_old.len() as u32 + 1;
                        old_to_new.push(Some(new_line));
                        new_to_old.push(Some(old_line));
                    }
                }
                Edit::Delete(n) => old_to_new.extend(std::iter::repeat_n(None, *n)),
                Edit::Insert(lines) => new_to_old.extend(std::iter::repeat_n(None, lines.len())),
            }
        }
        LineMap {
            old_to_new,
            new_to_old,
        }
    }

    /// Builds the mapping by diffing two file contents directly.
    pub fn between(old: &[String], new: &[String]) -> LineMap {
        LineMap::new(&diff_lines(old, new))
    }

    /// The new-revision line of old-revision line `line` (1-based), if the
    /// line survived the edit.
    pub fn old_to_new(&self, line: u32) -> Option<u32> {
        *self
            .old_to_new
            .get((line as usize).checked_sub(1)?)
            .unwrap_or(&None)
    }

    /// The old-revision line of new-revision line `line` (1-based), if the
    /// line existed before the edit.
    /// Like [`old_to_new`](LineMap::old_to_new), but a rewritten line (no
    /// exact image) is projected through its nearest *kept* neighbour: the
    /// closest preceding mapped line anchors the offset, falling back to the
    /// closest following one. `None` when the whole file was replaced — or
    /// when the projection falls outside the new file entirely (a deleted
    /// tail has no plausible image; inventing a line number past EOF would
    /// make downstream matchers chase lines that do not exist).
    ///
    /// This is the estimate a reviewer makes reading a diff — "that edited
    /// line is still *here*" — and is what lets a finding whose definition
    /// line was itself edited match across revisions.
    pub fn old_to_new_nearby(&self, line: u32) -> Option<u32> {
        if let Some(mapped) = self.old_to_new(line) {
            return Some(mapped);
        }
        let idx = (line as usize).checked_sub(1)?;
        if idx >= self.old_to_new.len() {
            return None;
        }
        let before = self.old_to_new[..idx]
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, m)| m.map(|mapped| (i, mapped)));
        if let Some((anchor, mapped)) = before {
            let projected = mapped + (idx - anchor) as u32;
            if projected as usize <= self.new_len() {
                return Some(projected);
            }
            // Projected past the new EOF: fall through to the following
            // anchor, if one exists (it never does for a pure tail
            // deletion, which is the point).
        }
        let after = self.old_to_new[idx + 1..]
            .iter()
            .enumerate()
            .find_map(|(i, m)| m.map(|mapped| (idx + 1 + i, mapped)));
        if let Some((anchor, mapped)) = after {
            let back = (anchor - idx) as u32;
            return mapped.checked_sub(back).filter(|&l| l >= 1);
        }
        None
    }

    pub fn new_to_old(&self, line: u32) -> Option<u32> {
        *self
            .new_to_old
            .get((line as usize).checked_sub(1)?)
            .unwrap_or(&None)
    }

    /// Number of lines in the old revision.
    pub fn old_len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Number of lines in the new revision.
    pub fn new_len(&self) -> usize {
        self.new_to_old.len()
    }
}

/// The number of inserted plus deleted lines in a script (the "churn").
pub fn churn(script: &[Edit]) -> usize {
    script
        .iter()
        .map(|e| match e {
            Edit::Keep(_) => 0,
            Edit::Delete(n) => *n,
            Edit::Insert(lines) => lines.len(),
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn check(old: &[&str], new: &[&str]) -> Vec<Edit> {
        let (o, n) = (lines(old), lines(new));
        let script = diff_lines(&o, &n);
        assert_eq!(
            patch(&o, &script),
            n,
            "patch(diff) != new for {o:?} -> {n:?}"
        );
        script
    }

    #[test]
    fn identical_files_are_one_keep() {
        let s = check(&["a", "b"], &["a", "b"]);
        assert_eq!(s, vec![Edit::Keep(2)]);
    }

    #[test]
    fn pure_insertion() {
        let s = check(&["a", "c"], &["a", "b", "c"]);
        assert_eq!(churn(&s), 1);
    }

    #[test]
    fn pure_deletion() {
        let s = check(&["a", "b", "c"], &["a", "c"]);
        assert_eq!(churn(&s), 1);
    }

    #[test]
    fn replacement_in_middle() {
        let s = check(&["a", "b", "c"], &["a", "x", "c"]);
        assert_eq!(churn(&s), 2);
    }

    #[test]
    fn empty_to_full_and_back() {
        check(&[], &["a", "b"]);
        check(&["a", "b"], &[]);
        check(&[], &[]);
    }

    #[test]
    fn completely_different() {
        let s = check(&["a", "b"], &["x", "y", "z"]);
        assert_eq!(churn(&s), 5);
    }

    #[test]
    fn repeated_lines() {
        check(&["a", "a", "a"], &["a", "a"]);
        check(&["x", "a", "x", "a"], &["a", "x", "a", "x"]);
    }

    #[test]
    fn diff_is_minimal_for_single_edit() {
        let s = check(&["1", "2", "3", "4", "5"], &["1", "2", "changed", "4", "5"]);
        assert_eq!(churn(&s), 2, "expected one delete + one insert: {s:?}");
    }

    #[test]
    fn two_separate_edits() {
        let s = check(
            &["a", "b", "c", "d", "e", "f"],
            &["a", "B", "c", "d", "E", "f"],
        );
        assert_eq!(churn(&s), 4);
    }

    #[test]
    fn line_map_identity_on_unchanged_file() {
        let l = lines(&["a", "b", "c"]);
        let map = LineMap::between(&l, &l);
        for i in 1..=3 {
            assert_eq!(map.old_to_new(i), Some(i));
            assert_eq!(map.new_to_old(i), Some(i));
        }
        assert_eq!(map.old_to_new(0), None);
        assert_eq!(map.old_to_new(4), None);
    }

    #[test]
    fn line_map_tracks_insertions_above() {
        let old = lines(&["f1", "f2", "f3"]);
        let new = lines(&["pad1", "pad2", "f1", "f2", "f3"]);
        let map = LineMap::between(&old, &new);
        assert_eq!(map.old_to_new(1), Some(3));
        assert_eq!(map.old_to_new(3), Some(5));
        assert_eq!(map.new_to_old(1), None);
        assert_eq!(map.new_to_old(2), None);
        assert_eq!(map.new_to_old(3), Some(1));
        assert_eq!(map.old_len(), 3);
        assert_eq!(map.new_len(), 5);
    }

    #[test]
    fn line_map_drops_deleted_and_replaced_lines() {
        let old = lines(&["keep", "gone", "edited", "tail"]);
        let new = lines(&["keep", "edited differently", "tail"]);
        let map = LineMap::between(&old, &new);
        assert_eq!(map.old_to_new(1), Some(1));
        assert_eq!(map.old_to_new(2), None, "deleted line has no image");
        assert_eq!(map.old_to_new(3), None, "rewritten line has no image");
        assert_eq!(map.old_to_new(4), Some(3));
        assert_eq!(map.new_to_old(2), None);
    }

    #[test]
    fn line_map_nearby_projects_rewritten_lines() {
        let old = lines(&["head", "edited", "tail"]);
        let new = lines(&["pad", "head", "edited differently", "tail"]);
        let map = LineMap::between(&old, &new);
        assert_eq!(map.old_to_new(2), None, "no exact image");
        assert_eq!(
            map.old_to_new_nearby(2),
            Some(3),
            "anchored one past the kept `head` line"
        );
        // Exact mappings pass through unchanged.
        assert_eq!(map.old_to_new_nearby(1), Some(2));
        assert_eq!(map.old_to_new_nearby(0), None);
        assert_eq!(map.old_to_new_nearby(4), None, "past end of file");
        // A fully replaced file has no anchors at all.
        let replaced = LineMap::between(&lines(&["a", "b"]), &lines(&["x", "y"]));
        assert_eq!(replaced.old_to_new_nearby(1), None);
        assert_eq!(replaced.old_to_new_nearby(2), None);
    }

    #[test]
    fn line_map_nearby_anchors_on_following_line_at_file_start() {
        // The first line is rewritten; the only anchor is below it.
        let old = lines(&["edited", "kept"]);
        let new = lines(&["edited differently", "kept", "extra"]);
        let map = LineMap::between(&old, &new);
        assert_eq!(map.old_to_new(1), None);
        assert_eq!(map.old_to_new_nearby(1), Some(1));
    }

    #[test]
    fn line_map_nearby_deletion_at_end_of_file() {
        // The tail of the file is deleted: the deleted lines project past
        // the new EOF and must report no image, not a phantom line number.
        let old = lines(&["a", "b", "c", "d", "e"]);
        let new = lines(&["a", "b"]);
        let map = LineMap::between(&old, &new);
        assert_eq!(map.old_to_new_nearby(2), Some(2), "kept line still maps");
        for gone in 3..=5 {
            assert_eq!(
                map.old_to_new_nearby(gone),
                None,
                "deleted tail line {gone} has no plausible image in a 2-line file"
            );
        }
        // A tail line *replaced* in place (projection still in range) keeps
        // its nearby image.
        let replaced = LineMap::between(&lines(&["a", "b", "c"]), &lines(&["a", "b", "x"]));
        assert_eq!(replaced.old_to_new_nearby(3), Some(3));
    }

    #[test]
    fn line_map_nearby_adjacent_hunks_project_through_their_own_anchor() {
        // Two edit hunks separated by a single kept line: each rewritten
        // line must anchor on its own side, not bleed into the other hunk.
        let old = lines(&["k1", "e1", "e2", "k2", "e3", "k3"]);
        let new = lines(&["k1", "n1", "n2", "n3", "k2", "n4", "k3"]);
        let map = LineMap::between(&old, &new);
        assert_eq!(map.old_to_new_nearby(2), Some(2), "first hunk, first line");
        assert_eq!(map.old_to_new_nearby(3), Some(3), "first hunk, second line");
        assert_eq!(
            map.old_to_new_nearby(5),
            Some(6),
            "second hunk anchors on k2, not on the first hunk's lines"
        );
        assert_eq!(map.old_to_new(4), Some(5), "the separator line is kept");
    }

    #[test]
    fn line_map_nearby_zero_length_new_file() {
        // Everything deleted: no anchors exist in either direction.
        let old = lines(&["a", "b", "c"]);
        let map = LineMap::between(&old, &lines(&[]));
        assert_eq!(map.new_len(), 0);
        for line in 1..=3 {
            assert_eq!(map.old_to_new(line), None);
            assert_eq!(map.old_to_new_nearby(line), None);
        }
        // And the mirror degenerate case: an empty old file has no lines to
        // project at all.
        let grown = LineMap::between(&lines(&[]), &lines(&["x"]));
        assert_eq!(grown.old_to_new_nearby(1), None);
        assert_eq!(grown.old_len(), 0);
    }

    #[test]
    fn line_map_roundtrips_kept_lines() {
        let old = lines(&["a", "b", "c", "d", "e"]);
        let new = lines(&["x", "a", "c", "y", "e"]);
        let map = LineMap::between(&old, &new);
        for i in 1..=old.len() as u32 {
            if let Some(j) = map.old_to_new(i) {
                assert_eq!(map.new_to_old(j), Some(i), "kept lines invert");
                assert_eq!(old[(i - 1) as usize], new[(j - 1) as usize]);
            }
        }
    }

    #[test]
    fn interleaved_shared_lines_use_lcs() {
        // LCS of abcab / acba is "acb" (3) -> churn = 2 + 1 = 3.
        let s = check(&["a", "b", "c", "a", "b"], &["a", "c", "b", "a"]);
        assert_eq!(churn(&s), 3, "{s:?}");
    }
}
