//! Line-oriented diff used for blame attribution.
//!
//! The VCS substrate assigns blame by diffing each commit's new file content
//! against the previous content: kept lines retain their blame, inserted
//! lines are attributed to the committing author — the same attribution rule
//! `git blame` implements.
//!
//! The algorithm trims the common prefix and suffix (commits usually touch a
//! small contiguous region) and runs an exact LCS on the remaining middle.
//! If the middle is pathologically large the diff degrades to
//! delete-all/insert-all for the middle — still a correct patch, just not
//! minimal, mirroring the heuristic cutoffs of production diff tools.

/// One hunk of an edit script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// The next `n` lines are unchanged.
    Keep(usize),
    /// The next `n` old lines are removed.
    Delete(usize),
    /// These new lines are inserted.
    Insert(Vec<String>),
}

/// Middle sizes whose product exceeds this fall back to full replacement.
const LCS_CELL_LIMIT: usize = 16_000_000;

/// Computes a line edit script transforming `old` into `new`.
///
/// The script is minimal whenever the changed region is below the DP cutoff
/// (16M cells, ~4000×4000 changed lines), which covers every realistic
/// commit; `patch(old, &diff_lines(old, new)) == new` holds unconditionally.
///
/// # Examples
///
/// ```
/// use vc_vcs::diff::{diff_lines, patch};
/// let old = ["a", "b", "c"].map(String::from).to_vec();
/// let new = ["a", "x", "c"].map(String::from).to_vec();
/// let script = diff_lines(&old, &new);
/// assert_eq!(patch(&old, &script), new);
/// ```
pub fn diff_lines(old: &[String], new: &[String]) -> Vec<Edit> {
    // Trim common prefix.
    let mut prefix = 0;
    while prefix < old.len() && prefix < new.len() && old[prefix] == new[prefix] {
        prefix += 1;
    }
    // Trim common suffix (not overlapping the prefix).
    let mut suffix = 0;
    while suffix < old.len() - prefix
        && suffix < new.len() - prefix
        && old[old.len() - 1 - suffix] == new[new.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let mid_old = &old[prefix..old.len() - suffix];
    let mid_new = &new[prefix..new.len() - suffix];

    let mut edits = Vec::new();
    if prefix > 0 {
        edits.push(Edit::Keep(prefix));
    }
    append_middle(mid_old, mid_new, &mut edits);
    if suffix > 0 {
        edits.push(Edit::Keep(suffix));
    }
    coalesce(edits)
}

/// Diffs the changed middle region via LCS, appending hunks to `edits`.
fn append_middle(old: &[String], new: &[String], edits: &mut Vec<Edit>) {
    let (n, m) = (old.len(), new.len());
    if n == 0 && m == 0 {
        return;
    }
    if n == 0 {
        edits.push(Edit::Insert(new.to_vec()));
        return;
    }
    if m == 0 {
        edits.push(Edit::Delete(n));
        return;
    }
    if n.saturating_mul(m) > LCS_CELL_LIMIT {
        edits.push(Edit::Delete(n));
        edits.push(Edit::Insert(new.to_vec()));
        return;
    }

    // LCS length table; lcs[i][j] = LCS of old[i..], new[j..].
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[at(i, j)] = if old[i] == new[j] {
                lcs[at(i + 1, j + 1)] + 1
            } else {
                lcs[at(i + 1, j)].max(lcs[at(i, j + 1)])
            };
        }
    }
    // Walk the table emitting hunks.
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old[i] == new[j] {
            push_keep(edits, 1);
            i += 1;
            j += 1;
        } else if lcs[at(i + 1, j)] >= lcs[at(i, j + 1)] {
            push_delete(edits, 1);
            i += 1;
        } else {
            push_insert(edits, new[j].clone());
            j += 1;
        }
    }
    if i < n {
        push_delete(edits, n - i);
    }
    while j < m {
        push_insert(edits, new[j].clone());
        j += 1;
    }
}

fn push_keep(edits: &mut Vec<Edit>, n: usize) {
    match edits.last_mut() {
        Some(Edit::Keep(k)) => *k += n,
        _ => edits.push(Edit::Keep(n)),
    }
}

fn push_delete(edits: &mut Vec<Edit>, n: usize) {
    match edits.last_mut() {
        Some(Edit::Delete(k)) => *k += n,
        _ => edits.push(Edit::Delete(n)),
    }
}

fn push_insert(edits: &mut Vec<Edit>, line: String) {
    match edits.last_mut() {
        Some(Edit::Insert(lines)) => lines.push(line),
        _ => edits.push(Edit::Insert(vec![line])),
    }
}

/// Merges adjacent same-kind hunks (defensive; builders above already merge).
fn coalesce(edits: Vec<Edit>) -> Vec<Edit> {
    let mut out: Vec<Edit> = Vec::with_capacity(edits.len());
    for e in edits {
        match (out.last_mut(), e) {
            (Some(Edit::Keep(a)), Edit::Keep(b)) => *a += b,
            (Some(Edit::Delete(a)), Edit::Delete(b)) => *a += b,
            (Some(Edit::Insert(a)), Edit::Insert(b)) => a.extend(b),
            (_, e) => out.push(e),
        }
    }
    out
}

/// Applies an edit script to `old`, producing the new line vector.
///
/// # Panics
///
/// Panics if the script does not match `old` (wrong hunk lengths).
pub fn patch(old: &[String], script: &[Edit]) -> Vec<String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for edit in script {
        match edit {
            Edit::Keep(n) => {
                out.extend_from_slice(&old[pos..pos + n]);
                pos += n;
            }
            Edit::Delete(n) => {
                pos += n;
            }
            Edit::Insert(lines) => {
                out.extend_from_slice(lines);
            }
        }
    }
    assert_eq!(pos, old.len(), "edit script does not cover the old file");
    out
}

/// The number of inserted plus deleted lines in a script (the "churn").
pub fn churn(script: &[Edit]) -> usize {
    script
        .iter()
        .map(|e| match e {
            Edit::Keep(_) => 0,
            Edit::Delete(n) => *n,
            Edit::Insert(lines) => lines.len(),
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn check(old: &[&str], new: &[&str]) -> Vec<Edit> {
        let (o, n) = (lines(old), lines(new));
        let script = diff_lines(&o, &n);
        assert_eq!(
            patch(&o, &script),
            n,
            "patch(diff) != new for {o:?} -> {n:?}"
        );
        script
    }

    #[test]
    fn identical_files_are_one_keep() {
        let s = check(&["a", "b"], &["a", "b"]);
        assert_eq!(s, vec![Edit::Keep(2)]);
    }

    #[test]
    fn pure_insertion() {
        let s = check(&["a", "c"], &["a", "b", "c"]);
        assert_eq!(churn(&s), 1);
    }

    #[test]
    fn pure_deletion() {
        let s = check(&["a", "b", "c"], &["a", "c"]);
        assert_eq!(churn(&s), 1);
    }

    #[test]
    fn replacement_in_middle() {
        let s = check(&["a", "b", "c"], &["a", "x", "c"]);
        assert_eq!(churn(&s), 2);
    }

    #[test]
    fn empty_to_full_and_back() {
        check(&[], &["a", "b"]);
        check(&["a", "b"], &[]);
        check(&[], &[]);
    }

    #[test]
    fn completely_different() {
        let s = check(&["a", "b"], &["x", "y", "z"]);
        assert_eq!(churn(&s), 5);
    }

    #[test]
    fn repeated_lines() {
        check(&["a", "a", "a"], &["a", "a"]);
        check(&["x", "a", "x", "a"], &["a", "x", "a", "x"]);
    }

    #[test]
    fn diff_is_minimal_for_single_edit() {
        let s = check(&["1", "2", "3", "4", "5"], &["1", "2", "changed", "4", "5"]);
        assert_eq!(churn(&s), 2, "expected one delete + one insert: {s:?}");
    }

    #[test]
    fn two_separate_edits() {
        let s = check(
            &["a", "b", "c", "d", "e", "f"],
            &["a", "B", "c", "d", "E", "f"],
        );
        assert_eq!(churn(&s), 4);
    }

    #[test]
    fn interleaved_shared_lines_use_lcs() {
        // LCS of abcab / acba is "acb" (3) -> churn = 2 + 1 = 3.
        let s = check(&["a", "b", "c", "a", "b"], &["a", "c", "b", "a"]);
        assert_eq!(churn(&s), 3, "{s:?}");
    }
}
