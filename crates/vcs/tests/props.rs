//! Property tests for the VCS substrate: the diff/patch inverse law, blame
//! coverage, and checkout consistency.
//!
//! Each property runs as a deterministic loop over cases drawn from a
//! seeded [`SplitMix64`]; a failing case prints its case number so it can
//! be replayed exactly.

use vc_obs::SplitMix64;
use vc_vcs::{
    diff::{
        churn,
        diff_lines,
        patch, //
    },
    FileWrite, Repository,
};

/// A random file as a vector of short lines over a tiny alphabet, so that
/// diffs see plenty of genuine matches and moves.
fn random_lines(rng: &mut SplitMix64, max_lines: usize) -> Vec<String> {
    const POOL: &[char] = &['a', 'b', 'c', 'd', 'x', 'y', 'z'];
    let n = rng.range_usize(0, max_lines);
    (0..n)
        .map(|_| {
            let len = rng.range_inclusive_usize(0, 3);
            (0..len).map(|_| *rng.choice(POOL)).collect()
        })
        .collect()
}

/// A random history: each revision is a full rewrite of the file.
fn random_history(rng: &mut SplitMix64, min_revs: usize, max_revs: usize) -> Vec<Vec<String>> {
    let n = rng.range_usize(min_revs, max_revs);
    (0..n).map(|_| random_lines(rng, 40)).collect()
}

/// patch(old, diff(old, new)) == new, always.
#[test]
fn patch_of_diff_is_identity() {
    let mut rng = SplitMix64::new(0xC1);
    for case in 0..200 {
        let old = random_lines(&mut rng, 40);
        let new = random_lines(&mut rng, 40);
        let script = diff_lines(&old, &new);
        assert_eq!(patch(&old, &script), new, "case {case}: {old:?} -> {new:?}");
    }
}

/// A diff never claims more churn than a full rewrite.
#[test]
fn churn_is_bounded() {
    let mut rng = SplitMix64::new(0xC2);
    for case in 0..200 {
        let old = random_lines(&mut rng, 40);
        let new = random_lines(&mut rng, 40);
        let script = diff_lines(&old, &new);
        assert!(churn(&script) <= old.len() + new.len(), "case {case}");
    }
}

/// Diffing a file against itself is pure Keep.
#[test]
fn self_diff_is_empty() {
    let mut rng = SplitMix64::new(0xC3);
    for case in 0..200 {
        let old = random_lines(&mut rng, 40);
        let script = diff_lines(&old, &old);
        assert_eq!(churn(&script), 0, "case {case}: {old:?}");
    }
}

/// After any sequence of commits, blame covers exactly the file's lines,
/// and every blame entry names a registered author and commit.
#[test]
fn blame_covers_exactly_the_file() {
    let mut rng = SplitMix64::new(0xC4);
    for case in 0..60 {
        let contents = random_history(&mut rng, 1, 6);
        let mut repo = Repository::new();
        let authors = [repo.add_author("a"), repo.add_author("b")];
        for (i, lines) in contents.iter().enumerate() {
            repo.commit(
                authors[i % 2],
                1_000 + i as i64,
                format!("rev {i}"),
                vec![FileWrite {
                    path: "f".into(),
                    content: lines.join("\n") + "\n",
                }],
            );
        }
        let last = contents.last().unwrap();
        // Writing an empty line list still produces "\n": one empty line,
        // matching git's accounting of a file containing a single newline.
        let expect = last.len().max(1);
        assert_eq!(repo.line_count("f"), expect, "case {case}");
        for line in 1..=expect as u32 {
            let b = repo.blame("f", line).expect("line has blame");
            assert!(authors.contains(&b.author), "case {case}");
            assert!((b.commit.0 as usize) < contents.len(), "case {case}");
        }
        assert!(repo.blame("f", expect as u32 + 1).is_none(), "case {case}");
    }
}

/// `checkout(c)` reproduces the blame the repository had at commit `c`.
#[test]
fn checkout_blame_matches_incremental_blame() {
    let mut rng = SplitMix64::new(0xC5);
    for case in 0..60 {
        let contents = random_history(&mut rng, 2, 6);
        // Build incrementally, capturing blame after the first commit.
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let b = repo.add_author("b");
        let mut first_commit = None;
        let mut first_blames = Vec::new();
        for (i, lines) in contents.iter().enumerate() {
            let id = repo.commit(
                if i % 2 == 0 { a } else { b },
                1_000 + i as i64,
                format!("rev {i}"),
                vec![FileWrite {
                    path: "f".into(),
                    content: lines.join("\n") + "\n",
                }],
            );
            if i == 0 {
                first_commit = Some(id);
                for line in 1..=repo.line_count("f") as u32 {
                    first_blames.push(repo.blame("f", line).unwrap());
                }
            }
        }
        let old = repo.checkout(first_commit.unwrap());
        assert_eq!(old.line_count("f"), first_blames.len(), "case {case}");
        for (i, expect) in first_blames.iter().enumerate() {
            assert_eq!(old.blame("f", i as u32 + 1), Some(*expect), "case {case}");
        }
    }
}

/// Snapshot trees agree with replayed file contents.
#[test]
fn snapshot_matches_final_content() {
    let mut rng = SplitMix64::new(0xC6);
    for case in 0..60 {
        let contents = random_history(&mut rng, 1, 5);
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let mut last = None;
        for (i, lines) in contents.iter().enumerate() {
            last = Some(repo.commit(
                a,
                i as i64,
                "c",
                vec![FileWrite {
                    path: "f".into(),
                    content: lines.join("\n") + "\n",
                }],
            ));
        }
        let snap = repo.snapshot_at(last.unwrap());
        let expected = contents.last().unwrap().join("\n") + "\n";
        assert_eq!(snap.get("f"), Some(&expected), "case {case}");
    }
}
