//! Property tests for the VCS substrate: the diff/patch inverse law, blame
//! coverage, and checkout consistency.

use proptest::prelude::*;
use vc_vcs::{
    diff::{
        churn,
        diff_lines,
        patch, //
    },
    FileWrite,
    Repository,
};

fn lines_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[abcdxyz]{0,3}", 0..40)
}

proptest! {
    /// patch(old, diff(old, new)) == new, always.
    #[test]
    fn patch_of_diff_is_identity(old in lines_strategy(), new in lines_strategy()) {
        let script = diff_lines(&old, &new);
        prop_assert_eq!(patch(&old, &script), new);
    }

    /// A diff never claims more churn than a full rewrite.
    #[test]
    fn churn_is_bounded(old in lines_strategy(), new in lines_strategy()) {
        let script = diff_lines(&old, &new);
        prop_assert!(churn(&script) <= old.len() + new.len());
    }

    /// Diffing a file against itself is pure Keep.
    #[test]
    fn self_diff_is_empty(old in lines_strategy()) {
        let script = diff_lines(&old, &old);
        prop_assert_eq!(churn(&script), 0);
    }

    /// After any sequence of commits, blame covers exactly the file's lines,
    /// and every blame entry names a registered author and commit.
    #[test]
    fn blame_covers_exactly_the_file(
        contents in proptest::collection::vec(lines_strategy(), 1..6)
    ) {
        let mut repo = Repository::new();
        let authors = [repo.add_author("a"), repo.add_author("b")];
        for (i, lines) in contents.iter().enumerate() {
            repo.commit(
                authors[i % 2],
                1_000 + i as i64,
                format!("rev {i}"),
                vec![FileWrite {
                    path: "f".into(),
                    content: lines.join("\n") + "\n",
                }],
            );
        }
        let last = contents.last().unwrap();
        // Writing an empty line list still produces "\n": one empty line,
        // matching git's accounting of a file containing a single newline.
        let expect = last.len().max(1);
        prop_assert_eq!(repo.line_count("f"), expect);
        for line in 1..=expect as u32 {
            let b = repo.blame("f", line).expect("line has blame");
            prop_assert!(authors.contains(&b.author));
            prop_assert!((b.commit.0 as usize) < contents.len());
        }
        prop_assert!(repo.blame("f", expect as u32 + 1).is_none());
    }

    /// `checkout(c)` reproduces the blame the repository had at commit `c`.
    #[test]
    fn checkout_blame_matches_incremental_blame(
        contents in proptest::collection::vec(lines_strategy(), 2..6)
    ) {
        // Build incrementally, capturing blame after the first commit.
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let b = repo.add_author("b");
        let mut first_commit = None;
        let mut first_blames = Vec::new();
        for (i, lines) in contents.iter().enumerate() {
            let id = repo.commit(
                if i % 2 == 0 { a } else { b },
                1_000 + i as i64,
                format!("rev {i}"),
                vec![FileWrite {
                    path: "f".into(),
                    content: lines.join("\n") + "\n",
                }],
            );
            if i == 0 {
                first_commit = Some(id);
                for line in 1..=repo.line_count("f") as u32 {
                    first_blames.push(repo.blame("f", line).unwrap());
                }
            }
        }
        let old = repo.checkout(first_commit.unwrap());
        prop_assert_eq!(old.line_count("f"), first_blames.len());
        for (i, expect) in first_blames.iter().enumerate() {
            prop_assert_eq!(old.blame("f", i as u32 + 1), Some(*expect));
        }
    }

    /// Snapshot trees agree with replayed file contents.
    #[test]
    fn snapshot_matches_final_content(
        contents in proptest::collection::vec(lines_strategy(), 1..5)
    ) {
        let mut repo = Repository::new();
        let a = repo.add_author("a");
        let mut last = None;
        for (i, lines) in contents.iter().enumerate() {
            last = Some(repo.commit(a, i as i64, "c", vec![FileWrite {
                path: "f".into(),
                content: lines.join("\n") + "\n",
            }]));
        }
        let snap = repo.snapshot_at(last.unwrap());
        let expected = contents.last().unwrap().join("\n") + "\n";
        prop_assert_eq!(snap.get("f"), Some(&expected));
    }
}
