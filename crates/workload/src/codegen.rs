//! MiniC snippet generators for every injected construct.
//!
//! Each generator returns an [`Item`]: one or two functions (a before/after
//! pair when the construct is introduced by a later commit), the prototypes
//! its file needs, and the ground-truth plant for the function expected to
//! carry exactly one unused-definition candidate.
//!
//! Design rules the generators obey:
//!
//! - every function name is globally unique (`<kind>_<app-counter>`), so
//!   findings match ground truth by function name alone;
//! - callee names are unique per item unless peer statistics are the point
//!   (peer groups share their callee), keeping §5.4 interference away;
//! - every variable is syntactically referenced somewhere, so the Clang
//!   baseline stays silent (§8.4.1: maintainers cleaned `-Wunused`);
//! - parameter-bug signatures rotate through variants so no signature group
//!   exceeds the peer threshold by accident.

use crate::truth::PlantKind;

/// Who commits an edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The file's long-term maintainer.
    Owner,
    /// A first-time, low-familiarity contributor (introduces real bugs).
    Newcomer,
    /// A moderately familiar contributor (introduces minor-defect FPs).
    Contributor,
    /// A drive-by author of benign same-author redundancy.
    Drifter,
}

/// When an edit lands, relative to the generated timeline.
#[derive(Clone, Copy, Debug)]
pub enum When {
    /// At an absolute unix timestamp.
    At(i64),
}

/// A later commit replacing a function's text.
#[derive(Clone, Debug)]
pub struct FuncEdit {
    /// New full text of the function.
    pub text: String,
    /// Who commits it.
    pub role: Role,
    /// When it lands.
    pub when: When,
    /// Commit message.
    pub message: String,
}

/// One generated function with an optional later edit.
#[derive(Clone, Debug)]
pub struct ItemFunc {
    /// Unique function name.
    pub name: String,
    /// Initial (v1) text; `None` when the function is added by the edit.
    pub initial: Option<String>,
    /// Optional later edit.
    pub edit: Option<FuncEdit>,
}

/// One injected construct.
#[derive(Clone, Debug)]
pub struct Item {
    /// Functions, in file order.
    pub funcs: Vec<ItemFunc>,
    /// Prototype lines the containing file must declare.
    pub protos: Vec<String>,
    /// Ground truth for candidate-bearing functions: `(func index in
    /// `funcs`, kind)` pairs. Empty for filler.
    pub plants: Vec<(usize, PlantKind)>,
}

/// A clean filler function; `shape` selects among a few bodies.
pub fn filler(id: &str, shape: usize) -> Item {
    let name = format!("util_{id}");
    let text = match shape % 4 {
        0 => format!(
            "int {name}(int a, int b) {{\n\
             int acc = a + b;\n\
             if (acc > b) {{ acc = acc - 1; }}\n\
             return acc;\n\
             }}\n"
        ),
        1 => format!(
            "int {name}(int n) {{\n\
             int s = 0;\n\
             for (int i = 0; i < n; i = i + 1) {{ s = s + i; }}\n\
             return s;\n\
             }}\n"
        ),
        2 => format!(
            "int {name}(int a) {{\n\
             int v = helper_{id}(a);\n\
             if (v < 0) {{ return v; }}\n\
             return v + 1;\n\
             }}\n"
        ),
        _ => format!(
            "void {name}(int a, int lim) {{\n\
             int cur = a;\n\
             while (cur < lim) {{ step_{id}(cur); cur = cur + 2; }}\n\
             done_{id}(cur);\n\
             }}\n"
        ),
    };
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(text),
            edit: None,
        }],
        protos: vec![],
        plants: vec![],
    }
}

/// A confirmed missing-check bug: a checked return value whose check is
/// destroyed by a later overwrite (the Fig. 8 shape).
pub fn bug_retval_overwrite(id: &str, when: i64, plant: PlantKind) -> Item {
    let name = format!("acl_{id}");
    let v1 = format!(
        "int {name}(int en) {{\n\
         int ret = get_perm_{id}(en);\n\
         if (ret) {{ fail_{id}(ret); }}\n\
         return 0;\n\
         }}\n"
    );
    let v2 = format!(
        "int {name}(int en) {{\n\
         int ret = get_perm_{id}(en);\n\
         ret = calc_mask_{id}(en);\n\
         if (ret) {{ fail_{id}(ret); }}\n\
         return 0;\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(v1),
            edit: Some(FuncEdit {
                text: v2,
                role: Role::Newcomer,
                when: When::At(when),
                message: format!("recompute mask in acl_{id}"),
            }),
        }],
        protos: vec![],
        plants: vec![(0, plant)],
    }
}

/// A confirmed missing-check bug: a previously-checked call result becomes
/// ignored entirely (latent-error shape of Fig. 6a).
pub fn bug_ignored_retval(id: &str, when: i64, plant: PlantKind) -> Item {
    let name = format!("init_{id}");
    let v1 = format!(
        "int {name}(int a) {{\n\
         int st = op_read_{id}(a);\n\
         return chk_{id}(st);\n\
         }}\n"
    );
    let v2 = format!(
        "int {name}(int a) {{\n\
         op_read_{id}(a);\n\
         return chk_{id}(a);\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(v1),
            edit: Some(FuncEdit {
                text: v2,
                role: Role::Newcomer,
                when: When::At(when),
                message: format!("simplify init path {id}"),
            }),
        }],
        protos: vec![format!("int op_read_{id}(int a);")],
        plants: vec![(0, plant)],
    }
}

/// A confirmed semantic bug: a meaningful definition overwritten by a
/// constant before use (Fig. 6b flavor).
pub fn bug_overwritten(id: &str, when: i64, plant: PlantKind) -> Item {
    let name = format!("host_{id}");
    let v1 = format!(
        "void {name}(int a) {{\n\
         int mode = a & 7;\n\
         apply_{id}(mode);\n\
         }}\n"
    );
    let v2 = format!(
        "void {name}(int a) {{\n\
         int mode = a & 7;\n\
         mode = 0;\n\
         apply_{id}(mode);\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(v1),
            edit: Some(FuncEdit {
                text: v2,
                role: Role::Newcomer,
                when: When::At(when),
                message: format!("default mode in host_{id}"),
            }),
        }],
        protos: vec![],
        plants: vec![(0, plant)],
    }
}

/// Parameter-signature variants for [`bug_param`], rotated to stay under the
/// peer-definition threshold.
const PARAM_SIGS: &[(&str, &str)] = &[
    ("char *path, int bufsz", "path"),
    ("char *path, long bufsz", "path"),
    ("char *path, unsigned bufsz", "path"),
    ("char *path, size_t bufsz", "path"),
    ("int fd, int bufsz", "fd"),
    ("int fd, long bufsz", "fd"),
    ("unsigned flags, int bufsz", "flags"),
    ("unsigned flags, size_t bufsz", "flags"),
];

/// A confirmed configuration bug: a caller-supplied argument overwritten
/// inside the callee (the Fig. 1b shape). Two functions: the caller lives in
/// v1 (by the owner), the buggy callee is added later by a newcomer.
pub fn bug_param(id: &str, variant: usize, when: i64, plant: PlantKind) -> Item {
    let (sig, first) = PARAM_SIGS[variant % PARAM_SIGS.len()];
    let open = format!("open_buf_{id}");
    let caller = format!("start_{id}");
    let caller_v1 = format!(
        "void {caller}(void) {{\n\
         int h = {open}(src_{id}(), 0);\n\
         report_{id}(h);\n\
         }}\n"
    );
    let callee_v2 = format!(
        "int {open}({sig}) {{\n\
         bufsz = 1400;\n\
         setup_{id}({first}, bufsz);\n\
         return bufsz;\n\
         }}\n"
    );
    Item {
        funcs: vec![
            ItemFunc {
                name: caller,
                initial: Some(caller_v1),
                edit: None,
            },
            ItemFunc {
                name: open.clone(),
                initial: None,
                edit: Some(FuncEdit {
                    text: callee_v2,
                    role: Role::Newcomer,
                    when: When::At(when),
                    message: format!("add buffered open {id}"),
                }),
            },
        ],
        protos: vec![],
        plants: vec![(1, plant)],
    }
}

/// A minor-defect or debug-code false positive: same shape as a retval
/// overwrite, but introduced by a (more familiar) contributor, and not
/// confirmable as a bug ("the call cannot fail in this context").
pub fn fp_retval(id: &str, when: i64, debug_code: bool) -> Item {
    let prefix = if debug_code { "dbg" } else { "sync" };
    let name = format!("{prefix}_{id}");
    let v1 = format!(
        "int {name}(int a) {{\n\
         int rc = try_{id}(a);\n\
         if (rc) {{ warn_{id}(rc); }}\n\
         return 0;\n\
         }}\n"
    );
    let v2 = format!(
        "int {name}(int a) {{\n\
         int rc = try_{id}(a);\n\
         rc = settle_{id}(a);\n\
         if (rc) {{ warn_{id}(rc); }}\n\
         return 0;\n\
         }}\n"
    );
    Item {
        funcs: vec![
            // The owner adds the function shortly before the contributor's
            // change, so the definition line itself is recently authored
            // (keeping it visible to Coverity's blame-based suppression).
            ItemFunc {
                name: name.clone(),
                initial: None,
                edit: Some(FuncEdit {
                    text: v1,
                    role: Role::Owner,
                    when: When::At(when - 40 * 86_400),
                    message: format!("add {prefix} path {id}"),
                }),
            },
            ItemFunc {
                name,
                initial: None,
                edit: Some(FuncEdit {
                    text: v2,
                    role: Role::Contributor,
                    when: When::At(when),
                    message: format!("settle before warn in {prefix}_{id}"),
                }),
            },
        ],
        protos: vec![],
        plants: vec![(0, PlantKind::FalsePositive { debug_code })],
    }
}

/// An intentional configuration-dependency pattern (§5.1): the only use of
/// the value sits under a feature guard that the active build disables.
pub fn intentional_config(id: &str, plant: PlantKind) -> Item {
    let name = format!("net_probe_{id}");
    let text = format!(
        "int {name}(int a) {{\n\
         int hostcfg = cfg_read_{id}(a);\n\
         #ifdef FEATURE_{id}\n\
         net_apply_{id}(hostcfg);\n\
         #endif\n\
         return 0;\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(text),
            edit: None,
        }],
        protos: vec![],
        plants: vec![(0, plant)],
    }
}

/// An intentional cursor (§5.2): the final `*o++` increment is dead and
/// later overwritten by another author's buffer reset — cross-scope, but a
/// cursor idiom, pruned by the cursor pattern.
pub fn intentional_cursor(id: &str, when: i64, plant: PlantKind) -> Item {
    let name = format!("fmt_buf_{id}");
    let v1 = format!(
        "void {name}(char *o, int n) {{\n\
         for (int j = 0; j < n; j = j + 1) {{ *o++ = 'x'; }}\n\
         *o++ = '\\0';\n\
         }}\n"
    );
    let v2 = format!(
        "void {name}(char *o, int n) {{\n\
         for (int j = 0; j < n; j = j + 1) {{ *o++ = 'x'; }}\n\
         *o++ = '\\0';\n\
         o = out_base_{id}();\n\
         flush_{id}(o);\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(v1),
            edit: Some(FuncEdit {
                text: v2,
                role: Role::Contributor,
                when: When::At(when),
                message: format!("flush formatted buffer {id}"),
            }),
        }],
        protos: vec![format!("char *out_base_{id}(void);")],
        plants: vec![(0, plant)],
    }
}

/// An intentional unused hint (§5.3): the definition line carries the
/// `unused` keyword by naming convention.
pub fn intentional_hint(id: &str, plant: PlantKind) -> Item {
    let name = format!("compat_{id}");
    let text = format!(
        "int {name}(int a) {{\n\
         int rc_unused_{id} = run_op_{id}(a);\n\
         rc_unused_{id} = 0;\n\
         return ack_{id}(rc_unused_{id});\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(text),
            edit: None,
        }],
        protos: vec![],
        plants: vec![(0, plant)],
    }
}

/// One site of an intentional peer group (§5.4): a bare call ignoring the
/// result of the group's log-style function. The group's prototype must be
/// emitted once per file via [`peer_proto`].
pub fn intentional_peer_site(group: usize, j: usize, id: &str, plant: PlantKind) -> Item {
    let name = format!("evt_{group}_{j}_{id}");
    let text = format!(
        "void {name}(int a) {{\n\
         logx_{group}(\"evt\");\n\
         note_{id}(a);\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(text),
            edit: None,
        }],
        protos: vec![peer_proto(group)],
        plants: vec![(0, plant)],
    }
}

/// The prototype line of peer group `group`'s shared callee.
pub fn peer_proto(group: usize) -> String {
    format!("int logx_{group}(char *m);")
}

/// One checked-function group: a project-defined status function, `consumers`
/// call sites that check its result, and `benign` same-author sites that
/// deliberately ignore it. The ignoring sites are what Smatch's and
/// Coverity's majority heuristics flag (§8.4.3/§8.4.4) — false positives,
/// since the same developer wrote both the callee and the ignoring sites.
///
/// Everything lives in one item (one file, one owner) so all blame agrees.
pub fn checked_group(group: usize, id: &str, consumers: usize, benign: usize) -> Item {
    let callee = format!("status_chk_{group}");
    let mut funcs = Vec::new();
    funcs.push(ItemFunc {
        name: callee.clone(),
        initial: Some(format!(
            "int {callee}(int a) {{
             return probe_{group}_{id}(a);
             }}
"
        )),
        edit: None,
    });
    for j in 0..consumers {
        let name = format!("chk_use_{group}_{j}_{id}");
        funcs.push(ItemFunc {
            name: name.clone(),
            initial: Some(format!(
                "void {name}(int a) {{
                 int r = {callee}(a);
                 if (r) {{ bail_{group}_{j}_{id}(r); }}
                 }}
"
            )),
            edit: None,
        });
    }
    let mut plants = Vec::new();
    for j in 0..benign {
        let name = format!("chk_skip_{group}_{j}_{id}");
        plants.push((funcs.len(), PlantKind::NonCross { real_bug: false }));
        funcs.push(ItemFunc {
            name: name.clone(),
            initial: Some(format!(
                "void {name}(int a) {{
                 {callee}(a);
                 after_{group}_{j}_{id}(a);
                 }}
"
            )),
            edit: None,
        });
    }
    Item {
        funcs,
        protos: vec![],
        plants,
    }
}

/// A confirmed missing-check bug shaped so the Smatch/Coverity majority
/// heuristics can also see it: a newcomer's edit drops the check on a
/// mostly-checked status function (defined by another author in
/// [`checked_group`] `group`).
pub fn bug_ignored_checked(id: &str, group: usize, when: i64, plant: PlantKind) -> Item {
    let name = format!("seq_{id}");
    let callee = format!("status_chk_{group}");
    let v1 = format!(
        "int {name}(int a) {{
         int r = {callee}(a);
         if (r) {{ return r; }}
         return fin_{id}(a);
         }}
"
    );
    let v2 = format!(
        "int {name}(int a) {{
         {callee}(a);
         return fin_{id}(a);
         }}
"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: Some(v1),
            edit: Some(FuncEdit {
                text: v2,
                role: Role::Newcomer,
                when: When::At(when),
                message: format!("streamline sequence {id}"),
            }),
        }],
        protos: vec![],
        plants: vec![(0, plant)],
    }
}

/// A same-author unused *call result* that is nonetheless a real bug —
/// ValueCheck's deliberate blind spot (§8.4.5's closing note), visible to
/// Coverity's unused-value check.
pub fn non_cross_real(id: &str, role: Role, when: i64) -> Item {
    let name = format!("tally_{id}");
    // The callee is defined in the same commit by the same author, so the
    // return-value rule sees matching authors on both sides: not cross-scope.
    let text = format!(
        "int fetch_{id}(int a) {{\n\
         return raw_get_{id}(a);\n\
         }}\n\
         void {name}(int a) {{\n\
         int q = fetch_{id}(a);\n\
         q = refetch_{id}(a);\n\
         put_{id}(q);\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: None,
            edit: Some(FuncEdit {
                text,
                role,
                when: When::At(when),
                message: format!("add tally {id}"),
            }),
        }],
        protos: vec![],
        plants: vec![(0, PlantKind::NonCross { real_bug: true })],
    }
}

/// A same-author (non-cross-scope) unused definition, added wholesale by one
/// author in a single commit.
pub fn non_cross(id: &str, role: Role, when: i64, const_init: bool) -> Item {
    let name = format!("scan_{id}");
    // Most same-author redundancies in real code are defensive constant
    // initializations (which fb-infer suppresses); a minority carry a
    // computed value.
    let init = if const_init {
        "0".to_string()
    } else {
        "a * 2".to_string()
    };
    let text = format!(
        "void {name}(int a) {{\n\
         int t = {init};\n\
         t = a + 3;\n\
         emit_{id}(t);\n\
         }}\n"
    );
    Item {
        funcs: vec![ItemFunc {
            name,
            initial: None,
            edit: Some(FuncEdit {
                text,
                role,
                when: When::At(when),
                message: format!("add scanner {id}"),
            }),
        }],
        protos: vec![],
        plants: vec![(0, PlantKind::NonCross { real_bug: false })],
    }
}

/// A §3.1 preliminary-history construct: an unused definition present in the
/// 2019 tree and removed later. `intro` is the (pre-2019) introduction time,
/// `removal` the (2019–2021) removal time.
///
/// For `cross_scope` plants the unused definition comes from a two-author
/// sequence; for `peer_missed` the 2019 candidate is a bare call to the
/// shared peer callee of `peer_group`, which the peer pruner removes.
pub fn prelim(
    id: &str,
    intro: i64,
    removal: i64,
    bugfix: bool,
    cross_scope: bool,
    peer_missed: bool,
    peer_group: usize,
) -> Item {
    let name = format!("pre_{id}");
    let message = if bugfix {
        format!("fix: handle result properly in pre_{id}")
    } else {
        format!("cleanup: drop redundant assignment in pre_{id}")
    };
    if peer_missed {
        // 2019 state ignores the peer callee's result; the fix checks it.
        let v1 = format!(
            "int {name}(int a) {{\n\
             prep_{id}(a);\n\
             return 0;\n\
             }}\n"
        );
        let v2 = format!(
            "int {name}(int a) {{\n\
             prep_{id}(a);\n\
             logx_{peer_group}(\"pre\");\n\
             return 0;\n\
             }}\n"
        );
        let v3 = format!(
            "int {name}(int a) {{\n\
             prep_{id}(a);\n\
             int lrc = logx_{peer_group}(\"pre\");\n\
             if (lrc < 0) {{ return lrc; }}\n\
             return 0;\n\
             }}\n"
        );
        return Item {
            funcs: vec![
                ItemFunc {
                    name: name.clone(),
                    initial: Some(v1),
                    edit: Some(FuncEdit {
                        text: v2,
                        role: Role::Newcomer,
                        when: When::At(intro),
                        message: format!("log prep in pre_{id}"),
                    }),
                },
                // The removal is modelled as a second edit to the same
                // function; the generator flattens consecutive edits.
                ItemFunc {
                    name,
                    initial: None,
                    edit: Some(FuncEdit {
                        text: v3,
                        role: Role::Owner,
                        when: When::At(removal),
                        message,
                    }),
                },
            ],
            protos: vec![peer_proto(peer_group)],
            plants: vec![(
                0,
                PlantKind::PrelimRemoved {
                    bugfix,
                    cross_scope,
                    peer_missed,
                },
            )],
        };
    }
    let v1 = format!(
        "int {name}(int a) {{\n\
         int pst = pread_{id}(a);\n\
         finish_{id}(pst);\n\
         return 0;\n\
         }}\n"
    );
    let (v2, intro_role): (String, Role) = if cross_scope {
        (
            format!(
                "int {name}(int a) {{\n\
                 int pst = pread_{id}(a);\n\
                 pst = pfall_{id}(a);\n\
                 finish_{id}(pst);\n\
                 return 0;\n\
                 }}\n"
            ),
            Role::Newcomer,
        )
    } else {
        // Single-author redundancy: the same (owner) author rewrites their
        // own function, so blame on def and overwrite agree.
        (
            format!(
                "int {name}(int a) {{\n\
                 int pst = pread_{id}(a);\n\
                 pst = pfall_{id}(a);\n\
                 finish_{id}(pst);\n\
                 return 0;\n\
                 }}\n"
            ),
            Role::Owner,
        )
    };
    let v3 = format!(
        "int {name}(int a) {{\n\
         int pst = pfall_{id}(a);\n\
         if (pst < 0) {{ return pst; }}\n\
         finish_{id}(pst);\n\
         return 0;\n\
         }}\n"
    );
    Item {
        funcs: vec![
            ItemFunc {
                name: name.clone(),
                initial: Some(v1),
                edit: Some(FuncEdit {
                    text: v2,
                    role: intro_role,
                    when: When::At(intro),
                    message: format!("add fallback path in pre_{id}"),
                }),
            },
            ItemFunc {
                name,
                initial: None,
                edit: Some(FuncEdit {
                    text: v3,
                    role: Role::Owner,
                    when: When::At(removal),
                    message,
                }),
            },
        ],
        protos: vec![],
        plants: vec![(
            0,
            PlantKind::PrelimRemoved {
                bugfix,
                cross_scope,
                peer_missed,
            },
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::{
        parser::parse,
        span::FileId, //
    };

    fn parses(item: &Item) {
        for f in &item.funcs {
            for text in f.initial.iter().chain(f.edit.as_ref().map(|e| &e.text)) {
                parse(FileId(0), text)
                    .unwrap_or_else(|e| panic!("snippet for {} fails: {e}\n{text}", f.name));
            }
        }
        for p in &item.protos {
            parse(FileId(0), p).unwrap_or_else(|e| panic!("proto fails: {e}\n{p}"));
        }
    }

    #[test]
    fn all_snippets_parse() {
        let pk = PlantKind::NonCross { real_bug: false };
        parses(&filler("t0", 0));
        parses(&filler("t1", 1));
        parses(&filler("t2", 2));
        parses(&filler("t3", 3));
        parses(&bug_retval_overwrite("t4", 0, pk.clone()));
        parses(&bug_ignored_retval("t5", 0, pk.clone()));
        parses(&bug_overwritten("t6", 0, pk.clone()));
        for v in 0..PARAM_SIGS.len() {
            parses(&bug_param(&format!("t7_{v}"), v, 0, pk.clone()));
        }
        parses(&fp_retval("t8", 0, false));
        parses(&fp_retval("t9", 0, true));
        parses(&intentional_config("t10", pk.clone()));
        parses(&intentional_cursor("t11", 0, pk.clone()));
        parses(&intentional_hint("t12", pk.clone()));
        parses(&intentional_peer_site(1, 2, "t13", pk.clone()));
        parses(&non_cross("t14", Role::Drifter, 0, true));
        parses(&non_cross("t14b", Role::Drifter, 0, false));
        parses(&checked_group(3, "t18", 10, 4));
        parses(&bug_ignored_checked("t19", 3, 0, pk.clone()));
        parses(&non_cross_real("t20", Role::Contributor, 0));
        parses(&prelim("t15", 0, 1, true, true, false, 0));
        parses(&prelim("t16", 0, 1, false, false, false, 0));
        parses(&prelim("t17", 0, 1, true, true, true, 3));
    }
}
