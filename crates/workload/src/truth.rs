//! Ground-truth labels for generated workloads and evaluation helpers.
//!
//! Every injected construct lives in a uniquely-named function with exactly
//! one expected unused-definition candidate, so findings are matched to
//! ground truth by function name.

use std::collections::HashMap;

use vc_obs::Json;

/// Bug category (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BugCategory {
    /// A missing check on a return value / parameter / variable.
    MissingCheck,
    /// A broken program-semantics bug (wrong value flows onward).
    Semantic,
}

/// Severity label (Fig. 7b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    High,
    Medium,
    Low,
}

/// Which intentional pattern an injected non-bug matches (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntentionalPattern {
    /// §5.1 configuration dependency.
    ConfigDependency,
    /// §5.2 cursor.
    Cursor,
    /// §5.3 unused hints.
    UnusedHint,
    /// §5.4 peer definitions.
    PeerDefinition,
}

/// What was planted in one generated function.
#[derive(Clone, Debug)]
pub enum PlantKind {
    /// A real, developer-confirmable bug.
    ConfirmedBug {
        /// Table 3 category.
        category: BugCategory,
        /// Fig. 7a component.
        component: String,
        /// Fig. 7b severity.
        severity: Severity,
        /// Unix time the bug-introducing commit lands (Fig. 7c age).
        introduced: i64,
    },
    /// A finding developers would not confirm (minor defect or debug code).
    FalsePositive {
        /// True for debugging/deprecated code (§8.3.1 source 2).
        debug_code: bool,
    },
    /// An intentional pattern the pruners must remove.
    Intentional {
        /// Which pruner should fire.
        pattern: IntentionalPattern,
        /// A few pruned items are nonetheless real bugs — the pruning
        /// false negatives of §8.3.4.
        actually_bug: bool,
    },
    /// A same-author unused definition (not cross-scope). A few are real
    /// bugs ValueCheck deliberately leaves to other tools (§8.4.5's closing
    /// note: same-developer unused-definition bugs are out of scope).
    NonCross {
        /// Whether developers would confirm it as a real bug.
        real_bug: bool,
    },
    /// §3.1: an unused definition present in the 2019 tree, removed later.
    PrelimRemoved {
        /// Removed by a bug-fix commit.
        bugfix: bool,
        /// Crossed author scopes in the 2019 tree.
        cross_scope: bool,
        /// Planted inside a peer-ignorable group: detection (with peer
        /// pruning) misses it — a §8.3.2 recall miss.
        peer_missed: bool,
    },
}

/// One planted construct.
#[derive(Clone, Debug)]
pub struct Planted {
    /// Unique function name containing the construct.
    pub func: String,
    /// File the function lives in.
    pub file: String,
    /// What was planted.
    pub kind: PlantKind,
}

/// Ground truth for one generated application.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Every planted construct, keyed by function name in `index`.
    pub planted: Vec<Planted>,
    /// "Now" for age computations.
    pub now: i64,
}

impl GroundTruth {
    /// Builds the function-name index.
    pub fn index(&self) -> HashMap<&str, &Planted> {
        self.planted.iter().map(|p| (p.func.as_str(), p)).collect()
    }

    /// Looks up the plant for a reported function, if any.
    pub fn lookup(&self, func: &str) -> Option<&Planted> {
        self.planted.iter().find(|p| p.func == func)
    }

    /// Whether a reported finding in `func` is a developer-confirmable bug.
    pub fn is_confirmed_bug(&self, func: &str) -> bool {
        matches!(
            self.lookup(func).map(|p| &p.kind),
            Some(PlantKind::ConfirmedBug { .. })
                | Some(PlantKind::Intentional {
                    actually_bug: true,
                    ..
                })
                | Some(PlantKind::NonCross { real_bug: true })
        )
    }

    /// Number of planted constructs of each coarse kind, for sanity checks.
    pub fn counts(&self) -> TruthCounts {
        let mut c = TruthCounts::default();
        for p in &self.planted {
            match &p.kind {
                PlantKind::ConfirmedBug { .. } => c.confirmed += 1,
                PlantKind::FalsePositive { .. } => c.false_positives += 1,
                PlantKind::Intentional { .. } => c.intentional += 1,
                PlantKind::NonCross { .. } => c.non_cross += 1,
                PlantKind::PrelimRemoved { .. } => c.prelim += 1,
            }
        }
        c
    }

    /// Renders the truth as pretty-printed JSON (the `truth.json` artifact
    /// written next to generated applications). Plant kinds use an
    /// externally-tagged layout: `{"ConfirmedBug": {...}}`.
    pub fn to_json(&self) -> String {
        let planted = self
            .planted
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("func".into(), Json::Str(p.func.clone())),
                    ("file".into(), Json::Str(p.file.clone())),
                    ("kind".into(), kind_json(&p.kind)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("planted".into(), Json::Arr(planted)),
            ("now".into(), Json::Int(self.now)),
        ])
        .to_string_pretty()
    }

    /// Evaluates a list of reported function names against the truth:
    /// `(reported, real bugs, false positives)`.
    pub fn evaluate<'a>(&self, reported: impl Iterator<Item = &'a str>) -> (usize, usize, usize) {
        let mut total = 0;
        let mut real = 0;
        for func in reported {
            total += 1;
            if self.is_confirmed_bug(func) {
                real += 1;
            }
        }
        (total, real, total - real)
    }
}

fn kind_json(kind: &PlantKind) -> Json {
    let (tag, fields) = match kind {
        PlantKind::ConfirmedBug {
            category,
            component,
            severity,
            introduced,
        } => (
            "ConfirmedBug",
            vec![
                ("category".into(), Json::Str(format!("{category:?}"))),
                ("component".into(), Json::Str(component.clone())),
                ("severity".into(), Json::Str(format!("{severity:?}"))),
                ("introduced".into(), Json::Int(*introduced)),
            ],
        ),
        PlantKind::FalsePositive { debug_code } => (
            "FalsePositive",
            vec![("debug_code".into(), Json::Bool(*debug_code))],
        ),
        PlantKind::Intentional {
            pattern,
            actually_bug,
        } => (
            "Intentional",
            vec![
                ("pattern".into(), Json::Str(format!("{pattern:?}"))),
                ("actually_bug".into(), Json::Bool(*actually_bug)),
            ],
        ),
        PlantKind::NonCross { real_bug } => {
            ("NonCross", vec![("real_bug".into(), Json::Bool(*real_bug))])
        }
        PlantKind::PrelimRemoved {
            bugfix,
            cross_scope,
            peer_missed,
        } => (
            "PrelimRemoved",
            vec![
                ("bugfix".into(), Json::Bool(*bugfix)),
                ("cross_scope".into(), Json::Bool(*cross_scope)),
                ("peer_missed".into(), Json::Bool(*peer_missed)),
            ],
        ),
    };
    Json::Obj(vec![(tag.into(), Json::Obj(fields))])
}

/// Coarse plant counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TruthCounts {
    /// Confirmed bugs.
    pub confirmed: usize,
    /// False positives (minor + debug).
    pub false_positives: usize,
    /// Intentional patterns.
    pub intentional: usize,
    /// Non-cross-scope unused definitions.
    pub non_cross: usize,
    /// Preliminary-history plants.
    pub prelim: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth {
            planted: vec![
                Planted {
                    func: "f1".into(),
                    file: "a.c".into(),
                    kind: PlantKind::ConfirmedBug {
                        category: BugCategory::MissingCheck,
                        component: "file-system".into(),
                        severity: Severity::High,
                        introduced: 0,
                    },
                },
                Planted {
                    func: "f2".into(),
                    file: "a.c".into(),
                    kind: PlantKind::FalsePositive { debug_code: false },
                },
                Planted {
                    func: "f3".into(),
                    file: "a.c".into(),
                    kind: PlantKind::Intentional {
                        pattern: IntentionalPattern::Cursor,
                        actually_bug: true,
                    },
                },
            ],
            now: 100,
        }
    }

    #[test]
    fn evaluation_counts_real_vs_fp() {
        let t = truth();
        let reported = ["f1", "f2", "unknown"];
        let (total, real, fp) = t.evaluate(reported.iter().copied());
        assert_eq!((total, real, fp), (3, 1, 2));
    }

    #[test]
    fn pruned_real_bugs_count_as_bugs() {
        let t = truth();
        assert!(t.is_confirmed_bug("f3"));
        assert!(!t.is_confirmed_bug("f2"));
    }

    #[test]
    fn truth_json_parses_and_tags_kinds() {
        let doc = vc_obs::json::parse(&truth().to_json()).unwrap();
        let planted = doc.get("planted").and_then(Json::as_arr).unwrap();
        assert_eq!(planted.len(), 3);
        assert!(planted[0]
            .get("kind")
            .and_then(|k| k.get("ConfirmedBug"))
            .is_some());
        assert_eq!(doc.get("now").and_then(Json::as_i64), Some(100));
    }

    #[test]
    fn counts_by_kind() {
        let c = truth().counts();
        assert_eq!(c.confirmed, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.intentional, 1);
    }
}
