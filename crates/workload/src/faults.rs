//! Deterministic fault injection for generated applications.
//!
//! The robustness layer (`valuecheck::harden`) promises that one malformed
//! file, degenerate CFG, or poisoned function never takes down a run. This
//! module supplies the adversarial half of that contract: given a
//! [`GeneratedApp`], [`inject_faults`] mutates it with a seeded set of
//! pathologies and returns, for each, the **evidence** a surviving pipeline
//! run must show exactly once:
//!
//! | fault            | mutation                                   | expected evidence        |
//! |------------------|--------------------------------------------|--------------------------|
//! | `TruncatedBody`  | an existing file cut mid-function          | one `parse` failure      |
//! | `GarbageTokens`  | a new file of lexer garbage                | one `parse` failure      |
//! | `CyclicCfg`      | committed file with do-while self-loop + planted dead retval | one report row |
//! | `AbsurdArity`    | committed file calling a 40-parameter helper with 2 args + planted dead retval | one report row |
//! | `MissingBlame`   | uncommitted file with a planted dead store (no history at all) | one report row |
//! | `PanicInjection` | committed healthy file whose function name matches the harness failpoint | one `detect` failure |
//!
//! The module itself is pure data mutation — arming the `PanicInjection`
//! failpoint is the test harness's job (`valuecheck` is a dev-dependency),
//! via `arm_failpoint(FailStage::Detect, PANIC_NEEDLE)`.

use vc_obs::SplitMix64;
use vc_vcs::FileWrite;

use crate::{
    generate::GeneratedApp,
    profile::{
        DAY,
        NOW, //
    },
};

/// Substring planted in the `PanicInjection` function's name; the harness
/// arms a detect-stage failpoint on it.
pub const PANIC_NEEDLE: &str = "vc_fault_panic";

/// The kinds of injected pathology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An existing source file truncated mid-function (unclosed body).
    TruncatedBody,
    /// A fresh file that does not even lex.
    GarbageTokens,
    /// A degenerate cyclic CFG (single-statement do-while self-loop)
    /// wrapped around a planted cross-scope dead store.
    CyclicCfg,
    /// A call passing 2 arguments to a 40-parameter function, plus a
    /// planted cross-scope dead store.
    AbsurdArity,
    /// A file present in the sources but absent from the repository: every
    /// blame lookup fails.
    MissingBlame,
    /// A healthy function whose name matches [`PANIC_NEEDLE`], for the
    /// harness to poison with an injected panic.
    PanicInjection,
}

impl FaultKind {
    /// Every kind, in injection order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TruncatedBody,
        FaultKind::GarbageTokens,
        FaultKind::CyclicCfg,
        FaultKind::AbsurdArity,
        FaultKind::MissingBlame,
        FaultKind::PanicInjection,
    ];
}

/// What a surviving pipeline run must show for one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evidence {
    /// Exactly one parse-stage failure record naming the fault's file.
    ParseFailure,
    /// Exactly one detect-stage failure record naming the fault's function.
    DetectFailure,
    /// Exactly one report row naming the fault's function.
    ReportRow,
}

/// One injected fault and the evidence it must leave behind.
#[derive(Clone, Debug)]
pub struct InjectedFault {
    /// The pathology injected.
    pub kind: FaultKind,
    /// The file it lives in.
    pub file: String,
    /// The function carrying the evidence (empty for file-level faults).
    pub function: String,
    /// What the run must report.
    pub evidence: Evidence,
}

/// Mutates `app` with one fault of every [`FaultKind`], deterministically in
/// `seed`. Returns the expected evidence list.
pub fn inject_faults(app: &mut GeneratedApp, seed: u64) -> Vec<InjectedFault> {
    let mut rng = SplitMix64::new(seed ^ 0x5EED_FAC7);
    let tag = format!("s{seed}");
    let mut out = Vec::new();

    // --- TruncatedBody: cut an existing file just before its last `}` ----
    let victim = rng.range_usize(0, app.sources.len());
    let (victim_path, victim_text) = app.sources[victim].clone();
    if let Some(cut) = victim_text.rfind('}') {
        app.sources[victim].1 = victim_text[..cut].to_string();
        out.push(InjectedFault {
            kind: FaultKind::TruncatedBody,
            file: victim_path,
            function: String::new(),
            evidence: Evidence::ParseFailure,
        });
    }

    // --- GarbageTokens: a file the lexer rejects outright ----------------
    let garbage_path = format!("src/zz_fault_garbage_{tag}.c");
    app.sources
        .push((garbage_path.clone(), "@@ %% ?? garbage ## $$\n".to_string()));
    out.push(InjectedFault {
        kind: FaultKind::GarbageTokens,
        file: garbage_path,
        function: String::new(),
        evidence: Evidence::ParseFailure,
    });

    // Committed fault files are authored by a dedicated author so blame
    // resolves; the planted dead store takes its value from a *library*
    // callee, which the retval rule counts as cross-scope regardless of the
    // local history — the finding survives the authorship filter under
    // every seed.
    let faultbot = app.repo.add_author(format!("faultbot_{tag}"));
    let commit_file = |app: &mut GeneratedApp, path: &str, text: &str| {
        app.repo.commit(
            faultbot,
            NOW - DAY,
            format!("inject {path}"),
            vec![FileWrite {
                path: path.to_string(),
                content: text.to_string(),
            }],
        );
        app.sources.push((path.to_string(), format!("{text}\n")));
    };

    // --- CyclicCfg: do-while self-loop around a planted dead store -------
    let cyclic_fn = format!("vc_fault_cyclic_{tag}");
    let cyclic_path = format!("src/zz_fault_cyclic_{tag}.c");
    let cyclic_src = format!(
        "int vc_fault_cyc_lib_{tag}(void);\n\
         int {cyclic_fn}(void) {{\n\
         int spin = 8;\n\
         do {{ spin = spin - 1; }} while (spin);\n\
         int got = vc_fault_cyc_lib_{tag}();\n\
         got = 2;\n\
         return got;\n\
         }}\n"
    );
    commit_file(app, &cyclic_path, &cyclic_src);
    out.push(InjectedFault {
        kind: FaultKind::CyclicCfg,
        file: cyclic_path,
        function: cyclic_fn,
        evidence: Evidence::ReportRow,
    });

    // --- AbsurdArity: 40 parameters, called with 2 arguments -------------
    let arity_fn = format!("vc_fault_arity_{tag}");
    let arity_path = format!("src/zz_fault_arity_{tag}.c");
    let params: Vec<String> = (0..40).map(|i| format!("int a{i}")).collect();
    let arity_src = format!(
        "int vc_fault_ar_lib_{tag}(void);\n\
         int vc_fault_ar_helper_{tag}({}) {{\n\
         return a0;\n\
         }}\n\
         void {arity_fn}(void) {{\n\
         int got = vc_fault_ar_lib_{tag}();\n\
         got = vc_fault_ar_helper_{tag}(1, 2);\n\
         use(got);\n\
         }}\n",
        params.join(", ")
    );
    commit_file(app, &arity_path, &arity_src);
    out.push(InjectedFault {
        kind: FaultKind::AbsurdArity,
        file: arity_path,
        function: arity_fn,
        evidence: Evidence::ReportRow,
    });

    // --- MissingBlame: in the sources, never committed --------------------
    let blame_fn = format!("vc_fault_noblame_{tag}");
    let blame_path = format!("src/zz_fault_noblame_{tag}.c");
    app.sources.push((
        blame_path.clone(),
        format!(
            "void {blame_fn}(void) {{\n\
             int x = 1;\n\
             x = 2;\n\
             use(x);\n\
             }}\n"
        ),
    ));
    out.push(InjectedFault {
        kind: FaultKind::MissingBlame,
        file: blame_path,
        function: blame_fn,
        evidence: Evidence::ReportRow,
    });

    // --- PanicInjection: healthy code, poisoned by the harness failpoint --
    let panic_fn = format!("{PANIC_NEEDLE}_{tag}");
    let panic_path = format!("src/zz_fault_panic_{tag}.c");
    let panic_src = format!(
        "int vc_fault_pn_lib_{tag}(void);\n\
         void {panic_fn}(void) {{\n\
         int got = vc_fault_pn_lib_{tag}();\n\
         got = 2;\n\
         use(got);\n\
         }}\n"
    );
    commit_file(app, &panic_path, &panic_src);
    out.push(InjectedFault {
        kind: FaultKind::PanicInjection,
        file: panic_path,
        function: panic_fn,
        evidence: Evidence::DetectFailure,
    });

    out
}

// ---------------------------------------------------------------------------
// Kill-at-random-point sweep (crash harness)
// ---------------------------------------------------------------------------

/// Environment variable the crash harness uses to hand a [`CrashPoint`] to
/// its re-executed child process.
pub const CRASH_ENV: &str = "VC_CRASH_CHILD";

/// One planned kill of the crash sweep: the child process scans the seeded
/// app with a journal and aborts (as a SIGKILL would — no unwinding, no
/// destructors) while appending the `abort_at_record`-th journal record,
/// optionally leaving a torn partial line behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Seed of the generated app the child scans.
    pub seed: u64,
    /// 0-based journal record during whose append the process dies.
    pub abort_at_record: usize,
    /// Bytes of that record written (and fsynced) before dying: `0` is a
    /// clean between-records crash, a positive value manufactures a torn
    /// record for the replayer to detect and skip.
    pub torn_bytes: usize,
}

impl CrashPoint {
    /// The sweep grid for a scan of `units` journal records and the given
    /// seeds: kill points at the first, second, middle, and last record,
    /// each both clean and torn.
    pub fn sweep(seeds: &[u64], units: usize) -> Vec<CrashPoint> {
        let mut offsets = vec![0, 1, units / 2, units.saturating_sub(1)];
        offsets.retain(|o| *o < units);
        offsets.dedup();
        let mut out = Vec::new();
        for &seed in seeds {
            for &abort_at_record in &offsets {
                for torn_bytes in [0usize, 7] {
                    out.push(CrashPoint {
                        seed,
                        abort_at_record,
                        torn_bytes,
                    });
                }
            }
        }
        out
    }

    /// Serialises for [`CRASH_ENV`].
    pub fn to_env(&self) -> String {
        format!("{}:{}:{}", self.seed, self.abort_at_record, self.torn_bytes)
    }

    /// Parses a [`CrashPoint::to_env`] string.
    pub fn from_env(s: &str) -> Option<CrashPoint> {
        let mut parts = s.split(':');
        let point = CrashPoint {
            seed: parts.next()?.parse().ok()?,
            abort_at_record: parts.next()?.parse().ok()?,
            torn_bytes: parts.next()?.parse().ok()?,
        };
        parts.next().is_none().then_some(point)
    }
}
