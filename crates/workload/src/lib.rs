//! # vc-workload — synthetic applications with ground truth
//!
//! The evaluation substrate: since the paper's subjects (Linux, MySQL,
//! OpenSSL, NFS-ganesha) cannot be shipped, each [`profile::AppProfile`]
//! encodes that application's *published statistics* and [`generate()`](generate::generate)
//! materializes a MiniC project plus a full VCS history whose analysis
//! reproduces them:
//!
//! - cross-scope candidate counts and the Table 4 prune breakdown, planted
//!   by construction (one candidate per uniquely-named function);
//! - the Table 2 confirmed/false-positive split, with Fig. 7 component /
//!   severity / age metadata on every confirmed bug;
//! - a same-author candidate pool for the w/o-Authorship ablation (§8.5.1);
//! - the §3.1 preliminary history: unused definitions present in the 2019
//!   tree and removed by bug-fix or cleanup commits before 2021.
//!
//! [`delta`] generates two-revision workloads with a known new / fixed /
//! persisting split — the ground truth behind `vcheck delta` and the
//! `tools/ci.sh delta` step.
//!
//! [`life`] generates N-commit workloads where every planted bug has a
//! scripted fate (live / fixed / suppressed / churned) — the ground truth
//! behind `vcheck history` and the `tools/ci.sh history` step.
//!
//! [`corrupt`] plants a committed file of known-good planted bugs and
//! corrupts exactly one function per [`corrupt::CorruptKind`] (truncation,
//! deleted brace, lexer garbage, unterminated string, mangled signature),
//! stating the fate of every planted bug — the ground truth behind
//! `tools/ci.sh recovery`.
//!
//! [`faults`] mutates a generated application with seeded pathologies
//! (truncated files, degenerate CFGs, absurd arity, missing blame, injected
//! panics) and states the evidence a robust pipeline run must produce for
//! each — the adversarial workload behind `tools/ci.sh faults`.
//!
//! [`chaos`] scripts seeded request streams against the `vcheck serve`
//! daemon — on-disk corruption, malformed lines, oversized bursts against
//! a wedged worker, injected panics, mid-stream kill+restart — and states
//! the recovery contract (zero daemon exits, warm replies byte-identical
//! to cold scans, balanced counters) behind `tools/ci.sh serve`.

pub mod chaos;
pub mod codegen;
pub mod corrupt;
pub mod delta;
pub mod faults;
pub mod generate;
pub mod life;
pub mod profile;
pub mod truth;

pub use chaos::{
    generate_chaos,
    ChaosPlan,
    ChaosSegment,
    ChaosStep, //
};
pub use corrupt::{
    corrupt,
    plant_fault_file,
    BugFate,
    CorruptKind,
    Corruption,
    FaultFile, //
};
pub use delta::{
    generate_delta,
    DeltaProfile,
    DeltaWorkload, //
};
pub use faults::{
    inject_faults,
    CrashPoint,
    Evidence,
    FaultKind,
    InjectedFault, //
};
pub use generate::{
    generate,
    GeneratedApp, //
};
pub use life::{
    generate_life,
    LifeProfile,
    LifeWorkload, //
};
pub use profile::AppProfile;
pub use truth::{
    BugCategory,
    GroundTruth,
    IntentionalPattern,
    PlantKind,
    Planted,
    Severity, //
};
