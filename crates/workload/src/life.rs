//! Multi-commit workloads with lifecycle ground truth.
//!
//! The lifecycle observatory (`vcheck history`) follows findings across a
//! whole history, so its evaluation workload is an N-commit repository
//! where every planted bug has a scripted fate, known at generation time:
//!
//! - **live** — planted at the first commit, drifts down the file as pad
//!   declarations accumulate above it, still reported at head;
//! - **fixed** — planted at the first commit, repaired (the dead store
//!   gains a read) at the action commit;
//! - **suppressed** — planted at the first commit, triaged with a
//!   standalone `// vcheck:allow(retval)` annotation at the action
//!   commit, which rides every later revision;
//! - **churned** — planted at the top of its file, relocated wholesale to
//!   the bottom at the action commit (past the stable anchor functions),
//!   then live to head: same fingerprint, one `churned` event.
//!
//! Every bug is a library-retval pattern with a uniquely named callee
//! (cross-scope in a single-author history, immune to peer-definition
//! pruning), and every file carries two clean *anchor* functions so the
//! churn move always has a longer stable block for the LCS diff to hold
//! on to.

use vc_obs::SplitMix64;
use vc_vcs::{
    CommitId,
    FileWrite,
    Repository, //
};

/// Shape of a generated lifecycle workload.
#[derive(Clone, Debug)]
pub struct LifeProfile {
    /// PRNG seed; same seed, same workload.
    pub seed: u64,
    /// Total commits in the history (min 3: plant, action, at least one
    /// drift commit after).
    pub commits: usize,
    /// Bugs that survive to head unsuppressed (and un-churned).
    pub live: usize,
    /// Bugs fixed at the action commit.
    pub fixed: usize,
    /// Bugs annotated at the action commit (suppressed at head).
    pub suppressed: usize,
    /// Bugs relocated at the action commit (live at head, churn event).
    pub churned: usize,
    /// Source files the functions are spread across.
    pub files: usize,
    /// Pad declarations prepended to every file at each commit after the
    /// first — the cumulative drift the fingerprints must survive.
    pub drift_lines: usize,
}

impl Default for LifeProfile {
    fn default() -> Self {
        LifeProfile {
            seed: 1,
            commits: 5,
            live: 3,
            fixed: 2,
            suppressed: 2,
            churned: 1,
            files: 2,
            drift_lines: 4,
        }
    }
}

/// A generated N-commit workload plus its lifecycle ground truth
/// (function names per expected final state).
#[derive(Clone, Debug)]
pub struct LifeWorkload {
    /// The generated history.
    pub repo: Repository,
    /// Every commit, in order (`commits[0]` plants, the action commit
    /// fixes/annotates/relocates, the rest drift).
    pub commits: Vec<CommitId>,
    /// Index into `commits` of the action commit.
    pub action: usize,
    /// Functions live and unsuppressed at head (includes the churned
    /// ones — churn is a location event, not a terminal state).
    pub expected_live: Vec<String>,
    /// Functions fixed at the action commit.
    pub expected_fixed: Vec<String>,
    /// Functions suppressed at head.
    pub expected_suppressed: Vec<String>,
    /// Subset of `expected_live` that must carry a `churned` event.
    pub expected_churned: Vec<String>,
}

/// One planted library-retval bug (the Fig. 8 acl pattern).
fn buggy_fn(name: &str) -> String {
    format!(
        "int get_{name}(void);\nint calc_{name}(void);\nint {name}(void) {{\nint ret = \
         get_{name}();\nret = calc_{name}();\nif (ret) {{ sink_{name}(ret); }}\nreturn 0;\n}}\n"
    )
}

/// The same bug with a standalone suppression annotation covering the
/// dead definition line. The annotation is a comment: parsing, the
/// fingerprint, and the finding itself are unchanged — only reporting is.
fn annotated_fn(name: &str) -> String {
    buggy_fn(name).replace(
        &format!("int ret = get_{name}();"),
        &format!("// vcheck:allow(retval)\nint ret = get_{name}();"),
    )
}

/// The fixed form: the first definition is read before being replaced.
fn fixed_fn(name: &str) -> String {
    format!(
        "int get_{name}(void);\nint calc_{name}(void);\nint {name}(void) {{\nint ret = \
         get_{name}();\nlog_{name}(ret);\nret = calc_{name}();\nif (ret) {{ sink_{name}(ret); \
         }}\nreturn 0;\n}}\n"
    )
}

/// A clean anchor function: no findings, just stable lines for the diff.
fn anchor_fn(name: &str) -> String {
    format!("int {name}(int v) {{\nreturn v + 1;\n}}\n")
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Live,
    Fixed,
    Suppressed,
    Churned,
}

/// Generates the N-commit workload for `profile`.
pub fn generate_life(profile: &LifeProfile) -> LifeWorkload {
    let mut rng = SplitMix64::new(profile.seed ^ 0x11FE);
    let files = profile.files.max(1);
    let commits = profile.commits.max(3);
    // Action near the middle: drift both before and after it.
    let action = commits / 2;

    let mut plan: Vec<(String, usize, Kind)> = Vec::new();
    let push = |plan: &mut Vec<(String, usize, Kind)>,
                rng: &mut SplitMix64,
                count: usize,
                prefix: &str,
                kind: Kind| {
        for i in 0..count {
            let tag = rng.next_u64() & 0xFFFF;
            plan.push((
                format!("{prefix}_{i}_{tag:04x}"),
                rng.range_usize(0, files),
                kind,
            ));
        }
    };
    push(&mut plan, &mut rng, profile.live, "stay", Kind::Live);
    push(&mut plan, &mut rng, profile.fixed, "gone", Kind::Fixed);
    push(
        &mut plan,
        &mut rng,
        profile.suppressed,
        "hush",
        Kind::Suppressed,
    );
    push(&mut plan, &mut rng, profile.churned, "roam", Kind::Churned);

    // Renders one file at one commit index.
    let render = |fi: usize, at: usize| -> String {
        let mut out = String::new();
        // Cumulative drift: one pad batch per commit after the first.
        for batch in 1..=at {
            for p in 0..profile.drift_lines {
                out.push_str(&format!("int pad_f{fi}_c{batch}_{p}(void);\n"));
            }
        }
        let acted = at >= action;
        let body = |name: &str, kind: Kind| -> String {
            match kind {
                Kind::Live | Kind::Churned => buggy_fn(name),
                Kind::Fixed => {
                    if acted {
                        fixed_fn(name)
                    } else {
                        buggy_fn(name)
                    }
                }
                Kind::Suppressed => {
                    if acted {
                        annotated_fn(name)
                    } else {
                        buggy_fn(name)
                    }
                }
            }
        };
        // Pre-action layout: churned bugs at the top, everything else,
        // then the anchors. Post-action: the churned bugs jump to the
        // bottom, past the anchors — delete-up-top, insert-down-low.
        if !acted {
            for (name, f, kind) in &plan {
                if *f == fi && *kind == Kind::Churned {
                    out.push_str(&body(name, *kind));
                }
            }
        }
        for (name, f, kind) in &plan {
            if *f == fi && *kind != Kind::Churned {
                out.push_str(&body(name, *kind));
            }
        }
        for a in 0..2 {
            out.push_str(&anchor_fn(&format!("anchor_f{fi}_a{a}")));
        }
        if acted {
            for (name, f, kind) in &plan {
                if *f == fi && *kind == Kind::Churned {
                    out.push_str(&body(name, *kind));
                }
            }
        }
        out
    };

    let mut repo = Repository::new();
    let dev = repo.add_author("dev");
    let mut ids = Vec::with_capacity(commits);
    for at in 0..commits {
        let writes: Vec<FileWrite> = (0..files)
            .map(|fi| FileWrite {
                path: format!("mod_{fi}.c"),
                content: render(fi, at),
            })
            .collect();
        let msg = if at == 0 {
            "plant".to_string()
        } else if at == action {
            "fix, triage, and reorganise".to_string()
        } else {
            format!("drift {at}")
        };
        ids.push(repo.commit(dev, 1_000 * (at as i64 + 1), &msg, writes));
    }

    let names = |kinds: &[Kind]| -> Vec<String> {
        let mut v: Vec<String> = plan
            .iter()
            .filter(|(_, _, k)| kinds.contains(k))
            .map(|(n, _, _)| n.clone())
            .collect();
        v.sort();
        v
    };
    LifeWorkload {
        repo,
        commits: ids,
        action,
        expected_live: names(&[Kind::Live, Kind::Churned]),
        expected_fixed: names(&[Kind::Fixed]),
        expected_suppressed: names(&[Kind::Suppressed]),
        expected_churned: names(&[Kind::Churned]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_life(&LifeProfile::default());
        let b = generate_life(&LifeProfile::default());
        assert_eq!(a.expected_live, b.expected_live);
        assert_eq!(a.expected_fixed, b.expected_fixed);
        assert_eq!(
            a.repo.snapshot_at(*a.commits.last().unwrap()),
            b.repo.snapshot_at(*b.commits.last().unwrap()),
            "same seed, same head tree"
        );
    }

    #[test]
    fn history_applies_the_scripted_actions() {
        let w = generate_life(&LifeProfile::default());
        let first = w.repo.snapshot_at(w.commits[0]);
        let acted = w.repo.snapshot_at(w.commits[w.action]);
        let head = w.repo.snapshot_at(*w.commits.last().unwrap());
        for name in &w.expected_fixed {
            let log_call = format!("log_{name}(ret);");
            assert!(
                !first.values().any(|c| c.contains(&log_call)),
                "{name} must start buggy"
            );
            assert!(
                acted.values().any(|c| c.contains(&log_call)),
                "{name} must be fixed at the action commit"
            );
        }
        for _name in &w.expected_suppressed {
            assert!(
                acted
                    .values()
                    .any(|c| c.contains("// vcheck:allow(retval)")),
                "annotations must appear at the action commit"
            );
        }
        for name in &w.expected_churned {
            let decl = format!("int {name}(void)");
            let (_, first_file) = first
                .iter()
                .find(|(_, c)| c.contains(&decl))
                .expect("churned bug planted");
            let head_file = head.values().find(|c| c.contains(&decl)).unwrap();
            let before = first_file.find(&decl).unwrap();
            let after = head_file.find(&decl).unwrap();
            assert!(
                after > before,
                "{name} must move towards the end of its file"
            );
            assert!(
                head_file[after..].find("int anchor_").is_none(),
                "{name} must sit below the anchors at head"
            );
        }
        // Drift is cumulative: head files start with the pad block.
        for content in head.values() {
            assert!(content.starts_with("int pad_"));
        }
    }
}
