//! Two-revision workloads with differential ground truth.
//!
//! The delta scanner's contract is about finding *lifecycles*, so its
//! evaluation workload is a pair of revisions with a known split: some bugs
//! persist (only drifting down the file as lines are inserted above them),
//! some are fixed, and some are introduced. Every planted bug is a
//! library-retval pattern with a uniquely named callee, which keeps it
//! cross-scope even in a single-author history (a library callee has no
//! project author) and keeps it clear of peer-definition pruning (one call
//! site per callee, far below the ≥10 threshold).

use vc_obs::SplitMix64;
use vc_vcs::{
    CommitId,
    FileWrite,
    Repository, //
};

/// Shape of a generated delta workload.
#[derive(Clone, Debug)]
pub struct DeltaProfile {
    /// PRNG seed; same seed, same workload.
    pub seed: u64,
    /// Bugs present in both revisions.
    pub persisting: usize,
    /// Bugs present only in the old revision (fixed by the new one).
    pub fixed: usize,
    /// Bugs present only in the new revision.
    pub new: usize,
    /// Source files the functions are spread across.
    pub files: usize,
    /// Padding declarations inserted at the top of every file in the new
    /// revision — the pure line drift the fingerprints must survive.
    pub drift_lines: usize,
}

impl Default for DeltaProfile {
    fn default() -> Self {
        DeltaProfile {
            seed: 1,
            persisting: 4,
            fixed: 2,
            new: 2,
            files: 2,
            drift_lines: 6,
        }
    }
}

/// A generated two-revision workload plus its ground truth (function names
/// per expected classification).
#[derive(Clone, Debug)]
pub struct DeltaWorkload {
    /// The two-commit history.
    pub repo: Repository,
    /// The old revision.
    pub from: CommitId,
    /// The new revision.
    pub to: CommitId,
    /// Functions whose bug exists in both revisions.
    pub expected_persisting: Vec<String>,
    /// Functions whose bug exists only in the old revision.
    pub expected_fixed: Vec<String>,
    /// Functions whose bug exists only in the new revision.
    pub expected_new: Vec<String>,
}

/// One planted library-retval bug: `ret` is assigned from a library call,
/// then overwritten before any read — the Fig. 8 acl pattern.
fn buggy_fn(name: &str) -> String {
    format!(
        "int get_{name}(void);\nint calc_{name}(void);\nint {name}(void) {{\nint ret = \
         get_{name}();\nret = calc_{name}();\nif (ret) {{ sink_{name}(ret); }}\nreturn 0;\n}}\n"
    )
}

/// The fixed form: the first definition is read before being replaced.
fn fixed_fn(name: &str) -> String {
    format!(
        "int get_{name}(void);\nint calc_{name}(void);\nint {name}(void) {{\nint ret = \
         get_{name}();\nlog_{name}(ret);\nret = calc_{name}();\nif (ret) {{ sink_{name}(ret); \
         }}\nreturn 0;\n}}\n"
    )
}

/// Generates the two-revision workload for `profile`.
pub fn generate_delta(profile: &DeltaProfile) -> DeltaWorkload {
    let mut rng = SplitMix64::new(profile.seed ^ 0xDE17A);
    let files = profile.files.max(1);

    // Name and place every function: (name, file index, kind).
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Persisting,
        Fixed,
        New,
    }
    let mut plan: Vec<(String, usize, Kind)> = Vec::new();
    for i in 0..profile.persisting {
        let tag = rng.next_u64() & 0xFFFF;
        plan.push((
            format!("keep_{i}_{tag:04x}"),
            rng.range_usize(0, files),
            Kind::Persisting,
        ));
    }
    for i in 0..profile.fixed {
        let tag = rng.next_u64() & 0xFFFF;
        plan.push((
            format!("gone_{i}_{tag:04x}"),
            rng.range_usize(0, files),
            Kind::Fixed,
        ));
    }
    for i in 0..profile.new {
        let tag = rng.next_u64() & 0xFFFF;
        plan.push((
            format!("fresh_{i}_{tag:04x}"),
            rng.range_usize(0, files),
            Kind::New,
        ));
    }
    rng.shuffle(&mut plan);

    // Old revision: persisting + to-be-fixed bugs, in plan order.
    let mut old_files = vec![String::new(); files];
    for (name, file, kind) in &plan {
        match kind {
            Kind::Persisting | Kind::Fixed => old_files[*file].push_str(&buggy_fn(name)),
            Kind::New => {}
        }
    }
    // New revision: drift padding on top, fixes applied, new bugs appended.
    let mut new_files = vec![String::new(); files];
    for (fi, content) in new_files.iter_mut().enumerate() {
        for p in 0..profile.drift_lines {
            content.push_str(&format!("int pad_f{fi}_{p}(void);\n"));
        }
    }
    for (name, file, kind) in &plan {
        match kind {
            Kind::Persisting => new_files[*file].push_str(&buggy_fn(name)),
            Kind::Fixed => new_files[*file].push_str(&fixed_fn(name)),
            Kind::New => {}
        }
    }
    for (name, file, kind) in &plan {
        if *kind == Kind::New {
            new_files[*file].push_str(&buggy_fn(name));
        }
    }

    let mut repo = Repository::new();
    let dev = repo.add_author("dev");
    let writes = |contents: &[String]| -> Vec<FileWrite> {
        contents
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, c)| FileWrite {
                path: format!("mod_{i}.c"),
                content: c.clone(),
            })
            .collect()
    };
    let from = repo.commit(dev, 1_000, "initial tree", writes(&old_files));
    let to = repo.commit(dev, 2_000, "pad, fix, and extend", writes(&new_files));

    let names = |kind: Kind| -> Vec<String> {
        let mut v: Vec<String> = plan
            .iter()
            .filter(|(_, _, k)| *k == kind)
            .map(|(n, _, _)| n.clone())
            .collect();
        v.sort();
        v
    };
    DeltaWorkload {
        repo,
        from,
        to,
        expected_persisting: names(Kind::Persisting),
        expected_fixed: names(Kind::Fixed),
        expected_new: names(Kind::New),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_delta(&DeltaProfile::default());
        let b = generate_delta(&DeltaProfile::default());
        assert_eq!(a.expected_persisting, b.expected_persisting);
        assert_eq!(a.expected_fixed, b.expected_fixed);
        assert_eq!(a.expected_new, b.expected_new);
        assert_eq!(
            a.repo.snapshot_at(a.to),
            b.repo.snapshot_at(b.to),
            "same seed, same tree"
        );
    }

    #[test]
    fn revisions_differ_only_as_planned() {
        let w = generate_delta(&DeltaProfile::default());
        let old = w.repo.snapshot_at(w.from);
        let new = w.repo.snapshot_at(w.to);
        for name in &w.expected_persisting {
            let in_old = old
                .values()
                .any(|c| c.contains(&format!("int {name}(void)")));
            let in_new = new
                .values()
                .any(|c| c.contains(&format!("int {name}(void)")));
            assert!(in_old && in_new, "{name} must exist in both revisions");
        }
        for name in &w.expected_new {
            assert!(
                !old.values().any(|c| c.contains(name.as_str())),
                "{name} must not exist in the old revision"
            );
        }
        // Drift is real: every carried-over file grew at the top.
        for (path, content) in &old {
            let new_content = &new[path];
            assert!(new_content.starts_with("int pad_"), "{path} must be padded");
            assert!(new_content.len() > content.len());
        }
    }
}
