//! Deterministic source corruption for the error-recovering front end.
//!
//! Where [`crate::faults`] attacks the *pipeline* (degenerate CFGs, injected
//! panics), this module attacks the *parser*: it plants a committed file of
//! known-good functions — each carrying one library-retval dead store the
//! scan must report — and then corrupts exactly one of them per
//! [`CorruptKind`]. The returned [`Corruption`] states the fate of every
//! planted bug, so a harness can hold recovery to the contract:
//!
//! | kind                  | mutation                                | victim fate          |
//! |-----------------------|-----------------------------------------|----------------------|
//! | `TruncateMidFunction` | file cut inside the last function       | finding lost         |
//! | `DeleteBrace`         | last function's closing `}` removed     | finding lost         |
//! | `GarbageBytes`        | a line of lexer garbage inside one body | kept, low confidence |
//! | `UntermString`        | an unterminated string inside one body  | kept, low confidence |
//! | `MangleSignature`     | one function's return type mangled      | finding lost         |
//!
//! Every *other* planted bug — in the corrupted file and in the rest of the
//! application — must be reported with the **same fingerprint** as a scan of
//! the pristine sources, and the corrupted function must cost exactly one
//! function-granular parse failure.

use vc_vcs::FileWrite;

use crate::{
    generate::GeneratedApp,
    profile::{
        DAY,
        NOW, //
    },
};

/// Functions in the planted fault file.
pub const FAULT_FILE_FUNCS: usize = 5;

/// The kinds of front-end corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptKind {
    /// The file ends mid-statement inside the last function.
    TruncateMidFunction,
    /// The last function's closing brace is deleted (body runs to EOF).
    DeleteBrace,
    /// A line of unlexable garbage appears inside one function body.
    GarbageBytes,
    /// An unterminated string literal appears inside one function body.
    UntermString,
    /// One function's return type becomes an unknown identifier.
    MangleSignature,
}

impl CorruptKind {
    /// Every kind, in sweep order.
    pub const ALL: [CorruptKind; 5] = [
        CorruptKind::TruncateMidFunction,
        CorruptKind::DeleteBrace,
        CorruptKind::GarbageBytes,
        CorruptKind::UntermString,
        CorruptKind::MangleSignature,
    ];

    /// Whether the corruption lands *inside* a body that recovery can
    /// salvage (statement-level sync), as opposed to costing the item.
    pub fn salvageable(self) -> bool {
        matches!(self, CorruptKind::GarbageBytes | CorruptKind::UntermString)
    }
}

/// What must become of one planted bug after the corrupted scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BugFate {
    /// Reported with the same fingerprint as the pristine scan.
    Kept,
    /// Reported with the same fingerprint, demoted to low confidence
    /// (its function lowered out of a poisoned parse).
    KeptLowConfidence,
    /// Dropped together with its corrupted function.
    Lost,
}

/// The committed file of known-good functions corruption is applied to.
#[derive(Clone, Debug)]
pub struct FaultFile {
    /// Path of the planted file.
    pub path: String,
    /// Function names, in file order (one planted bug each).
    pub functions: Vec<String>,
    /// Seeded tag baked into every identifier.
    tag: String,
    /// Victim index for body-level (salvageable) corruption kinds.
    mid_victim: usize,
}

/// One applied corruption and the evidence the scan must produce.
#[derive(Clone, Debug)]
pub struct Corruption {
    /// The corruption applied.
    pub kind: CorruptKind,
    /// The corrupted file.
    pub file: String,
    /// The function the single expected parse failure must be attributed
    /// to (recovery is function-granular for every kind here).
    pub victim: String,
    /// Fate of each planted bug in the fault file, in file order.
    pub fates: Vec<(String, BugFate)>,
}

/// One function slot of the fault file: a library prototype plus a body
/// whose first definition (`got = lib()`) is dead — overwritten before any
/// use — which the retval rule reports as cross-scope under every history.
fn slot_text(tag: &str, i: usize) -> String {
    format!(
        "int vc_corrupt_lib_{tag}_{i}(void);\n\
         int vc_corrupt_{tag}_f{i}(void) {{\n\
         int got = vc_corrupt_lib_{tag}_{i}();\n\
         got = 2;\n\
         return got;\n\
         }}\n"
    )
}

/// Plants the committed fault file into `app`, pristine. Deterministic in
/// `seed`. Corruptions are applied afterwards with [`corrupt`], typically to
/// clones of the returned app so one pristine scan serves every kind.
pub fn plant_fault_file(app: &mut GeneratedApp, seed: u64) -> FaultFile {
    let tag = format!("s{seed}");
    let text: String = (0..FAULT_FILE_FUNCS).map(|i| slot_text(&tag, i)).collect();
    let path = format!("src/zz_corrupt_{tag}.c");

    // Committed in one write by a dedicated author, so blame resolves for
    // every line and the uncorrupted findings rank with full confidence.
    let author = app.repo.add_author(format!("corruptbot_{tag}"));
    app.repo.commit(
        author,
        NOW - DAY,
        format!("plant {path}"),
        vec![FileWrite {
            path: path.clone(),
            content: text.clone(),
        }],
    );
    app.sources.push((path.clone(), text));

    FaultFile {
        path,
        functions: (0..FAULT_FILE_FUNCS)
            .map(|i| format!("vc_corrupt_{tag}_f{i}"))
            .collect(),
        tag,
        // Never the first or last slot: every body-level corruption keeps
        // an intact function on both sides of the damage.
        mid_victim: 1 + (seed as usize % (FAULT_FILE_FUNCS - 2)),
    }
}

/// Applies one corruption kind to the planted file inside `app` and returns
/// the expected evidence. Panics if `app` does not contain `ff.path`.
pub fn corrupt(app: &mut GeneratedApp, ff: &FaultFile, kind: CorruptKind) -> Corruption {
    let victim_idx = match kind {
        CorruptKind::TruncateMidFunction | CorruptKind::DeleteBrace => FAULT_FILE_FUNCS - 1,
        _ => ff.mid_victim,
    };
    let mut slots: Vec<String> = (0..FAULT_FILE_FUNCS)
        .map(|i| slot_text(&ff.tag, i))
        .collect();
    let v = &mut slots[victim_idx];
    match kind {
        CorruptKind::TruncateMidFunction => {
            // Cut inside the body, mid-statement: `...lib();\ngot<EOF>`.
            let cut = v.find("got = 2;").expect("slot has the dead store") + "got".len();
            v.truncate(cut);
        }
        CorruptKind::DeleteBrace => {
            let brace = v.rfind('}').expect("slot has a closing brace");
            v.remove(brace);
        }
        CorruptKind::GarbageBytes => {
            // After the last real statement, before the closing brace:
            // statement-level sync stops at the `}` and poisons only the
            // garbage, so every real statement (and the bug) survives.
            *v = v.replace("return got;\n}", "return got;\n@@ $$ ??\n}");
        }
        CorruptKind::UntermString => {
            *v = v.replace("return got;\n}", "return got;\nlog(\"oops;\n}");
        }
        CorruptKind::MangleSignature => {
            let sig = format!("int vc_corrupt_{}_f{victim_idx}(void)", ff.tag);
            let mangled = format!("vc_mangled_t vc_corrupt_{}_f{victim_idx}(void)", ff.tag);
            *v = v.replace(&sig, &mangled);
        }
    }

    let text: String = slots.concat();
    let entry = app
        .sources
        .iter_mut()
        .find(|(p, _)| *p == ff.path)
        .expect("fault file is in the app sources");
    entry.1 = text;

    Corruption {
        kind,
        file: ff.path.clone(),
        victim: ff.functions[victim_idx].clone(),
        fates: ff
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let fate = if i != victim_idx {
                    BugFate::Kept
                } else if kind.salvageable() {
                    BugFate::KeptLowConfidence
                } else {
                    BugFate::Lost
                };
                (f.clone(), fate)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, AppProfile};

    fn tiny_app(seed: u64) -> GeneratedApp {
        let mut profile = AppProfile::nfs_ganesha().scaled(0.01);
        profile.seed = seed;
        profile.name = format!("corrupttest{seed}");
        generate(&profile)
    }

    #[test]
    fn planting_is_deterministic_and_committed() {
        let make = || {
            let mut app = tiny_app(3);
            let ff = plant_fault_file(&mut app, 7);
            (app.sources, ff.functions.clone(), ff.path.clone())
        };
        let (s1, f1, p1) = make();
        let (s2, f2, p2) = make();
        assert_eq!(s1, s2);
        assert_eq!(f1, f2);
        assert_eq!(p1, p2);
        assert_eq!(f1.len(), FAULT_FILE_FUNCS);
    }

    #[test]
    fn every_kind_mutates_only_the_fault_file() {
        let mut base = tiny_app(4);
        let ff = plant_fault_file(&mut base, 11);
        for kind in CorruptKind::ALL {
            let mut app = base.clone();
            let cor = corrupt(&mut app, &ff, kind);
            assert_eq!(cor.file, ff.path);
            assert!(ff.functions.contains(&cor.victim));
            let changed: Vec<&String> = app
                .sources
                .iter()
                .zip(&base.sources)
                .filter(|(a, b)| a != b)
                .map(|(a, _)| &a.0)
                .collect();
            assert_eq!(changed, vec![&ff.path], "{kind:?} touches one file");
        }
    }

    #[test]
    fn fates_isolate_the_victim() {
        let mut base = tiny_app(5);
        let ff = plant_fault_file(&mut base, 13);
        for kind in CorruptKind::ALL {
            let mut app = base.clone();
            let cor = corrupt(&mut app, &ff, kind);
            let lost: Vec<&String> = cor
                .fates
                .iter()
                .filter(|(_, fate)| *fate != BugFate::Kept)
                .map(|(f, _)| f)
                .collect();
            assert_eq!(lost, vec![&cor.victim], "{kind:?} costs only the victim");
            let expected = if kind.salvageable() {
                BugFate::KeptLowConfidence
            } else {
                BugFate::Lost
            };
            let (_, fate) = cor.fates.iter().find(|(f, _)| *f == cor.victim).unwrap();
            assert_eq!(*fate, expected);
        }
    }
}
