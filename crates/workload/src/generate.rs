//! Workload generation: materializes an [`AppProfile`] as MiniC sources plus
//! a matching version-control history with ground-truth labels.
//!
//! Timeline of a generated application:
//!
//! ```text
//! 2015-06  file owners import the initial tree (with §3.1 prelim shapes)
//! 2015–18  owner churn commits; prelim bug introductions (2018-09)
//! 2019-01  <snapshot_2019>  — the §3.1 "first commit of 2019"
//! 2019–20  prelim removals (bug-fix / cleanup commits)
//! 2021-01  <snapshot_2021>
//! 2015–22  bug/FP/pattern-introducing commits at ages drawn from Fig. 7c
//! 2022-07  NOW — the analysed head
//! ```

use std::collections::BTreeMap;

use vc_obs::SplitMix64;
use vc_vcs::{
    AuthorId,
    CommitId,
    FileWrite,
    Repository, //
};

use crate::{
    codegen::{
        self,
        FuncEdit,
        Item,
        Role,
        When, //
    },
    profile::{
        AppProfile,
        AGE_BUCKETS,
        COMPONENTS,
        DAY,
        NOW,
        SEVERITIES, //
    },
    truth::{
        BugCategory,
        GroundTruth,
        IntentionalPattern,
        PlantKind,
        Planted,
        Severity, //
    },
};

/// 2015-06-01, when the synthetic projects are first imported.
const T_IMPORT: i64 = 1_433_116_800;
/// 2018-09-01, when prelim bugs are introduced.
const T_PRELIM_INTRO: i64 = 1_535_760_000;
/// 2019-01-01, the first §3.1 snapshot.
pub const T_2019: i64 = 1_546_300_800;
/// 2019-03-01, earliest prelim removal.
const T_REMOVAL_LO: i64 = 1_551_398_400;
/// 2020-11-01, latest prelim removal.
const T_REMOVAL_HI: i64 = 1_604_188_800;
/// 2021-01-01, the second §3.1 snapshot.
pub const T_2021: i64 = 1_609_459_200;

/// A fully generated application.
#[derive(Clone, Debug)]
pub struct GeneratedApp {
    /// The profile it was generated from.
    pub profile: AppProfile,
    /// Final source files (exactly matching the repository head).
    pub sources: Vec<(String, String)>,
    /// The version-control history.
    pub repo: Repository,
    /// Ground-truth labels.
    pub truth: GroundTruth,
    /// Active preprocessor configuration (all `FEATURE_*` guards disabled).
    pub defines: Vec<String>,
    /// The commit corresponding to the 2019-01-01 tree.
    pub snapshot_2019: Option<CommitId>,
    /// The commit corresponding to the 2021-01-01 tree.
    pub snapshot_2021: Option<CommitId>,
    /// When the project last ran Coverity and addressed its warnings
    /// (§8.4.4); `None` for projects that never did (Linux).
    pub coverity_last_run: Option<i64>,
}

impl GeneratedApp {
    /// Total source lines (for Table 7's LOC column).
    pub fn loc(&self) -> usize {
        self.sources.iter().map(|(_, s)| s.lines().count()).sum()
    }

    /// Sources as `(&str, &str)` pairs for `Program::build`.
    pub fn source_refs(&self) -> Vec<(&str, &str)> {
        self.sources
            .iter()
            .map(|(p, c)| (p.as_str(), c.as_str()))
            .collect()
    }
}

struct Slot {
    name: String,
    text: Option<String>,
    edits: Vec<FuncEdit>,
}

struct FilePlan {
    path: String,
    protos: Vec<String>,
    slots: Vec<Slot>,
    owner: AuthorId,
    t_init: i64,
    churns: Vec<(i64, AuthorId)>,
}

/// Generates an application from a profile. Deterministic in the profile's
/// seed.
pub fn generate(profile: &AppProfile) -> GeneratedApp {
    let mut rng = SplitMix64::new(profile.seed);
    let tag: String = profile
        .name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();

    // ----- Author pools --------------------------------------------------
    let mut repo = Repository::new();
    let owners: Vec<AuthorId> = (0..25)
        .map(|i| repo.add_author(format!("maintainer_{tag}_{i}")))
        .collect();
    let newcomers: Vec<AuthorId> = (0..20)
        .map(|i| repo.add_author(format!("newcomer_{tag}_{i}")))
        .collect();
    let contributors: Vec<AuthorId> = (0..10)
        .map(|i| repo.add_author(format!("contributor_{tag}_{i}")))
        .collect();
    let drifters: Vec<AuthorId> = (0..15)
        .map(|i| repo.add_author(format!("drifter_{tag}_{i}")))
        .collect();

    // ----- Build the item list -------------------------------------------
    let mut items: Vec<Item> = Vec::new();
    let mut counter = 0usize;
    let next_id = |counter: &mut usize| -> String {
        *counter += 1;
        format!("{tag}_{:05}", *counter)
    };

    let pick_weighted = |rng: &mut SplitMix64, table: &[(&str, f64)]| -> String {
        let x = rng.f64();
        let mut acc = 0.0;
        for (name, w) in table {
            acc += w;
            if x < acc {
                return (*name).to_string();
            }
        }
        table.last().expect("non-empty table").0.to_string()
    };
    let pick_age = |rng: &mut SplitMix64| -> i64 {
        let x = rng.f64();
        let mut acc = 0.0;
        for (lo, hi, w) in AGE_BUCKETS {
            acc += w;
            if x < acc {
                return rng.range_i64(*lo, *hi);
            }
        }
        AGE_BUCKETS[0].0
    };
    let pick_severity = |rng: &mut SplitMix64| -> Severity {
        match pick_weighted(rng, SEVERITIES).as_str() {
            "high" => Severity::High,
            "low" => Severity::Low,
            _ => Severity::Medium,
        }
    };

    // Checked-function groups back the Smatch/Coverity majority heuristics:
    // 12 checking consumers per group, benign + buggy ignorers capped at 11.
    let semantic_count = ((profile.confirmed_bugs as f64) * 0.13).round() as usize;
    let icb = profile
        .ignored_checked_bugs
        .min(profile.confirmed_bugs.saturating_sub(semantic_count));
    let total_ignorers = profile.smatch_benign + icb;
    let checked_groups = total_ignorers.div_ceil(10).max(1);
    {
        let mut benign_left = profile.smatch_benign;
        for g in 0..checked_groups {
            let share = benign_left / (checked_groups - g);
            let id = next_id(&mut counter);
            items.push(codegen::checked_group(g, &id, 12, share));
            benign_left -= share;
        }
    }

    // Confirmed bugs: ~13% semantic (Table 3), the rest missing-check.
    for i in 0..profile.confirmed_bugs {
        let id = next_id(&mut counter);
        let age_days = pick_age(&mut rng);
        let when = NOW - age_days * DAY;
        let semantic = i < semantic_count;
        let kind = PlantKind::ConfirmedBug {
            category: if semantic {
                BugCategory::Semantic
            } else {
                BugCategory::MissingCheck
            },
            component: pick_weighted(&mut rng, COMPONENTS),
            severity: pick_severity(&mut rng),
            introduced: when, // Clamped later against the file import time.
        };
        let item = if semantic {
            if i % 2 == 0 {
                codegen::bug_overwritten(&id, when, kind)
            } else {
                codegen::bug_param(&id, i, when, kind)
            }
        } else if i - semantic_count < icb {
            codegen::bug_ignored_checked(&id, (i - semantic_count) % checked_groups, when, kind)
        } else if i % 2 == 0 {
            codegen::bug_retval_overwrite(&id, when, kind)
        } else {
            codegen::bug_ignored_retval(&id, when, kind)
        };
        let mut item = item;
        // A minority of real bugs come from moderately-familiar
        // contributors, so the familiarity factors matter individually
        // (Table 6's w/o-AC / w/o-DL / w/o-FA deltas).
        if i % 10 == 9 {
            for func in &mut item.funcs {
                if let Some(e) = &mut func.edit {
                    if e.role == Role::Newcomer {
                        e.role = Role::Contributor;
                    }
                }
            }
        }
        items.push(item);
    }

    // False positives.
    for i in 0..(profile.fp_minor + profile.fp_debug) {
        let id = next_id(&mut counter);
        let when = NOW - rng.range_i64(200, 900) * DAY;
        let debug_code = i >= profile.fp_minor;
        let mut item = codegen::fp_retval(&id, when, debug_code);
        // One false positive per application comes from a newcomer, putting
        // it near the top of the familiarity ranking (the paper's top-10
        // precision is 97.5%, not 100%).
        if i == 0 {
            for func in &mut item.funcs {
                if let Some(e) = &mut func.edit {
                    if e.role == Role::Contributor {
                        e.role = Role::Newcomer;
                    }
                }
            }
        }
        items.push(item);
    }

    // Intentional patterns.
    for i in 0..profile.prune_config {
        let id = next_id(&mut counter);
        items.push(codegen::intentional_config(
            &id,
            PlantKind::Intentional {
                pattern: IntentionalPattern::ConfigDependency,
                actually_bug: i < profile.prune_fn_config,
            },
        ));
    }
    for _ in 0..profile.prune_cursor {
        let id = next_id(&mut counter);
        let when = NOW - rng.range_i64(100, 1200) * DAY;
        items.push(codegen::intentional_cursor(
            &id,
            when,
            PlantKind::Intentional {
                pattern: IntentionalPattern::Cursor,
                actually_bug: false,
            },
        ));
    }
    for _ in 0..profile.prune_hints {
        let id = next_id(&mut counter);
        items.push(codegen::intentional_hint(
            &id,
            PlantKind::Intentional {
                pattern: IntentionalPattern::UnusedHint,
                actually_bug: false,
            },
        ));
    }
    // Peer groups of 11–18 sites.
    let mut peer_budget = profile.prune_peer;
    let mut group = 0usize;
    let mut peer_fn_left = profile.prune_fn_peer;
    while peer_budget > 0 {
        let mut k = rng.range_inclusive_usize(11, 18).min(peer_budget);
        // Never leave a remainder below the peer threshold.
        if peer_budget > k && peer_budget - k < 11 {
            k = peer_budget;
        }
        if peer_budget <= 18 {
            k = peer_budget;
        }
        for j in 0..k {
            let id = next_id(&mut counter);
            let actually_bug = peer_fn_left > 0;
            if actually_bug {
                peer_fn_left -= 1;
            }
            items.push(codegen::intentional_peer_site(
                group,
                j,
                &id,
                PlantKind::Intentional {
                    pattern: IntentionalPattern::PeerDefinition,
                    actually_bug,
                },
            ));
        }
        peer_budget -= k;
        group += 1;
    }
    let peer_groups = group.max(1);

    // Non-cross-scope unused definitions.
    for i in 0..profile.non_cross {
        let id = next_id(&mut counter);
        let role = match i % 10 {
            0..=4 => Role::Drifter,
            5..=7 => Role::Contributor,
            _ => Role::Owner,
        };
        let when = NOW - rng.range_i64(50, 1500) * DAY;
        items.push(codegen::non_cross(&id, role, when, i % 5 != 0));
    }

    // Same-author unused call results that are real bugs (§8.4.5).
    for _ in 0..profile.non_cross_real {
        let id = next_id(&mut counter);
        let when = NOW - rng.range_i64(30, 400) * DAY;
        items.push(codegen::non_cross_real(&id, Role::Contributor, when));
    }

    // §3.1 preliminary history.
    for i in 0..profile.prelim_total {
        let id = next_id(&mut counter);
        let bugfix = i < profile.prelim_bugfix;
        let cross = i < profile.prelim_cross;
        let peer_missed = i < profile.prelim_peer_missed;
        let intro = T_PRELIM_INTRO + rng.range_i64(0, 60) * DAY;
        let removal = rng.range_i64(T_REMOVAL_LO, T_REMOVAL_HI);
        items.push(codegen::prelim(
            &id,
            intro,
            removal,
            bugfix,
            cross,
            peer_missed,
            (i + rng.range_usize(0, 7)) % peer_groups,
        ));
    }

    // Filler.
    for i in 0..profile.filler_funcs {
        let id = next_id(&mut counter);
        items.push(codegen::filler(&id, i));
    }

    // Shuffle so detection order interleaves kinds (the "w/o Familiarity"
    // ablation samples the first 20 in detection order).
    for i in (1..items.len()).rev() {
        let j = rng.range_inclusive_usize(0, i);
        items.swap(i, j);
    }

    // ----- Chunk items into files ------------------------------------------
    let mut files: Vec<FilePlan> = Vec::new();
    let mut truth = GroundTruth {
        planted: Vec::new(),
        now: NOW,
    };
    let mut current: Option<FilePlan> = None;
    let mut file_no = 0usize;
    for item in items {
        let need = item.funcs.len();
        let full = current
            .as_ref()
            .map(|f| !f.slots.is_empty() && f.slots.len() + need > profile.funcs_per_file)
            .unwrap_or(true);
        if full {
            if let Some(f) = current.take() {
                files.push(f);
            }
            let owner = owners[file_no % owners.len()];
            let t_init = T_IMPORT + rng.range_i64(0, 60) * DAY;
            current = Some(FilePlan {
                path: format!("src/{tag}_mod_{file_no:04}.c"),
                protos: Vec::new(),
                slots: Vec::new(),
                owner,
                t_init,
                churns: Vec::new(),
            });
            file_no += 1;
        }
        let f = current.as_mut().expect("file plan exists");
        for p in &item.protos {
            if !f.protos.contains(p) {
                f.protos.push(p.clone());
            }
        }
        let base_slot = f.slots.len();
        for (fi, func) in item.funcs.into_iter().enumerate() {
            // Re-edits of an existing slot (prelim removals) attach to it.
            if let Some(existing) = f.slots.iter_mut().find(|s| s.name == func.name) {
                existing.edits.extend(func.edit);
                continue;
            }
            let _ = fi;
            f.slots.push(Slot {
                name: func.name,
                text: func.initial,
                edits: func.edit.into_iter().collect(),
            });
        }
        for (idx, kind) in item.plants {
            truth.planted.push(Planted {
                func: f.slots[(base_slot + idx).min(f.slots.len() - 1)]
                    .name
                    .clone(),
                file: f.path.clone(),
                kind,
            });
        }
    }
    if let Some(f) = current.take() {
        files.push(f);
    }

    // Resolve edit authors, then plan churn commits: owners churn their
    // files throughout (raising every outsider's AC), while contributors and
    // half the drifters make same-author follow-up commits (raising their
    // own DL — the familiarity signal the DOK ranking keys on).
    let pick_role_author = |rng: &mut SplitMix64, role: Role, owner: AuthorId| -> AuthorId {
        match role {
            Role::Owner => owner,
            Role::Newcomer => *rng.choice(&newcomers),
            Role::Contributor => *rng.choice(&contributors),
            Role::Drifter => *rng.choice(&drifters),
        }
    };
    struct ResolvedEdit {
        slot: usize,
        time: i64,
        author: AuthorId,
        message: String,
        text: String,
    }
    let mut file_edits: Vec<Vec<ResolvedEdit>> = Vec::with_capacity(files.len());
    for f in &mut files {
        let mut resolved = Vec::new();
        for (si, slot) in f.slots.iter().enumerate() {
            for e in &slot.edits {
                let When::At(t) = e.when;
                let time = t.max(f.t_init + 10 * DAY);
                let author = pick_role_author(&mut rng, e.role, f.owner);
                // Same-author follow-up churns build the editor's DL.
                let follow_ups = match e.role {
                    Role::Contributor => rng.range_inclusive_usize(3, 5),
                    Role::Drifter => rng.range_inclusive_usize(0, 1),
                    Role::Owner | Role::Newcomer => 0,
                };
                for k in 0..follow_ups {
                    let tt = (time + (k as i64 + 1) * 15 * DAY).min(NOW - DAY);
                    f.churns.push((tt, author));
                }
                resolved.push(ResolvedEdit {
                    slot: si,
                    time,
                    author,
                    message: e.message.clone(),
                    text: e.text.clone(),
                });
            }
        }
        let n = rng.range_usize(6, 12);
        for _ in 0..n {
            let t = rng.range_i64(f.t_init + 10 * DAY, NOW - 5 * DAY);
            f.churns.push((t, f.owner));
        }
        file_edits.push(resolved);
    }

    // ----- Plan and apply commits ------------------------------------------
    struct Planned {
        time: i64,
        author: AuthorId,
        message: String,
        path: String,
        content: String,
    }
    let mut planned: Vec<Planned> = Vec::new();

    for (f, resolved) in files.iter().zip(&file_edits) {
        // Events: (time, kind). Kind: edit on slot s -> text / churn.
        enum Ev {
            Edit {
                slot: usize,
                text: String,
                author: AuthorId,
                message: String,
            },
            Churn {
                author: AuthorId,
            },
        }
        let mut events: Vec<(i64, usize, Ev)> = Vec::new();
        let mut seq = 0usize;
        for e in resolved {
            events.push((
                e.time,
                seq,
                Ev::Edit {
                    slot: e.slot,
                    text: e.text.clone(),
                    author: e.author,
                    message: e.message.clone(),
                },
            ));
            seq += 1;
        }
        for (t, a) in &f.churns {
            events.push((*t, seq, Ev::Churn { author: *a }));
            seq += 1;
        }
        events.sort_by_key(|(t, s, _)| (*t, *s));

        // Sequential content computation.
        let mut texts: Vec<Option<String>> = f.slots.iter().map(|s| s.text.clone()).collect();
        let mut churn_lines = 0usize;
        let render = |texts: &[Option<String>], churn_lines: usize| -> String {
            let mut out = String::new();
            for p in &f.protos {
                out.push_str(p);
                out.push('\n');
            }
            for t in texts.iter().flatten() {
                out.push_str(t);
            }
            for k in 0..churn_lines {
                out.push_str(&format!("// maintenance churn {k}\n"));
            }
            out
        };
        planned.push(Planned {
            time: f.t_init,
            author: f.owner,
            message: format!("import {}", f.path),
            path: f.path.clone(),
            content: render(&texts, 0),
        });
        for (t, _, ev) in events {
            match ev {
                Ev::Edit {
                    slot,
                    text,
                    author,
                    message,
                } => {
                    texts[slot] = Some(text);
                    planned.push(Planned {
                        time: t,
                        author,
                        message,
                        path: f.path.clone(),
                        content: render(&texts, churn_lines),
                    });
                }
                Ev::Churn { author } => {
                    churn_lines += 1;
                    planned.push(Planned {
                        time: t,
                        author,
                        message: "routine maintenance".to_string(),
                        path: f.path.clone(),
                        content: render(&texts, churn_lines),
                    });
                }
            }
        }
    }

    planned.sort_by(|a, b| (a.time, &a.path).cmp(&(b.time, &b.path)));
    for p in planned {
        repo.commit(
            p.author,
            p.time,
            p.message,
            vec![FileWrite {
                path: p.path,
                content: p.content,
            }],
        );
    }

    // ----- Final sources and snapshots --------------------------------------
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    let paths: Vec<String> = repo.paths().iter().map(|p| p.to_string()).collect();
    for path in paths {
        let content = repo.file_content(&path).expect("tracked file has content");
        sources.insert(path, content + "\n");
    }
    // Clamp recorded introduction times to the actual edit floor.
    for p in &mut truth.planted {
        if let PlantKind::ConfirmedBug { introduced, .. } = &mut p.kind {
            *introduced = (*introduced).max(T_IMPORT + 10 * DAY);
        }
    }

    GeneratedApp {
        profile: profile.clone(),
        sources: sources.into_iter().collect(),
        repo: repo.clone(),
        truth,
        defines: Vec::new(),
        snapshot_2019: repo.commit_at_time(T_2019),
        snapshot_2021: repo.commit_at_time(T_2021),
        coverity_last_run: profile.coverity_history.then_some(NOW - 500 * DAY),
    }
}
