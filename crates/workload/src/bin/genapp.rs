//! `genapp` — exports a calibrated synthetic application to disk in the
//! layout `vcheck` consumes: `*.c` sources plus `history.json` (and a
//! `truth.json` with the ground-truth labels).
//!
//! ```text
//! Usage: genapp --profile <linux|nfs-ganesha|mysql|openssl> [--scale F] --out DIR
//! ```

use std::path::PathBuf;

use vc_vcs::HistorySpec;
use vc_workload::{
    generate,
    AppProfile, //
};

fn main() {
    let mut profile_name = String::from("openssl");
    let mut scale = 1.0f64;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--profile" => {
                profile_name = args.next().unwrap_or_else(|| die("--profile needs a name"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out needs a path")),
                ))
            }
            "--help" | "-h" => {
                eprintln!("Usage: genapp --profile <linux|nfs-ganesha|mysql|openssl> [--scale F] --out DIR");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let out = out.unwrap_or_else(|| die("missing --out"));

    let profile = match profile_name.as_str() {
        "linux" => AppProfile::linux(),
        "nfs-ganesha" | "nfs" => AppProfile::nfs_ganesha(),
        "mysql" => AppProfile::mysql(),
        "openssl" => AppProfile::openssl(),
        other => die(&format!("unknown profile `{other}`")),
    };
    let profile = if (scale - 1.0).abs() < 1e-9 {
        profile
    } else {
        profile.scaled(scale)
    };

    let app = generate(&profile);
    for (path, content) in &app.sources {
        let full = out.join(path);
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| die(&format!("{e}")));
        }
        std::fs::write(&full, content).unwrap_or_else(|e| die(&format!("{e}")));
    }
    let spec = HistorySpec::from_repo(&app.repo);
    std::fs::write(out.join("history.json"), spec.to_json())
        .unwrap_or_else(|e| die(&format!("{e}")));
    std::fs::write(out.join("truth.json"), app.truth.to_json())
        .unwrap_or_else(|e| die(&format!("{e}")));

    eprintln!(
        "genapp: wrote `{}` ({} files, {} LOC, {} commits) to {}",
        profile.name,
        app.sources.len(),
        app.loc(),
        app.repo.commits().len(),
        out.display()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("genapp: {msg}");
    std::process::exit(2);
}
