//! Seeded chaos plans for the `vcheck serve` daemon.
//!
//! Where [`crate::corrupt`] attacks the *parser* and [`crate::faults`] the
//! *batch pipeline*, this module attacks the *daemon*: it builds a seeded
//! script of protocol requests interleaved with on-disk file corruption,
//! malformed input, oversized bursts against a wedged worker, injected
//! panics, and mid-stream kill+restart. The plan states what must be true
//! afterwards, so a harness can hold `vcheck serve` to its contract:
//!
//! - the daemon process never exits except on `shutdown`/EOF (and then
//!   with status 0);
//! - every scan/update reply not degraded by an injected fault carries a
//!   report **byte-identical** to a cold batch scan of the tree as it was
//!   at that moment;
//! - the protocol counters balance: every line sent is answered or shed,
//!   bad lines are counted, every injected panic costs exactly one
//!   quarantine (`serve.state_rebuilds`);
//! - the analysis funnel balances cumulatively
//!   (`funnel.cross_scope == funnel_pruned(*) + funnel.reported`).
//!
//! The plan is pure data (strings and trees): this module does not depend
//! on the analyzer. The executing harness lives next to the `vcheck`
//! binary, which owns `CARGO_BIN_EXE_vcheck`.

use vc_obs::SplitMix64;

use crate::{
    corrupt::{
        corrupt,
        plant_fault_file,
        CorruptKind, //
    },
    generate::generate,
    profile::AppProfile,
};

/// One scripted action against a live daemon.
#[derive(Clone, Debug)]
pub enum ChaosStep {
    /// Send `{"op":"scan"}`; the reply must be `ok` (or the armed panic for
    /// this seq) and, when clean, byte-identical to a cold scan.
    Scan,
    /// Send `{"op":"update","files":[..]}` naming the files edited since
    /// the last request. Same reply contract as `Scan`.
    Update {
        /// The edited files, as protocol hints.
        files: Vec<String>,
    },
    /// Rewrite one file on disk before the next request.
    Edit {
        /// Tree-relative path.
        path: String,
        /// New content.
        content: String,
    },
    /// Send one line of non-protocol garbage; the daemon must answer
    /// `ok:false` and keep serving.
    BadLine {
        /// The raw line (no trailing newline).
        line: String,
    },
    /// Wedge the worker with `{"op":"sleep"}` and immediately send `count`
    /// scans. With `count > queue_depth`, at least one must be shed.
    Burst {
        /// How long the wedge holds the worker, in milliseconds.
        wedge_ms: u64,
        /// Scans fired while wedged.
        count: usize,
    },
}

impl ChaosStep {
    /// How many protocol lines (and thus request seqs) this step consumes.
    pub fn lines(&self) -> u64 {
        match self {
            ChaosStep::Scan | ChaosStep::Update { .. } | ChaosStep::BadLine { .. } => 1,
            ChaosStep::Edit { .. } => 0,
            ChaosStep::Burst { count, .. } => 1 + *count as u64,
        }
    }
}

/// One daemon lifetime: the harness starts a fresh process per segment
/// (kill+restart between segments), arming `panic_seqs` via
/// `VCHECK_SERVE_PANIC_SEQS` before spawning.
#[derive(Clone, Debug)]
pub struct ChaosSegment {
    /// Request seqs that must panic inside the daemon (one-shot each).
    pub panic_seqs: Vec<u64>,
    /// The scripted actions, in order.
    pub steps: Vec<ChaosStep>,
    /// Whether this segment ends with `{"op":"shutdown"}` (graceful) or by
    /// killing the process mid-stream (the restart must come up cold and
    /// correct).
    pub graceful: bool,
}

/// A complete chaos plan over one project tree.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// The generating seed.
    pub seed: u64,
    /// Initial tree, `(relative path, content)`, sorted by path. Written
    /// without a `history.json`: chaos edits corrupt files freely, and a
    /// stale history head would reject the tree at load time.
    pub initial_tree: Vec<(String, String)>,
    /// Daemon lifetimes, executed in order against the same tree.
    pub segments: Vec<ChaosSegment>,
    /// The queue depth the daemon must run with for the burst math.
    pub queue_depth: usize,
    /// Minimum sheds the plan's bursts guarantee (each burst wedges the
    /// worker, then overfills the queue by at least one).
    pub min_sheds: u64,
}

/// Builds the seeded plan. Deterministic: same seed, same plan.
pub fn generate_chaos(seed: u64) -> ChaosPlan {
    let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);

    // A small generated app plus the corruptible fault file. The history
    // is discarded (see `initial_tree`): only the sources travel.
    let mut profile = AppProfile::nfs_ganesha().scaled(0.01);
    profile.seed = seed;
    profile.name = format!("chaos{seed}");
    let mut app = generate(&profile);
    let ff = plant_fault_file(&mut app, seed);
    let pristine: String = app
        .sources
        .iter()
        .find(|(p, _)| *p == ff.path)
        .expect("fault file planted")
        .1
        .clone();

    // Corrupted variants of the fault file, one per kind, made on clones
    // so the plan's `initial_tree` stays pristine.
    let variants: Vec<(CorruptKind, String)> = CorruptKind::ALL
        .iter()
        .map(|&kind| {
            let mut clone = app.clone();
            corrupt(&mut clone, &ff, kind);
            let text = clone
                .sources
                .iter()
                .find(|(p, _)| *p == ff.path)
                .unwrap()
                .1
                .clone();
            (kind, text)
        })
        .collect();

    let queue_depth = 3;
    let mut min_sheds = 0u64;
    let segment_count = 2 + (seed as usize % 2);
    let mut segments = Vec::new();
    for seg_idx in 0..segment_count {
        let mut steps = vec![ChaosStep::Scan];
        let mut seq = 1u64; // the opening scan
        let mut panic_seqs = Vec::new();
        let mut corrupted = false;
        let step_count = rng.range_inclusive_usize(5, 8);
        for _ in 0..step_count {
            match rng.bounded(6) {
                0 => {
                    seq += 1;
                    steps.push(ChaosStep::Scan);
                }
                1 => {
                    // Corrupt the fault file (or restore it) and rescan.
                    let (content, files) = if corrupted {
                        (pristine.clone(), vec![ff.path.clone()])
                    } else {
                        let (_, text) = &variants[rng.range_usize(0, variants.len())];
                        (text.clone(), vec![ff.path.clone()])
                    };
                    corrupted = !corrupted;
                    steps.push(ChaosStep::Edit {
                        path: ff.path.clone(),
                        content,
                    });
                    seq += 1;
                    steps.push(ChaosStep::Update { files });
                }
                2 => {
                    let line = match rng.bounded(4) {
                        0 => "this is not json".to_string(),
                        1 => "[1, 2, 3]".to_string(),
                        2 => "{}".to_string(),
                        _ => format!("{{\"op\":\"nonsense{}\"}}", rng.bounded(100)),
                    };
                    seq += 1;
                    steps.push(ChaosStep::BadLine { line });
                }
                3 => {
                    // Overfill a wedged queue: the wedge occupies the
                    // worker, `queue_depth + overflow` scans pile up, and
                    // at least `overflow` of them must shed.
                    let overflow = rng.range_inclusive_usize(1, 2);
                    let count = queue_depth + overflow;
                    min_sheds += overflow as u64;
                    seq += 1 + count as u64;
                    steps.push(ChaosStep::Burst {
                        wedge_ms: 150,
                        count,
                    });
                }
                4 => {
                    // Arm a panic on the next scan: the daemon must reply
                    // with an error, quarantine, and keep serving.
                    seq += 1;
                    panic_seqs.push(seq);
                    steps.push(ChaosStep::Scan);
                }
                _ => {
                    seq += 1;
                    steps.push(ChaosStep::Update { files: Vec::new() });
                }
            }
        }
        // Always leave the tree pristine and verified before the segment
        // ends, so the next segment's cold start has a known-good floor.
        if corrupted {
            steps.push(ChaosStep::Edit {
                path: ff.path.clone(),
                content: pristine.clone(),
            });
        }
        steps.push(ChaosStep::Scan);
        let graceful = seg_idx % 2 == 0;
        segments.push(ChaosSegment {
            panic_seqs,
            steps,
            graceful,
        });
    }

    let mut initial_tree = app.sources;
    initial_tree.sort_by(|a, b| a.0.cmp(&b.0));
    ChaosPlan {
        seed,
        initial_tree,
        segments,
        queue_depth,
        min_sheds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = generate_chaos(42);
        let b = generate_chaos(42);
        assert_eq!(a.initial_tree, b.initial_tree);
        assert_eq!(a.segments.len(), b.segments.len());
        assert_eq!(a.min_sheds, b.min_sheds);
        for (sa, sb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(sa.panic_seqs, sb.panic_seqs);
            assert_eq!(sa.steps.len(), sb.steps.len());
        }
        let c = generate_chaos(43);
        assert!(
            c.initial_tree != a.initial_tree || c.segments.len() != a.segments.len(),
            "different seeds vary the plan"
        );
    }

    #[test]
    fn panic_seqs_match_the_line_arithmetic() {
        for seed in [1, 7, 42, 99] {
            let plan = generate_chaos(seed);
            for seg in &plan.segments {
                let mut seq = 0u64;
                let mut scan_update_seqs = Vec::new();
                for step in &seg.steps {
                    match step {
                        ChaosStep::Scan | ChaosStep::Update { .. } => {
                            seq += 1;
                            scan_update_seqs.push(seq);
                        }
                        other => seq += other.lines(),
                    }
                }
                for p in &seg.panic_seqs {
                    assert!(
                        scan_update_seqs.contains(p),
                        "panic seq {p} must land on a scan/update line (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn bursts_overflow_the_declared_queue_depth() {
        for seed in [3, 14, 27] {
            let plan = generate_chaos(seed);
            for seg in &plan.segments {
                for step in &seg.steps {
                    if let ChaosStep::Burst { count, .. } = step {
                        assert!(*count > plan.queue_depth);
                    }
                }
            }
        }
    }

    #[test]
    fn tree_has_no_history_file_and_ends_pristine() {
        let plan = generate_chaos(11);
        assert!(plan
            .initial_tree
            .iter()
            .all(|(p, _)| !p.ends_with("history.json")));
        // Replay the edits: after each segment the fault file is pristine.
        let fault_path = plan
            .segments
            .iter()
            .flat_map(|s| &s.steps)
            .find_map(|s| match s {
                ChaosStep::Edit { path, .. } => Some(path.clone()),
                _ => None,
            });
        if let Some(path) = fault_path {
            let pristine = plan
                .initial_tree
                .iter()
                .find(|(p, _)| *p == path)
                .unwrap()
                .1
                .clone();
            let mut current = pristine.clone();
            for seg in &plan.segments {
                for step in &seg.steps {
                    if let ChaosStep::Edit { content, .. } = step {
                        current = content.clone();
                    }
                }
                assert_eq!(current, pristine, "segment leaves the tree pristine");
            }
        }
    }
}
