//! Per-application workload profiles calibrated to the paper's evaluation.
//!
//! The paper evaluates Linux-5.19, MySQL-8.0.21, OpenSSL-3.0.0 and
//! NFS-ganesha-4.46. We cannot ship those trees, so each profile encodes the
//! *published statistics* of one application — candidate counts, the prune
//! breakdown of Table 4, the confirmed/false-positive split of Tables 2/5,
//! the Fig. 7 distributions, and the §3.1 preliminary-history counts — and
//! the generator materializes a synthetic MiniC project + VCS history with
//! those properties by construction.

/// Distribution weights for bug components (Fig. 7a).
pub const COMPONENTS: &[(&str, f64)] = &[
    ("file-system", 0.38),
    ("security", 0.17),
    ("network", 0.15),
    ("driver", 0.12),
    ("core", 0.10),
    ("other", 0.08),
];

/// Distribution weights for bug severity (Fig. 7b).
pub const SEVERITIES: &[(&str, f64)] = &[("high", 0.15), ("medium", 0.59), ("low", 0.26)];

/// Bug-age buckets in days (Fig. 7c): `(min_days, max_days, weight)`.
pub const AGE_BUCKETS: &[(i64, i64, f64)] =
    &[(1000, 2500, 0.82), (100, 1000, 0.13), (7, 100, 0.05)];

/// "Now" for the generated histories: 2022-07-01 00:00:00 UTC, shortly after
/// the paper's analysis period.
pub const NOW: i64 = 1_656_633_600;

/// One day in seconds.
pub const DAY: i64 = 86_400;

/// A calibrated application profile.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// Application name (`linux`, `nfs-ganesha`, `mysql`, `openssl`).
    pub name: String,
    /// Deterministic generation seed.
    pub seed: u64,
    /// Confirmed true bugs surviving the full pipeline (Table 2).
    pub confirmed_bugs: usize,
    /// Detected-but-unconfirmed findings that are minor defects (§8.3.1).
    pub fp_minor: usize,
    /// Detected-but-unconfirmed findings in debugging code (§8.3.1).
    pub fp_debug: usize,
    /// Cross-scope candidates pruned by configuration dependency (Table 4).
    pub prune_config: usize,
    /// Pruned by cursor detection (Table 4).
    pub prune_cursor: usize,
    /// Pruned by unused hints (Table 4).
    pub prune_hints: usize,
    /// Pruned by peer definitions (Table 4).
    pub prune_peer: usize,
    /// Same-author unused definitions surviving pruning (the w/o-Authorship
    /// pool of §8.5.1; 2259 total across apps minus the 210 cross-scope).
    pub non_cross: usize,
    /// Clean filler functions (code mass).
    pub filler_funcs: usize,
    /// Functions per generated file.
    pub funcs_per_file: usize,
    /// Whether Smatch builds this application (§8.4.3: Linux only).
    pub smatch_builds: bool,
    /// Whether the project ran Coverity historically and addressed its
    /// warnings (§8.4.4: every application except Linux).
    pub coverity_history: bool,
    /// §3.1: unused definitions present in 2019 and removed by 2021.
    pub prelim_total: usize,
    /// §3.1: how many of those were removed by bug-fix commits.
    pub prelim_bugfix: usize,
    /// §3.1: how many of the bug-fix removals crossed author scopes.
    pub prelim_cross: usize,
    /// §8.3.2: prelim cross-scope bugs planted inside peer-ignorable groups
    /// so that detection (with peer pruning) misses them.
    pub prelim_peer_missed: usize,
    /// §8.3.4: config-dependency-pruned items that are nonetheless real bugs
    /// (pruning false negatives; 2 across all apps).
    pub prune_fn_config: usize,
    /// §8.3.4: peer-pruned items that are nonetheless real bugs (5 across
    /// all apps).
    pub prune_fn_peer: usize,
    /// Confirmed missing-check bugs shaped as an ignored mostly-checked
    /// status call (visible to Smatch/Coverity majority heuristics; §8.4.3).
    pub ignored_checked_bugs: usize,
    /// Benign same-author sites ignoring a mostly-checked status call — the
    /// Smatch/Coverity false-positive pool (Linux: 147 − 28 = 119).
    pub smatch_benign: usize,
    /// Same-author unused call results that are real bugs: ValueCheck's
    /// deliberate blind spot, found by Coverity on Linux (§8.4.4/§8.4.5).
    pub non_cross_real: usize,
    /// Fraction of files fb-infer manages to analyse (0 = the tool errors
    /// out, as it does on Linux per Table 5).
    pub infer_coverage: f64,
}

impl AppProfile {
    /// Cross-scope candidates before pruning (Table 4 "#Original"):
    /// detected + all pruned.
    pub fn original_candidates(&self) -> usize {
        self.detected() + self.total_pruned()
    }

    /// Findings after pruning (Table 2 "#Detected Bugs").
    pub fn detected(&self) -> usize {
        self.confirmed_bugs + self.fp_minor + self.fp_debug
    }

    /// Total pruned (Table 4).
    pub fn total_pruned(&self) -> usize {
        self.prune_config + self.prune_cursor + self.prune_hints + self.prune_peer
    }

    /// Scales every count by `f` (for fast tests and Criterion benches).
    /// Counts never drop below 1 when they were nonzero.
    pub fn scaled(&self, f: f64) -> AppProfile {
        let s = |n: usize| -> usize {
            if n == 0 {
                0
            } else {
                (((n as f64) * f).round() as usize).max(1)
            }
        };
        AppProfile {
            name: self.name.clone(),
            seed: self.seed,
            confirmed_bugs: s(self.confirmed_bugs),
            fp_minor: s(self.fp_minor),
            fp_debug: s(self.fp_debug),
            prune_config: s(self.prune_config),
            prune_cursor: s(self.prune_cursor),
            prune_hints: s(self.prune_hints),
            // A peer group below the ">10 occurrences" threshold (§5.4)
            // would never be pruned; keep scaled peer counts viable.
            prune_peer: match s(self.prune_peer) {
                0 => 0,
                n => n.max(11),
            },
            non_cross: s(self.non_cross),
            filler_funcs: s(self.filler_funcs),
            funcs_per_file: self.funcs_per_file,
            smatch_builds: self.smatch_builds,
            coverity_history: self.coverity_history,
            prelim_total: s(self.prelim_total),
            prelim_bugfix: s(self.prelim_bugfix).min(s(self.prelim_total)),
            prelim_cross: s(self.prelim_cross).min(s(self.prelim_bugfix)),
            prelim_peer_missed: self.prelim_peer_missed.min(s(self.prelim_cross)),
            prune_fn_config: self.prune_fn_config.min(s(self.prune_config)),
            prune_fn_peer: self.prune_fn_peer.min(s(self.prune_peer)),
            ignored_checked_bugs: s(self.ignored_checked_bugs).min(s(self.confirmed_bugs)),
            smatch_benign: s(self.smatch_benign),
            non_cross_real: s(self.non_cross_real),
            infer_coverage: self.infer_coverage,
        }
    }

    /// The Linux-5.19 profile (Tables 2/4/5: 63 detected, 44 confirmed,
    /// 259 original candidates, prune 1/22/46/127).
    pub fn linux() -> AppProfile {
        AppProfile {
            name: "linux".into(),
            seed: 0x11e4,
            confirmed_bugs: 44,
            fp_minor: 17,
            fp_debug: 2,
            prune_config: 1,
            prune_cursor: 22,
            prune_hints: 46,
            prune_peer: 127,
            non_cross: 300,
            filler_funcs: 900,
            funcs_per_file: 35,
            smatch_builds: true,
            coverity_history: false,
            prelim_total: 100,
            prelim_bugfix: 70,
            prelim_cross: 65,
            prelim_peer_missed: 3,
            prune_fn_config: 0,
            prune_fn_peer: 2,
            ignored_checked_bugs: 28,
            smatch_benign: 119,
            non_cross_real: 20,
            infer_coverage: 0.0,
        }
    }

    /// The NFS-ganesha-4.46 profile (22 detected, 18 confirmed,
    /// 898 original, prune 7/7/839/23).
    pub fn nfs_ganesha() -> AppProfile {
        AppProfile {
            name: "nfs-ganesha".into(),
            seed: 0x4f5,
            confirmed_bugs: 18,
            fp_minor: 3,
            fp_debug: 1,
            prune_config: 7,
            prune_cursor: 7,
            prune_hints: 839,
            prune_peer: 23,
            non_cross: 150,
            filler_funcs: 300,
            funcs_per_file: 30,
            smatch_builds: false,
            coverity_history: true,
            prelim_total: 45,
            prelim_bugfix: 31,
            prelim_cross: 29,
            prelim_peer_missed: 1,
            prune_fn_config: 0,
            prune_fn_peer: 1,
            ignored_checked_bugs: 5,
            smatch_benign: 20,
            non_cross_real: 2,
            infer_coverage: 0.15,
        }
    }

    /// The MySQL-8.0.21 profile (99 detected, 74 confirmed, 7743 original,
    /// prune 37/83/3031/4493).
    pub fn mysql() -> AppProfile {
        AppProfile {
            name: "mysql".into(),
            seed: 0x5154,
            confirmed_bugs: 74,
            fp_minor: 24,
            fp_debug: 1,
            prune_config: 37,
            prune_cursor: 83,
            prune_hints: 3031,
            prune_peer: 4493,
            non_cross: 1300,
            filler_funcs: 1800,
            funcs_per_file: 40,
            smatch_builds: false,
            coverity_history: true,
            prelim_total: 120,
            prelim_bugfix: 84,
            prelim_cross: 78,
            prelim_peer_missed: 4,
            prune_fn_config: 1,
            prune_fn_peer: 1,
            ignored_checked_bugs: 20,
            smatch_benign: 60,
            non_cross_real: 5,
            infer_coverage: 0.11,
        }
    }

    /// The OpenSSL-3.0.0 profile (26 detected, 18 confirmed, 642 original,
    /// prune 18/74/322/202).
    pub fn openssl() -> AppProfile {
        AppProfile {
            name: "openssl".into(),
            seed: 0x055,
            confirmed_bugs: 18,
            fp_minor: 7,
            fp_debug: 1,
            prune_config: 18,
            prune_cursor: 74,
            prune_hints: 322,
            prune_peer: 202,
            non_cross: 300,
            filler_funcs: 500,
            funcs_per_file: 30,
            smatch_builds: false,
            coverity_history: true,
            prelim_total: 60,
            prelim_bugfix: 42,
            prelim_cross: 39,
            prelim_peer_missed: 2,
            prune_fn_config: 1,
            prune_fn_peer: 1,
            ignored_checked_bugs: 6,
            smatch_benign: 25,
            non_cross_real: 3,
            infer_coverage: 0.085,
        }
    }

    /// All four paper profiles, in Table 2 order.
    pub fn all() -> Vec<AppProfile> {
        vec![
            Self::linux(),
            Self::nfs_ganesha(),
            Self::mysql(),
            Self::openssl(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match_tables() {
        let all = AppProfile::all();
        let detected: usize = all.iter().map(|p| p.detected()).sum();
        let confirmed: usize = all.iter().map(|p| p.confirmed_bugs).sum();
        assert_eq!(detected, 210, "Table 2 total detected");
        assert_eq!(confirmed, 154, "Table 2 total confirmed");
        // §8.3.1: 51 minor-defect FPs + 5 debug-code FPs.
        let minor: usize = all.iter().map(|p| p.fp_minor).sum();
        let debug: usize = all.iter().map(|p| p.fp_debug).sum();
        assert_eq!(minor, 51);
        assert_eq!(debug, 5);
    }

    #[test]
    fn original_candidates_match_table_4() {
        assert_eq!(AppProfile::linux().original_candidates(), 259);
        assert_eq!(AppProfile::nfs_ganesha().original_candidates(), 898);
        assert_eq!(AppProfile::mysql().original_candidates(), 7743);
        assert_eq!(AppProfile::openssl().original_candidates(), 642);
    }

    #[test]
    fn prelim_counts_are_consistent() {
        let all = AppProfile::all();
        let total: usize = all.iter().map(|p| p.prelim_total).sum();
        assert_eq!(total, 325, "§3.1 total removed unused definitions");
        for p in &all {
            assert!(p.prelim_bugfix <= p.prelim_total);
            assert!(p.prelim_cross <= p.prelim_bugfix);
            assert!(p.prelim_peer_missed <= p.prelim_cross);
        }
    }

    #[test]
    fn prune_fn_totals_match_section_8_3_4() {
        let all = AppProfile::all();
        let cfg: usize = all.iter().map(|p| p.prune_fn_config).sum();
        let peer: usize = all.iter().map(|p| p.prune_fn_peer).sum();
        assert_eq!(cfg, 2, "2 config-dependency pruning false negatives");
        assert_eq!(peer, 5, "5 peer-definition pruning false negatives");
    }

    #[test]
    fn scaling_preserves_structure() {
        let p = AppProfile::mysql().scaled(0.1);
        assert!(p.confirmed_bugs >= 1);
        assert!(p.prune_peer >= 1);
        assert!(p.original_candidates() < AppProfile::mysql().original_candidates());
        assert!(p.prelim_cross <= p.prelim_bugfix);
    }

    #[test]
    fn distributions_sum_to_one() {
        let c: f64 = COMPONENTS.iter().map(|(_, w)| w).sum();
        let s: f64 = SEVERITIES.iter().map(|(_, w)| w).sum();
        let a: f64 = AGE_BUCKETS.iter().map(|(_, _, w)| w).sum();
        assert!((c - 1.0).abs() < 1e-9);
        assert!((s - 1.0).abs() < 1e-9);
        assert!((a - 1.0).abs() < 1e-9);
    }
}
