use valuecheck::pipeline::{run, Options};
use valuecheck::prune::PruneReason;
use vc_ir::Program;
use vc_workload::{generate, AppProfile, PlantKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let profs = if scale >= 0.999 {
        AppProfile::all()
    } else {
        AppProfile::all()
            .into_iter()
            .map(|p| p.scaled(scale))
            .collect()
    };
    for prof in profs {
        let t0 = std::time::Instant::now();
        let app = generate(&prof);
        eprintln!(
            "gen {:?} loc={} files={}",
            t0.elapsed(),
            app.loc(),
            app.sources.len()
        );
        let prog = match Program::build(&app.source_refs(), &app.defines) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("BUILD ERROR: {e}");
                return;
            }
        };
        vc_ir::validate::validate_program(&prog).unwrap();
        let analysis = run(&prog, &app.repo, &Options::paper());
        eprintln!(
            "app={} raw={} cross={} (target {}) pruned: cfg={}/{} cur={}/{} hint={}/{} peer={}/{} detected={} (target {})",
            prof.name,
            analysis.raw_candidates,
            analysis.cross_scope_candidates, prof.original_candidates(),
            analysis.pruned_by(PruneReason::ConfigDependency), prof.prune_config,
            analysis.pruned_by(PruneReason::Cursor), prof.prune_cursor,
            analysis.pruned_by(PruneReason::UnusedHint), prof.prune_hints,
            analysis.pruned_by(PruneReason::PeerDefinition), prof.prune_peer,
            analysis.detected(), prof.detected(),
        );
        // Confirmed among detected per ground truth
        let mut confirmed = 0;
        let mut unknown = vec![];
        for r in &analysis.report.rows {
            match app.truth.lookup(&r.function).map(|p| &p.kind) {
                Some(PlantKind::ConfirmedBug { .. }) => confirmed += 1,
                Some(_) => {}
                None => unknown.push(format!(
                    "{}:{} {} {}",
                    r.file, r.line, r.function, r.variable
                )),
            }
        }
        eprintln!(
            "confirmed among detected: {} (target {})",
            confirmed, prof.confirmed_bugs
        );
        if !unknown.is_empty() {
            eprintln!("UNPLANTED detections ({}):", unknown.len());
            for u in unknown.iter().take(10) {
                eprintln!("  {u}");
            }
        }
        // Which planted things were NOT detected / mis-pruned
        use std::collections::HashSet;
        let det: HashSet<&str> = analysis
            .report
            .rows
            .iter()
            .map(|r| r.function.as_str())
            .collect();
        let mut miss = vec![];
        for p in &app.truth.planted {
            match &p.kind {
                PlantKind::ConfirmedBug { .. } | PlantKind::FalsePositive { .. }
                    if !det.contains(p.func.as_str()) =>
                {
                    miss.push(format!("{} {:?}", p.func, p.kind));
                }
                _ => {}
            }
        }
        eprintln!("missing expected detections: {}", miss.len());
        for m in miss.iter().take(10) {
            eprintln!("  MISS {m}");
        }
        // Mis-pruned expected detections?
        for (a, r) in &analysis.prune_outcome.pruned {
            if let Some(PlantKind::ConfirmedBug { .. } | PlantKind::FalsePositive { .. }) =
                app.truth.lookup(&a.candidate.func_name).map(|p| &p.kind)
            {
                eprintln!("  MISPRUNED {} by {:?}", a.candidate.func_name, r);
            }
        }
    }
}
