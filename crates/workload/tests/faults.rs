//! The fault-injection harness: 32 seeded runs over mutated applications.
//!
//! For every seed this test generates an application, injects one fault of
//! every kind ([`vc_workload::faults`]), and runs the full pipeline under
//! `catch_unwind`. The robustness contract (`ISSUE` acceptance criteria):
//!
//! 1. zero uncaught panics escape the pipeline;
//! 2. every injected fault leaves exactly one piece of evidence (a parse or
//!    detect failure record, or a report row);
//! 3. the candidate funnel balances:
//!    `raw = filtered_out + failed + pruned + reported`.

use std::panic::{
    catch_unwind,
    AssertUnwindSafe, //
};

use valuecheck::{
    harden::{
        arm_failpoint,
        FailStage,
        FailureRecord, //
    },
    pipeline::{
        run_with_obs,
        Options, //
    },
    prune::PruneReason,
};
use vc_ir::Program;
use vc_obs::ObsSession;
use vc_workload::{
    faults::PANIC_NEEDLE,
    generate,
    inject_faults,
    AppProfile,
    Evidence,
    FaultKind, //
};

/// Number of deterministic seeds the suite sweeps (`tools/ci.sh faults`).
const SEEDS: u64 = 32;

fn run_one_seed(seed: u64) {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
    profile.seed = seed.wrapping_mul(7919) ^ 0xFA17;
    profile.name = format!("faulted{seed}");
    let mut app = generate(&profile);
    let faults = inject_faults(&mut app, seed);
    assert_eq!(
        faults.len(),
        FaultKind::ALL.len(),
        "seed {seed}: every fault kind injected"
    );

    // The PanicInjection fault is armed here: any detect-stage unit whose
    // function name matches the needle panics inside the pipeline.
    let _fp = arm_failpoint(FailStage::Detect, PANIC_NEEDLE);

    let obs = ObsSession::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (prog, errors) = Program::build_lenient(&app.source_refs(), &app.defines);
        let analysis = run_with_obs(&prog, &app.repo, &Options::paper(), obs.clone());
        (analysis, errors)
    }));
    let (mut analysis, parse_errors) = outcome.unwrap_or_else(|_| {
        panic!("seed {seed}: a panic escaped the hardened pipeline");
    });

    // Fold parse errors into the failure records, as vcheck does.
    for e in &parse_errors {
        let file = match e {
            vc_ir::program::BuildError::Parse { file, .. }
            | vc_ir::program::BuildError::Lower { file, .. } => file.clone(),
        };
        analysis.report.failures.push(FailureRecord {
            stage: FailStage::Parse,
            file,
            function: None,
            message: e.to_string(),
        });
    }

    // --- each fault reported exactly once --------------------------------
    for fault in &faults {
        let hits = match fault.evidence {
            Evidence::ParseFailure => analysis
                .report
                .failures
                .iter()
                .filter(|f| f.stage == FailStage::Parse && f.file == fault.file)
                .count(),
            Evidence::DetectFailure => analysis
                .report
                .failures
                .iter()
                .filter(|f| {
                    f.stage == FailStage::Detect && f.function.as_deref() == Some(&fault.function)
                })
                .count(),
            Evidence::ReportRow => analysis
                .report
                .rows
                .iter()
                .filter(|r| r.function == fault.function)
                .count(),
        };
        assert_eq!(
            hits, 1,
            "seed {seed}: fault {:?} in {} must leave exactly one {:?}",
            fault.kind, fault.file, fault.evidence
        );
    }

    // --- funnel balance ----------------------------------------------------
    let reg = &obs.registry;
    let raw = reg.counter("funnel.raw");
    let cross = reg.counter("funnel.cross_scope");
    let failed = reg.counter("funnel.failed");
    let pruned: u64 = PruneReason::ALL
        .iter()
        .map(|r| reg.counter(&format!("funnel.pruned.{}", r.label())))
        .sum();
    let reported = reg.counter("funnel.reported");
    assert!(
        raw >= cross + failed,
        "seed {seed}: funnel shrinks monotonically (raw={raw} cross={cross} failed={failed})"
    );
    let filtered_out = raw - failed - cross;
    assert_eq!(
        raw,
        filtered_out + failed + pruned + reported,
        "seed {seed}: funnel must balance (raw={raw} filtered={filtered_out} \
         failed={failed} pruned={pruned} reported={reported})"
    );
    assert_eq!(
        cross,
        pruned + reported,
        "seed {seed}: every cross-scope candidate is pruned or reported"
    );

    // The injected panic is a detect-stage poisoning, visible in counters.
    assert_eq!(
        reg.counter("harden.poisoned.detect"),
        1,
        "seed {seed}: exactly one poisoned function"
    );
    assert_eq!(
        reg.counter("harden.parse_failures"),
        0,
        "parse counter belongs to vcheck; the harness folds errors directly"
    );
}

#[test]
fn thirty_two_seeds_survive_fault_injection() {
    for seed in 0..SEEDS {
        run_one_seed(seed);
    }
}

#[test]
fn faults_are_deterministic_in_the_seed() {
    let make = || {
        let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
        profile.seed = 99;
        profile.name = "det".into();
        let mut app = generate(&profile);
        let faults = inject_faults(&mut app, 5);
        (app.sources, faults)
    };
    let (s1, f1) = make();
    let (s2, f2) = make();
    assert_eq!(s1, s2);
    assert_eq!(f1.len(), f2.len());
    for (a, b) in f1.iter().zip(&f2) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.file, b.file);
        assert_eq!(a.function, b.function);
    }
}
