//! Lifecycle-replay contract over generated multi-commit workloads.
//!
//! The generator scripts a fate for every planted bug
//! ([`vc_workload::life`]); these tests assert that `history_scan`
//! recovers exactly that script — every track's final state, the churn
//! events, a balanced funnel (born = fixed + suppressed + live) — that a
//! seeded suppression-store entry keeps covering its finding as the file
//! drifts, and that the findings database is byte-identical across worker
//! counts and across a journaled resume.

use std::path::PathBuf;

use valuecheck::{
    delta::scan_revision,
    history::{
        history_scan,
        track_rows,
        tracks_to_csv,
        HistoryOutcome, //
    },
    lifedb::{
        FinalState,
        LifeEventKind, //
    },
    pipeline::Options,
    sentinel::SentinelConfig,
    suppress::{
        SuppressEntry,
        SuppressStore, //
    },
};
use vc_obs::{
    names,
    ObsSession, //
};
use vc_workload::{
    generate_life,
    LifeProfile, //
};

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vc-life-{}-{}.journal", std::process::id(), name))
}

fn replay(
    w: &vc_workload::LifeWorkload,
    sconf: &SentinelConfig,
    store: SuppressStore,
) -> (HistoryOutcome, ObsSession) {
    let obs = ObsSession::new();
    let out = history_scan(&w.repo, &[], &Options::paper(), sconf, store, obs.clone())
        .expect("generated workload must build at every commit");
    (out, obs)
}

/// Sorted function names of the tracks that finished in `state`.
fn functions_in(out: &HistoryOutcome, state: FinalState) -> Vec<String> {
    let mut v: Vec<String> = track_rows(&out.db)
        .iter()
        .filter(|r| r.state == state)
        .map(|r| r.function.clone())
        .collect();
    v.sort();
    v
}

#[test]
fn classifies_every_planted_lifecycle() {
    let w = generate_life(&LifeProfile {
        seed: 7,
        commits: 6,
        live: 3,
        fixed: 2,
        suppressed: 2,
        churned: 2,
        files: 3,
        drift_lines: 5,
    });
    let (out, obs) = replay(&w, &SentinelConfig::default(), SuppressStore::default());

    assert_eq!(out.commits, 6);
    assert_eq!(
        functions_in(&out, FinalState::Live),
        w.expected_live,
        "live tracks must match the plant"
    );
    assert_eq!(functions_in(&out, FinalState::Fixed), w.expected_fixed);
    assert_eq!(
        functions_in(&out, FinalState::Suppressed),
        w.expected_suppressed
    );

    // Every relocated bug kept its track and logged exactly one churn
    // event at the action commit; nothing else churned.
    let mut churned: Vec<String> = out
        .db
        .events
        .iter()
        .filter(|e| e.kind == LifeEventKind::Churned)
        .map(|e| e.function.clone())
        .collect();
    churned.sort();
    assert_eq!(churned, w.expected_churned);
    assert!(out
        .db
        .events
        .iter()
        .filter(|e| e.kind == LifeEventKind::Churned)
        .all(|e| e.commit == w.commits[w.action]));

    // The funnel balances and the counters agree with it.
    let funnel = out.db.funnel();
    assert!(funnel.balances(), "born = fixed + suppressed + live");
    let total =
        (w.expected_live.len() + w.expected_fixed.len() + w.expected_suppressed.len()) as u64;
    assert_eq!(
        funnel.born, total,
        "everything is planted at the first commit"
    );
    assert_eq!(obs.registry.counter(names::LIFE_COMMITS), 6);
    assert_eq!(obs.registry.counter(names::LIFE_BORN), total);
    assert_eq!(
        obs.registry.counter(names::LIFE_CHURNED),
        w.expected_churned.len() as u64
    );
    assert_eq!(
        obs.registry.counter(names::LIFE_SUPPRESSED),
        w.expected_suppressed.len() as u64
    );
    assert_eq!(
        obs.registry.counter(names::LIFE_LIVE),
        w.expected_live.len() as u64
    );
    assert!(
        obs.registry.counter(names::SUPPRESS_INLINE) > 0,
        "the planted annotations must be what suppresses"
    );

    // The per-scenario aggregates see the same world: all bugs are
    // retval-pattern, so the scenario table carries the whole funnel.
    let stats = out.db.scenario_stats();
    let retval = stats.get("retval").expect("retval row present");
    assert_eq!(retval.born, total);
}

#[test]
fn store_entry_keeps_covering_through_drift() {
    // Suppress one *live* bug via the store (no annotation in the tree)
    // and let five commits of pad drift move its line: the entry must
    // keep matching and its coordinates must follow the finding down.
    let w = generate_life(&LifeProfile {
        seed: 13,
        suppressed: 0,
        ..LifeProfile::default()
    });
    let first = scan_revision(
        &w.repo,
        w.commits[0],
        &[],
        &Options::paper(),
        &SentinelConfig::default(),
        ObsSession::new(),
    )
    .expect("first revision must scan");
    let target = first
        .findings
        .iter()
        .find(|f| f.function.starts_with("stay_"))
        .expect("a live bug to triage");
    let store = SuppressStore {
        entries: vec![SuppressEntry {
            fingerprint: target.fingerprint.0,
            file: target.file.clone(),
            line: target.line,
            scenario: target.scenario.clone(),
            reason: "triaged".into(),
        }],
    };

    let (out, obs) = replay(&w, &SentinelConfig::default(), store);
    let suppressed = functions_in(&out, FinalState::Suppressed);
    assert_eq!(suppressed, vec![target.function.clone()]);
    assert_eq!(
        functions_in(&out, FinalState::Live).len(),
        w.expected_live.len() - 1,
        "only the triaged track leaves the live bucket"
    );
    assert!(out.db.funnel().balances());
    assert!(obs.registry.counter(names::SUPPRESS_STORE) > 0);
    // The advanced store is what the CLI saves back: the entry's line has
    // followed the accumulated pad drift past its original position.
    assert!(
        out.suppress.entries[0].line > target.line,
        "entry line {} must drift below the original {}",
        out.suppress.entries[0].line,
        target.line
    );
}

#[test]
fn lifedb_bytes_are_identical_across_jobs() {
    let w = generate_life(&LifeProfile {
        seed: 19,
        ..LifeProfile::default()
    });
    let mut texts: Vec<String> = Vec::new();
    let mut csvs: Vec<String> = Vec::new();
    for jobs in [1usize, 4] {
        let sconf = SentinelConfig {
            jobs,
            ..SentinelConfig::default()
        };
        let (out, _) = replay(&w, &sconf, SuppressStore::default());
        texts.push(out.db.to_text());
        csvs.push(tracks_to_csv(&out.db));
    }
    assert_eq!(
        texts[0], texts[1],
        "findings database identical for --jobs 1 vs --jobs 4"
    );
    assert_eq!(csvs[0], csvs[1], "track table identical across jobs");
}

#[test]
fn journaled_resume_reproduces_the_db() {
    let w = generate_life(&LifeProfile {
        seed: 23,
        ..LifeProfile::default()
    });
    let journal = temp_journal("resume");
    let cleanup = |journal: &PathBuf| {
        for c in 0..w.commits.len() {
            let mut p = journal.clone().into_os_string();
            p.push(format!(".c{c}"));
            let _ = std::fs::remove_file(PathBuf::from(p));
        }
    };
    cleanup(&journal);

    let mut sconf = SentinelConfig {
        jobs: 2,
        journal: Some(journal.clone()),
        fsync_every: 4,
        ..SentinelConfig::default()
    };
    let (fresh, _) = replay(&w, &sconf, SuppressStore::default());

    sconf.resume = true;
    let (resumed, obs) = replay(&w, &sconf, SuppressStore::default());
    assert_eq!(
        resumed.db.to_text(),
        fresh.db.to_text(),
        "a journal replay must reproduce the findings database byte for byte"
    );
    let snap = obs.registry.snapshot();
    assert!(
        snap.counter("sentinel.units_replayed") > 0,
        "resume must replay journaled units rather than rescanning"
    );
    assert_eq!(snap.counter("sentinel.units_scanned"), 0);
    cleanup(&journal);
}
