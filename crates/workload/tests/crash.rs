//! The kill-at-random-point crash sweep.
//!
//! For each [`CrashPoint`] in the sweep grid, this harness re-executes the
//! test binary as a child process that scans a seeded app with a journal and
//! **aborts mid-append** at the planned record — optionally after writing a
//! torn partial line. The parent then resumes from the survivor journal and
//! asserts the crash was invisible:
//!
//! 1. the resumed scan's findings equal an uninterrupted run's — no lost,
//!    no duplicated findings;
//! 2. every unit is accounted for exactly once
//!    (`units_replayed + units_scanned == units`, `duplicate_records == 0`);
//! 3. a torn tail record is detected by its checksum and skipped
//!    (`torn_record_skips`), never parsed as data.

use std::{
    path::PathBuf,
    process::{Command, Stdio},
};

use valuecheck::{
    detect::{
        detect_program_hardened,
        DetectConfig,
        DetectOutcome, //
    },
    harden::HardenConfig,
    sentinel::{
        arm_crash_plan,
        detect_program_sentinel,
        CrashPlan,
        SentinelConfig, //
    },
};
use vc_ir::Program;
use vc_obs::ObsSession;
use vc_workload::{
    faults::{CrashPoint, CRASH_ENV},
    generate,
    AppProfile, //
};

/// Second env var carrying the journal path to the child.
const JOURNAL_ENV: &str = "VC_CRASH_JOURNAL";

/// Seeds the sweep kills at every grid offset.
const SEEDS: [u64; 2] = [3, 11];

fn build_program(seed: u64) -> Program {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
    profile.seed = seed.wrapping_mul(104_729) ^ 0xC7A5;
    profile.name = format!("crash{seed}");
    let app = generate(&profile);
    let (prog, errors) = Program::build_lenient(&app.source_refs(), &app.defines);
    assert!(errors.is_empty(), "clean app must build cleanly");
    prog
}

fn sconf(journal: PathBuf, resume: bool) -> SentinelConfig {
    SentinelConfig {
        jobs: 2,
        journal: Some(journal),
        resume,
        fsync_every: 1,
        ..SentinelConfig::default()
    }
}

fn outcome_digest(out: &DetectOutcome) -> (Vec<String>, Vec<String>) {
    (
        out.candidates.iter().map(|c| format!("{c:?}")).collect(),
        out.failures.iter().map(|f| format!("{f:?}")).collect(),
    )
}

/// Child mode: not a real test. When [`CRASH_ENV`] is set, scan the seeded
/// app with an armed [`CrashPlan`] — the journal append aborts the process
/// at the planned record, exactly as an OOM kill would.
#[test]
fn crash_child_entry() {
    let Ok(spec) = std::env::var(CRASH_ENV) else {
        return; // normal test runs are a no-op
    };
    let point = CrashPoint::from_env(&spec).expect("malformed crash spec");
    let journal = PathBuf::from(std::env::var(JOURNAL_ENV).expect("missing journal path"));
    let prog = build_program(point.seed);
    arm_crash_plan(CrashPlan {
        abort_at_record: point.abort_at_record,
        torn_bytes: point.torn_bytes,
    });
    detect_program_sentinel(
        &prog,
        DetectConfig::default(),
        HardenConfig::default(),
        &sconf(journal, false),
    );
    // Reaching here means the planned abort never fired — the sweep grid is
    // out of range for this program. Fail loudly so the parent notices.
    panic!("crash plan {point:?} did not fire");
}

#[test]
fn kill_at_random_point_sweep_loses_and_duplicates_nothing() {
    let exe = std::env::current_exe().expect("current test binary");
    for seed in SEEDS {
        let prog = build_program(seed);
        let units = prog.funcs.len();
        assert!(units >= 4, "sweep needs a few units to kill between");
        let reference = outcome_digest(&detect_program_hardened(
            &prog,
            DetectConfig::default(),
            HardenConfig::default(),
        ));

        for point in CrashPoint::sweep(&[seed], units) {
            let journal = std::env::temp_dir().join(format!(
                "vc-crash-{}-{}-{}-{}.journal",
                std::process::id(),
                point.seed,
                point.abort_at_record,
                point.torn_bytes
            ));
            let _ = std::fs::remove_file(&journal);

            // The child kills itself mid-append.
            let status = Command::new(&exe)
                .args(["--exact", "crash_child_entry", "--test-threads", "1"])
                .env(CRASH_ENV, point.to_env())
                .env(JOURNAL_ENV, &journal)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .status()
                .expect("spawn crash child");
            assert!(
                !status.success(),
                "{point:?}: the child must die mid-scan, not exit cleanly"
            );
            assert!(
                journal.exists(),
                "{point:?}: the journal must survive the crash"
            );

            // The survivor journal resumes into a byte-identical outcome.
            let obs = ObsSession::new();
            let resumed = {
                let _g = obs.install();
                detect_program_sentinel(
                    &prog,
                    DetectConfig::default(),
                    HardenConfig::default(),
                    &sconf(journal.clone(), true),
                )
            };
            assert_eq!(
                outcome_digest(&resumed),
                reference,
                "{point:?}: resume must lose and duplicate nothing"
            );
            let snap = obs.registry.snapshot();
            assert!(!snap.render_text().is_empty());
            let replayed = snap.counter("sentinel.units_replayed");
            let scanned = snap.counter("sentinel.units_scanned");
            assert_eq!(
                replayed + scanned,
                units as u64,
                "{point:?}: every unit exactly once"
            );
            assert_eq!(
                replayed, point.abort_at_record as u64,
                "{point:?}: exactly the durably journaled records replay"
            );
            assert_eq!(snap.counter("sentinel.duplicate_records"), 0, "{point:?}");
            assert_eq!(snap.counter("sentinel.journal_discarded"), 0, "{point:?}");
            let torn = snap.counter("sentinel.torn_record_skips");
            if point.torn_bytes > 0 {
                assert_eq!(torn, 1, "{point:?}: the torn tail is detected and skipped");
            } else {
                assert_eq!(torn, 0, "{point:?}: clean crash leaves no torn record");
            }
            let _ = std::fs::remove_file(&journal);
        }
    }
}
