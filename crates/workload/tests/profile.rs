//! The profiling contract over generated workloads.
//!
//! This test binary installs the counting global allocator, so it exercises
//! the full `vc-prof` surface the `vcheck` binary ships with: folded-stack
//! profiles whose logical view is identical for any worker count and whose
//! self-times conserve root wall time, `mem.*` allocation metrics with
//! high-water marks, spans flushed (and tagged) from inside a panicking
//! isolation boundary, and the names-registry exhaustiveness sweep.

use std::collections::HashSet;

use valuecheck::{
    delta::delta_scan,
    harden::{
        arm_failpoint,
        FailStage, //
    },
    history::history_scan,
    pipeline::{
        run_sentinel,
        run_with_obs,
        Options, //
    },
    sentinel::SentinelConfig,
    suppress::SuppressStore,
};
use vc_ir::Program;
use vc_obs::{
    profile::PANICKED_SUFFIX,
    FoldedProfile,
    ObsSession,
    Weight, //
};
use vc_workload::{
    faults::PANIC_NEEDLE,
    generate,
    generate_delta,
    generate_life,
    inject_faults,
    AppProfile,
    DeltaProfile,
    LifeProfile, //
};

/// The same wrapper `vcheck` installs: every allocation in this test binary
/// is counted and scope-attributed.
#[global_allocator]
static ALLOC: vc_obs::CountingAlloc = vc_obs::CountingAlloc;

fn build_app(seed: u64) -> (Program, vc_vcs::Repository) {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
    profile.seed = seed.wrapping_mul(9973) ^ 0x9F0F;
    profile.name = format!("profiled{seed}");
    let app = generate(&profile);
    let (prog, errors) = Program::build_lenient(&app.source_refs(), &app.defines);
    assert!(errors.is_empty(), "clean app must build cleanly");
    (prog, app.repo)
}

#[test]
fn logical_folded_stacks_are_byte_identical_across_jobs() {
    let (prog, repo) = build_app(1);
    let mut renders: Vec<String> = Vec::new();
    for jobs in [1usize, 4] {
        let sconf = SentinelConfig {
            jobs,
            ..SentinelConfig::default()
        };
        let obs = ObsSession::new();
        let analysis = run_sentinel(&prog, &repo, &Options::paper(), &sconf, obs.clone());
        assert!(!analysis.report.rows.is_empty());
        let folded = FoldedProfile::logical(&obs.tracer.records());
        // The canonical view splices out `sentinel.worker.N` frames and
        // grafts the per-unit spans under the detect stage, so the stack
        // set and sample counts cannot depend on scheduling. Wall-clock
        // weights do vary run to run; sample weights must not.
        renders.push(folded.render(Weight::Samples));
    }
    assert_eq!(
        renders[0], renders[1],
        "logical folded stacks must be byte-identical for --jobs 1 vs --jobs 4"
    );
    assert!(
        renders[0].contains("pipeline.run;stage.detect;unit."),
        "unit frames graft under the detect stage:\n{}",
        renders[0]
    );
}

#[test]
fn per_root_self_times_sum_to_root_duration_within_tolerance() {
    let (prog, repo) = build_app(2);
    let sconf = SentinelConfig {
        jobs: 4,
        ..SentinelConfig::default()
    };
    let obs = ObsSession::new();
    run_sentinel(&prog, &repo, &Options::paper(), &sconf, obs.clone());
    let folded = FoldedProfile::from_records(&obs.tracer.records());
    assert!(!folded.roots().is_empty());
    for root in folded.roots() {
        // Acceptance bound: within 5 % of the root span's wall time (plus
        // 1 µs of truncation slack per boundary for micro-roots).
        let tolerance = (root.dur_us / 20).max(2);
        let drift = root.dur_us.abs_diff(root.self_sum_us);
        assert!(
            drift <= tolerance,
            "root {}: self-time sum {}us vs duration {}us (drift {}us > {}us)",
            root.name,
            root.self_sum_us,
            root.dur_us,
            drift,
            tolerance
        );
    }
}

#[test]
fn mem_high_water_metrics_are_recorded() {
    let (prog, repo) = build_app(3);
    let obs = ObsSession::new();
    run_with_obs(&prog, &repo, &Options::paper(), obs.clone());
    let snap = obs.registry.snapshot();

    // The global allocator is installed in this binary, so every pipeline
    // stage flushed its attribution window.
    assert!(
        snap.gauges
            .iter()
            .any(|(k, v)| k == vc_obs::names::MEM_HIGH_WATER_BYTES && *v > 0.0),
        "global high-water gauge missing: {:?}",
        snap.gauges
    );
    for scope in ["detect", "authorship", "prune", "rank"] {
        let name = vc_obs::names::mem(scope, "live_peak_bytes");
        assert!(
            snap.histograms
                .iter()
                .any(|(k, h)| *k == name && h.count > 0),
            "per-stage high-water histogram {name} missing"
        );
    }
    // And the exported JSON (what `--metrics-json` writes) carries them.
    let json = snap.to_json().to_string();
    assert!(json.contains(vc_obs::names::MEM_HIGH_WATER_BYTES));
    assert!(json.contains("mem.detect.alloc_bytes"));

    // The trace gained live-byte counter tracks for the Chrome exporter.
    assert!(!obs.tracer.counters().is_empty());
}

#[test]
fn every_emitted_metric_name_is_registered() {
    // A full parallel scan...
    let (prog, repo) = build_app(4);
    let sconf = SentinelConfig {
        jobs: 2,
        ..SentinelConfig::default()
    };
    let obs = ObsSession::new();
    run_sentinel(&prog, &repo, &Options::paper(), &sconf, obs.clone());
    // ...plus a differential scan, so `delta.*` names are exercised too.
    let w = generate_delta(&DeltaProfile::default());
    delta_scan(
        &w.repo,
        w.from,
        w.to,
        &[],
        &Options::paper(),
        &SentinelConfig::default(),
        &HashSet::new(),
        obs.clone(),
    )
    .expect("delta workload must build");
    // ...plus a lifecycle replay, covering `life.*` and `suppress.*`.
    let life = generate_life(&LifeProfile::default());
    history_scan(
        &life.repo,
        &[],
        &Options::paper(),
        &SentinelConfig::default(),
        SuppressStore::default(),
        obs.clone(),
    )
    .expect("life workload must build at every commit");

    let snap = obs.registry.snapshot();
    let names: Vec<&String> = snap
        .counters
        .iter()
        .map(|(k, _)| k)
        .chain(snap.gauges.iter().map(|(k, _)| k))
        .chain(snap.histograms.iter().map(|(k, _)| k))
        .collect();
    assert!(
        names.len() > 20,
        "the sweep must see a representative metric surface, got {names:?}"
    );
    let strays: Vec<&&String> = names
        .iter()
        .filter(|n| !vc_obs::names::is_known(n))
        .collect();
    assert!(
        strays.is_empty(),
        "metric names emitted outside vc_obs::names: {strays:?}"
    );
}

#[test]
fn panicking_unit_flushes_its_span_with_a_panicked_tag() {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
    profile.seed = 0xBAD5EED;
    profile.name = "profilefault".to_string();
    let mut app = generate(&profile);
    inject_faults(&mut app, 11);
    let _fp = arm_failpoint(FailStage::Detect, PANIC_NEEDLE);

    let (prog, _errors) = Program::build_lenient(&app.source_refs(), &app.defines);
    let sconf = SentinelConfig {
        jobs: 2,
        ..SentinelConfig::default()
    };
    let obs = ObsSession::new();
    run_sentinel(&prog, &app.repo, &Options::paper(), &sconf, obs.clone());

    // The failpoint panicked inside the isolation boundary on every attempt;
    // each attempt's open unit span must still have been flushed, tagged.
    let records = obs.tracer.records();
    let panicked: Vec<_> = records.iter().filter(|r| r.panicked).collect();
    assert!(
        !panicked.is_empty(),
        "no span was flushed during the injected panic"
    );
    assert!(
        panicked
            .iter()
            .all(|r| r.name.starts_with("unit.") && r.name.contains(PANIC_NEEDLE)),
        "only the poisoned unit's spans may carry the panicked flag: {panicked:?}"
    );
    assert_eq!(
        panicked.len(),
        sconf.retry as usize,
        "one flushed span per retry attempt"
    );
    // Healthy spans stay untagged.
    assert!(records
        .iter()
        .any(|r| r.name.starts_with("unit.") && !r.panicked));

    // And the folded profile renders them as partial frames with the
    // flamegraph annotation suffix.
    let folded = FoldedProfile::from_records(&records);
    assert!(
        folded.stacks().keys().any(|k| k.ends_with(PANICKED_SUFFIX)),
        "panicked frames must appear in the folded profile"
    );
}
