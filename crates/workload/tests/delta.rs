//! Differential-scan contract over generated two-revision workloads.
//!
//! The generator plants a known new / fixed / persisting split
//! ([`vc_workload::delta`]); these tests assert that `delta_scan` recovers
//! exactly that split, that pure line drift never misclassifies a finding,
//! and that the delta report is byte-identical across worker counts and
//! across a journaled resume.

use std::collections::HashSet;
use std::path::PathBuf;

use valuecheck::{
    delta::{
        delta_scan,
        DeltaStatus, //
    },
    pipeline::Options,
    sentinel::SentinelConfig,
};
use vc_obs::ObsSession;
use vc_workload::{
    generate_delta,
    DeltaProfile, //
};

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vc-delta-{}-{}.journal", std::process::id(), name))
}

/// Runs a delta scan over the workload and returns (outcome, obs).
fn scan(
    w: &vc_workload::DeltaWorkload,
    sconf: &SentinelConfig,
) -> (valuecheck::delta::DeltaOutcome, ObsSession) {
    let obs = ObsSession::new();
    let outcome = delta_scan(
        &w.repo,
        w.from,
        w.to,
        &[],
        &Options::paper(),
        sconf,
        &HashSet::new(),
        obs.clone(),
    )
    .expect("generated workload must build at both revisions");
    (outcome, obs)
}

/// The sorted function names the report classified under `status`.
fn functions_with(report: &valuecheck::delta::DeltaReport, status: DeltaStatus) -> Vec<String> {
    let mut v: Vec<String> = report
        .rows
        .iter()
        .filter(|r| r.status == status)
        .map(|r| r.finding.function.clone())
        .collect();
    v.sort();
    v
}

#[test]
fn recovers_the_planted_new_fixed_persisting_split() {
    let w = generate_delta(&DeltaProfile {
        seed: 11,
        persisting: 5,
        fixed: 3,
        new: 2,
        files: 3,
        drift_lines: 7,
    });
    let (outcome, obs) = scan(&w, &SentinelConfig::default());
    let report = &outcome.report;

    assert_eq!(
        functions_with(report, DeltaStatus::Persisting),
        w.expected_persisting,
        "persisting functions must match the plant"
    );
    assert_eq!(functions_with(report, DeltaStatus::Fixed), w.expected_fixed);
    assert_eq!(functions_with(report, DeltaStatus::New), w.expected_new);
    assert!(report.has_new(), "planted new bugs must gate");

    // Pure line drift is absorbed by the fingerprint alone — the line-map
    // fallback never has to fire, and every persisting row records both
    // its old and its drifted new line.
    let snap = obs.registry.snapshot();
    assert_eq!(snap.counter(vc_obs::names::DELTA_LINE_MAPPED), 0);
    assert_eq!(
        snap.counter(vc_obs::names::DELTA_PERSISTING),
        w.expected_persisting.len() as u64
    );
    assert_eq!(
        snap.counter(vc_obs::names::DELTA_NEW),
        w.expected_new.len() as u64
    );
    assert_eq!(
        snap.counter(vc_obs::names::DELTA_FIXED),
        w.expected_fixed.len() as u64
    );
    for row in report
        .rows
        .iter()
        .filter(|r| r.status == DeltaStatus::Persisting)
    {
        let (old, new) = (row.old_line.unwrap(), row.new_line.unwrap());
        assert!(
            new > old,
            "{}: padding above must shift the definition down ({old} -> {new})",
            row.finding.function
        );
    }
}

#[test]
fn pure_line_shift_keeps_every_finding_persisting() {
    let w = generate_delta(&DeltaProfile {
        seed: 23,
        persisting: 6,
        fixed: 0,
        new: 0,
        files: 2,
        drift_lines: 9,
    });
    let (outcome, _obs) = scan(&w, &SentinelConfig::default());
    let report = &outcome.report;
    assert!(!report.rows.is_empty());
    assert!(
        report
            .rows
            .iter()
            .all(|r| r.status == DeltaStatus::Persisting),
        "a shift-only change must classify everything as persisting"
    );
    assert!(!report.has_new(), "shift-only delta must exit 0");
}

#[test]
fn self_delta_is_all_persisting() {
    let w = generate_delta(&DeltaProfile::default());
    let obs = ObsSession::new();
    let outcome = delta_scan(
        &w.repo,
        w.to,
        w.to,
        &[],
        &Options::paper(),
        &SentinelConfig::default(),
        &HashSet::new(),
        obs.clone(),
    )
    .expect("self delta must scan");
    assert_eq!(outcome.report.count(DeltaStatus::New), 0);
    assert_eq!(outcome.report.count(DeltaStatus::Fixed), 0);
    assert!(!outcome.report.rows.is_empty(), "the revision has findings");
}

#[test]
fn report_bytes_are_identical_across_jobs() {
    let w = generate_delta(&DeltaProfile {
        seed: 31,
        ..DeltaProfile::default()
    });
    let mut bytes: Vec<Vec<u8>> = Vec::new();
    let mut stats: Vec<String> = Vec::new();
    for jobs in [1usize, 4] {
        let sconf = SentinelConfig {
            jobs,
            ..SentinelConfig::default()
        };
        let (outcome, obs) = scan(&w, &sconf);
        bytes.push(outcome.report.canonical_bytes());
        stats.push(obs.registry.snapshot().render_text());
    }
    assert_eq!(
        bytes[0], bytes[1],
        "delta report identical for --jobs 1 vs --jobs 4"
    );
    assert_eq!(
        stats[0], stats[1],
        "--stats identical for --jobs 1 vs --jobs 4"
    );
}

#[test]
fn journaled_resume_reproduces_the_report() {
    let w = generate_delta(&DeltaProfile {
        seed: 41,
        ..DeltaProfile::default()
    });
    let journal = temp_journal("resume");
    for side in ["from", "to"] {
        let mut p = journal.clone().into_os_string();
        p.push(".");
        p.push(side);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }

    let mut sconf = SentinelConfig {
        jobs: 2,
        journal: Some(journal.clone()),
        fsync_every: 4,
        ..SentinelConfig::default()
    };
    let (fresh, _) = scan(&w, &sconf);

    sconf.resume = true;
    let (resumed, obs) = scan(&w, &sconf);
    assert_eq!(
        resumed.report.canonical_bytes(),
        fresh.report.canonical_bytes(),
        "a journal replay must reproduce the delta report byte for byte"
    );
    let snap = obs.registry.snapshot();
    assert!(
        snap.counter("sentinel.units_replayed") > 0,
        "resume must replay journaled units rather than rescanning"
    );
    assert_eq!(snap.counter("sentinel.units_scanned"), 0);

    for side in ["from", "to"] {
        let mut p = journal.clone().into_os_string();
        p.push(".");
        p.push(side);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
}

#[test]
fn baseline_acknowledges_new_findings_without_touching_the_rest() {
    // A team triages the new findings of one delta run and writes them to a
    // baseline; the rerun then stops gating on them. Findings that match the
    // old side stay persisting — the baseline only intercepts would-be-new
    // rows.
    let w = generate_delta(&DeltaProfile {
        seed: 53,
        ..DeltaProfile::default()
    });
    let (plain, _) = scan(&w, &SentinelConfig::default());
    let baseline: HashSet<u64> = plain
        .report
        .rows
        .iter()
        .filter(|r| r.status == DeltaStatus::New)
        .map(|r| r.finding.fingerprint.0)
        .collect();
    assert_eq!(baseline.len(), w.expected_new.len());

    let obs = ObsSession::new();
    let outcome = delta_scan(
        &w.repo,
        w.from,
        w.to,
        &[],
        &Options::paper(),
        &SentinelConfig::default(),
        &baseline,
        obs.clone(),
    )
    .expect("baseline delta must scan");
    assert_eq!(outcome.report.count(DeltaStatus::New), 0);
    assert_eq!(
        functions_with(&outcome.report, DeltaStatus::Suppressed),
        w.expected_new,
        "every triaged finding reappears as suppressed"
    );
    assert_eq!(
        functions_with(&outcome.report, DeltaStatus::Persisting),
        w.expected_persisting,
        "the baseline must not touch persisting findings"
    );
    assert!(
        !outcome.report.has_new(),
        "suppressed findings do not gate CI"
    );
    assert_eq!(
        obs.registry
            .snapshot()
            .counter(vc_obs::names::DELTA_SUPPRESSED),
        w.expected_new.len() as u64
    );
}
