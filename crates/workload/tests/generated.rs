//! End-to-end checks that generated workloads reproduce their profile's
//! published statistics when analysed by the full ValueCheck pipeline.
//!
//! These run on scaled profiles for speed; the full-scale equivalents are
//! exercised by the `tables` harness and the root integration tests.

use std::collections::HashSet;

use valuecheck::{
    pipeline::{
        run,
        Options, //
    },
    prune::PruneReason,
};
use vc_ir::Program;
use vc_workload::{
    generate,
    AppProfile,
    PlantKind, //
};

fn check_app(profile: &AppProfile) {
    let app = generate(profile);
    let prog = Program::build(&app.source_refs(), &app.defines)
        .unwrap_or_else(|e| panic!("{}: generated sources fail to build: {e}", profile.name));
    vc_ir::validate::validate_program(&prog)
        .unwrap_or_else(|e| panic!("{}: invalid IR: {e}", profile.name));

    let analysis = run(&prog, &app.repo, &Options::paper());

    assert_eq!(
        analysis.cross_scope_candidates,
        profile.original_candidates(),
        "{}: cross-scope candidate count",
        profile.name
    );
    assert_eq!(
        analysis.pruned_by(PruneReason::ConfigDependency),
        profile.prune_config,
        "{}: config-dependency prunes",
        profile.name
    );
    assert_eq!(
        analysis.pruned_by(PruneReason::Cursor),
        profile.prune_cursor,
        "{}: cursor prunes",
        profile.name
    );
    assert_eq!(
        analysis.pruned_by(PruneReason::UnusedHint),
        profile.prune_hints,
        "{}: unused-hint prunes",
        profile.name
    );
    assert_eq!(
        analysis.pruned_by(PruneReason::PeerDefinition),
        profile.prune_peer,
        "{}: peer-definition prunes",
        profile.name
    );
    assert_eq!(
        analysis.detected(),
        profile.detected(),
        "{}: detected findings",
        profile.name
    );

    // Every detected finding must be planted (no accidental candidates),
    // and the confirmed count must match the profile.
    let mut confirmed = 0;
    for row in &analysis.report.rows {
        match app.truth.lookup(&row.function).map(|p| &p.kind) {
            Some(PlantKind::ConfirmedBug { .. }) => confirmed += 1,
            Some(PlantKind::FalsePositive { .. }) => {}
            other => panic!(
                "{}: unexpected detection {} ({:?})",
                profile.name, row.function, other
            ),
        }
    }
    assert_eq!(
        confirmed, profile.confirmed_bugs,
        "{}: confirmed",
        profile.name
    );

    // No planted detection target was lost.
    let detected: HashSet<&str> = analysis
        .report
        .rows
        .iter()
        .map(|r| r.function.as_str())
        .collect();
    for p in &app.truth.planted {
        if matches!(
            p.kind,
            PlantKind::ConfirmedBug { .. } | PlantKind::FalsePositive { .. }
        ) {
            assert!(
                detected.contains(p.func.as_str()),
                "{}: planted detection {} was lost",
                profile.name,
                p.func
            );
        }
    }
}

#[test]
fn linux_profile_reproduces_its_statistics() {
    check_app(&AppProfile::linux().scaled(0.2));
}

#[test]
fn nfs_profile_reproduces_its_statistics() {
    check_app(&AppProfile::nfs_ganesha().scaled(0.2));
}

#[test]
fn mysql_profile_reproduces_its_statistics() {
    check_app(&AppProfile::mysql().scaled(0.08));
}

#[test]
fn openssl_profile_reproduces_its_statistics() {
    check_app(&AppProfile::openssl().scaled(0.2));
}

#[test]
fn generation_is_deterministic() {
    let p = AppProfile::linux().scaled(0.1);
    let a = generate(&p);
    let b = generate(&p);
    assert_eq!(a.sources, b.sources);
    assert_eq!(a.loc(), b.loc());
    assert_eq!(a.truth.planted.len(), b.truth.planted.len());
}

#[test]
fn snapshots_exist_and_differ_from_head() {
    let app = generate(&AppProfile::openssl().scaled(0.15));
    let s2019 = app.snapshot_2019.expect("2019 snapshot");
    let s2021 = app.snapshot_2021.expect("2021 snapshot");
    assert!(s2019 < s2021);
    let old = app.repo.snapshot_at(s2019);
    assert!(!old.is_empty());
    // Prelim functions carry their unused definitions in the 2019 tree and
    // lose them by the head.
    let prelim = app
        .truth
        .planted
        .iter()
        .find(|p| matches!(p.kind, PlantKind::PrelimRemoved { .. }))
        .expect("profile plants prelim items");
    let old_content = old.get(&prelim.file).expect("prelim file in 2019 tree");
    let head_content = app
        .repo
        .file_content(&prelim.file)
        .expect("prelim file at head");
    assert_ne!(old_content.trim_end(), head_content.trim_end());
}

#[test]
fn prelim_bugs_detectable_in_2019_snapshot() {
    // Analyse the 2019 checkout: planted cross-scope prelim bugs must be
    // found, except those hidden inside peer-ignorable groups (§8.3.2).
    let app = generate(&AppProfile::mysql().scaled(0.08));
    let s2019 = app.snapshot_2019.expect("2019 snapshot");
    let old_repo = app.repo.checkout(s2019);
    let tree = app.repo.snapshot_at(s2019);
    let mut sources: Vec<(&str, &str)> =
        tree.iter().map(|(p, c)| (p.as_str(), c.as_str())).collect();
    sources.sort_by_key(|(p, _)| p.to_string());
    let prog = Program::build(&sources, &app.defines).unwrap();
    let analysis = run(&prog, &old_repo, &Options::paper());
    let detected: HashSet<&str> = analysis
        .report
        .rows
        .iter()
        .map(|r| r.function.as_str())
        .collect();

    let mut cross_total = 0;
    let mut found = 0;
    let mut peer_missed_found = 0;
    for p in &app.truth.planted {
        if let PlantKind::PrelimRemoved {
            cross_scope: true,
            peer_missed,
            ..
        } = p.kind
        {
            cross_total += 1;
            if detected.contains(p.func.as_str()) {
                found += 1;
                if peer_missed {
                    peer_missed_found += 1;
                }
            }
        }
    }
    assert!(cross_total > 0);
    assert_eq!(
        peer_missed_found, 0,
        "peer-pruned prelim bugs must be missed"
    );
    let missed = cross_total - found;
    // Exactly the peer-planted items are missed.
    assert_eq!(missed, app.profile.prelim_peer_missed, "recall misses");
}
