//! The parse-recovery harness: seeded corruption sweeps over generated
//! applications (`tools/ci.sh recovery`).
//!
//! For every seed this test generates an application, plants the committed
//! fault file ([`vc_workload::corrupt`]), scans the pristine sources once,
//! and then applies every [`CorruptKind`] to a clone. The recovery contract:
//!
//! 1. zero panics escape the front end or the pipeline;
//! 2. every planted bug outside the corrupted region is still reported,
//!    with the **same fingerprint** as the pristine scan — one mangled
//!    function costs only itself;
//! 3. the corrupted function costs exactly one function-granular parse
//!    failure record (and its finding either vanishes or survives at low
//!    confidence, per its scripted [`BugFate`]);
//! 4. the [`RecoverStats`] funnel matches the corruption kind exactly, and
//!    the detection funnel still balances;
//! 5. report output stays byte-identical across `--jobs` and a journaled
//!    `--resume` on corrupted input.

use std::{
    collections::BTreeSet,
    panic::{
        catch_unwind,
        AssertUnwindSafe, //
    },
    path::PathBuf,
};

use valuecheck::{
    delta::fingerprint_ranked,
    harden::{
        FailStage,
        FailureRecord, //
    },
    pipeline::{
        run_sentinel,
        run_with_obs,
        Analysis,
        Options, //
    },
    prune::PruneReason,
    sentinel::SentinelConfig,
};
use vc_ir::{
    program::{
        BuildError,
        RecoverStats, //
    },
    Program,
};
use vc_obs::ObsSession;
use vc_workload::{
    corrupt::{
        corrupt,
        plant_fault_file,
        BugFate,
        CorruptKind, //
    },
    generate,
    AppProfile,
    GeneratedApp, //
};

/// Number of deterministic seeds the suite sweeps (`tools/ci.sh recovery`).
const SEEDS: u64 = 32;

struct Scan {
    prog: Program,
    analysis: Analysis,
    errors: Vec<BuildError>,
    stats: RecoverStats,
    obs: ObsSession,
}

/// Builds with recovery and runs the paper pipeline, all under
/// `catch_unwind`: a corrupted front end must never panic.
fn scan(app: &GeneratedApp, label: &str) -> Scan {
    let obs = ObsSession::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (prog, errors, stats) = Program::build_recovering(&app.source_refs(), &app.defines);
        let analysis = run_with_obs(&prog, &app.repo, &Options::paper(), obs.clone());
        (prog, analysis, errors, stats)
    }));
    let (prog, analysis, errors, stats) =
        outcome.unwrap_or_else(|_| panic!("{label}: a panic escaped the recovering front end"));
    Scan {
        prog,
        analysis,
        errors,
        stats,
        obs,
    }
}

/// Fingerprints of every reported finding, keyed for set comparison.
fn fingerprint_set(s: &Scan) -> BTreeSet<u64> {
    fingerprint_ranked(&s.prog, &s.analysis.ranked)
        .iter()
        .map(|f| f.fingerprint.0)
        .collect()
}

/// Fingerprints of the findings in `function`.
fn function_fingerprints(s: &Scan, function: &str) -> BTreeSet<u64> {
    fingerprint_ranked(&s.prog, &s.analysis.ranked)
        .iter()
        .filter(|f| f.function == function)
        .map(|f| f.fingerprint.0)
        .collect()
}

/// Folds build errors into failure records exactly as `vcheck` does.
fn folded_failures(s: &Scan) -> Vec<FailureRecord> {
    s.errors
        .iter()
        .map(|e| FailureRecord {
            stage: FailStage::Parse,
            file: e.file().to_string(),
            function: e.function().map(str::to_string),
            message: e.to_string(),
        })
        .collect()
}

fn assert_funnel_balances(s: &Scan, label: &str) {
    let reg = &s.obs.registry;
    let raw = reg.counter("funnel.raw");
    let cross = reg.counter("funnel.cross_scope");
    let failed = reg.counter("funnel.failed");
    let pruned: u64 = PruneReason::ALL
        .iter()
        .map(|r| reg.counter(&format!("funnel.pruned.{}", r.label())))
        .sum();
    let reported = reg.counter("funnel.reported");
    assert!(
        raw >= cross + failed,
        "{label}: funnel shrinks monotonically (raw={raw} cross={cross} failed={failed})"
    );
    assert_eq!(
        raw,
        (raw - failed - cross) + failed + pruned + reported,
        "{label}: funnel must balance"
    );
    assert_eq!(
        cross,
        pruned + reported,
        "{label}: every cross-scope candidate is pruned or reported"
    );
}

/// The exact [`RecoverStats`] shape each corruption kind must produce on an
/// otherwise-clean application.
fn assert_stats_match(kind: CorruptKind, stats: &RecoverStats, label: &str) {
    assert_eq!(stats.files_dropped, 0, "{label}: no whole file is lost");
    assert_eq!(
        stats.parse_errors, 1,
        "{label}: one corrupted region, one parse diagnostic"
    );
    let (dropped, poisoned) = if kind.salvageable() { (0, 1) } else { (1, 0) };
    assert_eq!(
        stats.functions_dropped, dropped,
        "{label}: item-level corruption costs exactly the victim"
    );
    assert_eq!(
        stats.poisoned_stmts, poisoned,
        "{label}: body-level corruption poisons exactly one region"
    );
    match kind {
        CorruptKind::GarbageBytes | CorruptKind::UntermString => assert!(
            stats.lex_errors >= 1,
            "{label}: unlexable bytes must surface as lex errors"
        ),
        _ => assert_eq!(stats.lex_errors, 0, "{label}: corruption lexes cleanly"),
    }
}

fn run_one_seed(seed: u64) {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.02);
    profile.seed = seed.wrapping_mul(104_729) ^ 0xC0DE;
    profile.name = format!("recov{seed}");
    let mut base = generate(&profile);
    let ff = plant_fault_file(&mut base, seed);

    // --- pristine truth ----------------------------------------------------
    let pristine = scan(&base, &format!("seed {seed} pristine"));
    assert!(
        pristine.errors.is_empty(),
        "seed {seed}: the pristine app must build cleanly"
    );
    assert_eq!(
        pristine.stats,
        RecoverStats::default(),
        "seed {seed}: recovery is a no-op on clean sources"
    );
    let pristine_fps = fingerprint_set(&pristine);
    for f in &ff.functions {
        assert_eq!(
            function_fingerprints(&pristine, f).len(),
            1,
            "seed {seed}: each fault-file function plants exactly one finding"
        );
    }

    // --- one corruption kind at a time ------------------------------------
    for kind in CorruptKind::ALL {
        let label = format!("seed {seed} {kind:?}");
        let mut app = base.clone();
        let cor = corrupt(&mut app, &ff, kind);
        let s = scan(&app, &label);

        // Exactly one failure, function-granular, pinned to the victim.
        let failures = folded_failures(&s);
        assert_eq!(
            failures.len(),
            1,
            "{label}: one corrupted function, one failure record ({failures:?})"
        );
        assert_eq!(
            failures[0].file, cor.file,
            "{label}: failure names the file"
        );
        assert_eq!(
            failures[0].function.as_deref(),
            Some(cor.victim.as_str()),
            "{label}: failure is attributed to the corrupted function"
        );

        // Every planted bug meets its scripted fate.
        let mut expected = pristine_fps.clone();
        for (func, fate) in &cor.fates {
            let in_pristine = function_fingerprints(&pristine, func);
            let in_corrupted = function_fingerprints(&s, func);
            match fate {
                BugFate::Kept | BugFate::KeptLowConfidence => {
                    assert_eq!(
                        in_corrupted, in_pristine,
                        "{label}: {func} keeps its finding, fingerprint unchanged"
                    );
                }
                BugFate::Lost => {
                    assert!(
                        in_corrupted.is_empty(),
                        "{label}: {func} was dropped, its finding must vanish"
                    );
                    for fp in in_pristine {
                        expected.remove(&fp);
                    }
                }
            }
            if *fate == BugFate::KeptLowConfidence {
                let row = s
                    .analysis
                    .report
                    .rows
                    .iter()
                    .find(|r| r.function == *func)
                    .unwrap_or_else(|| panic!("{label}: {func} must still be reported"));
                assert!(
                    row.low_confidence,
                    "{label}: a finding out of a poisoned parse is low confidence"
                );
            }
        }
        assert_eq!(
            fingerprint_set(&s),
            expected,
            "{label}: everything outside the corrupted region is untouched"
        );

        assert_stats_match(kind, &s.stats, &label);
        assert_funnel_balances(&s, &label);
    }
}

#[test]
fn thirty_two_seeds_survive_source_corruption() {
    for seed in 0..SEEDS {
        run_one_seed(seed);
    }
}

#[test]
fn corrupted_scans_are_byte_identical_across_jobs_and_resume() {
    for seed in [0u64, 8, 16, 24] {
        let mut profile = AppProfile::nfs_ganesha().scaled(0.02);
        profile.seed = seed.wrapping_mul(104_729) ^ 0xC0DE;
        profile.name = format!("recov{seed}");
        let mut base = generate(&profile);
        let ff = plant_fault_file(&mut base, seed);

        for kind in CorruptKind::ALL {
            let label = format!("seed {seed} {kind:?}");
            let mut app = base.clone();
            corrupt(&mut app, &ff, kind);
            let (prog, _errors, _stats) =
                Program::build_recovering(&app.source_refs(), &app.defines);
            let seq = run_with_obs(&prog, &app.repo, &Options::paper(), ObsSession::new());

            let sconf = SentinelConfig {
                jobs: 4,
                ..SentinelConfig::default()
            };
            let par = run_sentinel(
                &prog,
                &app.repo,
                &Options::paper(),
                &sconf,
                ObsSession::new(),
            );
            assert_eq!(
                par.report.canonical_bytes(),
                seq.report.canonical_bytes(),
                "{label}: corrupted input must not break --jobs determinism"
            );

            // One journaled run plus a resume replaying it completely.
            let journal = temp_journal(&format!("{seed}-{kind:?}"));
            let _ = std::fs::remove_file(&journal);
            let mut jconf = SentinelConfig {
                jobs: 2,
                journal: Some(journal.clone()),
                ..SentinelConfig::default()
            };
            let fresh = run_sentinel(
                &prog,
                &app.repo,
                &Options::paper(),
                &jconf,
                ObsSession::new(),
            );
            jconf.resume = true;
            let resumed = run_sentinel(
                &prog,
                &app.repo,
                &Options::paper(),
                &jconf,
                ObsSession::new(),
            );
            assert_eq!(
                fresh.report.canonical_bytes(),
                seq.report.canonical_bytes(),
                "{label}: journaled run matches the sequential report"
            );
            assert_eq!(
                resumed.report.canonical_bytes(),
                seq.report.canonical_bytes(),
                "{label}: resumed run matches the sequential report"
            );
            let _ = std::fs::remove_file(&journal);
        }
    }
}

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vc-recovery-{}-{}.journal",
        std::process::id(),
        name
    ))
}
