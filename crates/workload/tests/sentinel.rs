//! Determinism and resumability contract of the sentinel executor.
//!
//! The supervised parallel scan promises that worker count, journal
//! presence, and resume points are **invisible in the output**: the report
//! bytes (CSV + JSON) and the `--stats` counter snapshot are identical for
//! `--jobs 1/2/8`, and replaying a journal — once or twice — reproduces the
//! uninterrupted run byte for byte.

use std::path::PathBuf;

use valuecheck::{
    harden::{
        arm_failpoint,
        FailStage, //
    },
    pipeline::{
        run_sentinel,
        run_with_obs,
        Options, //
    },
    prune::PruneReason,
    sentinel::SentinelConfig,
};
use vc_ir::Program;
use vc_obs::ObsSession;
use vc_workload::{
    faults::PANIC_NEEDLE,
    generate,
    inject_faults,
    AppProfile, //
};

fn build_app(seed: u64) -> (Program, vc_vcs::Repository) {
    let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
    profile.seed = seed.wrapping_mul(6271) ^ 0x5E17;
    profile.name = format!("sentinel{seed}");
    let app = generate(&profile);
    let (prog, errors) = Program::build_lenient(&app.source_refs(), &app.defines);
    assert!(errors.is_empty(), "clean app must build cleanly");
    (prog, app.repo)
}

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vc-sentinel-{}-{}.journal",
        std::process::id(),
        name
    ))
}

#[test]
fn report_and_stats_are_byte_identical_across_jobs() {
    let (prog, repo) = build_app(1);
    let seq = run_with_obs(&prog, &repo, &Options::paper(), ObsSession::new());
    assert!(
        !seq.report.rows.is_empty(),
        "the generated app must produce findings for the comparison to mean anything"
    );

    let mut stats: Vec<String> = Vec::new();
    for jobs in [1usize, 2, 8] {
        let sconf = SentinelConfig {
            jobs,
            ..SentinelConfig::default()
        };
        let obs = ObsSession::new();
        let par = run_sentinel(&prog, &repo, &Options::paper(), &sconf, obs.clone());
        assert_eq!(
            par.report.canonical_bytes(),
            seq.report.canonical_bytes(),
            "jobs={jobs}: report must match the sequential pipeline byte for byte"
        );
        stats.push(obs.registry.snapshot().render_text());
    }
    assert_eq!(stats[0], stats[1], "--stats identical for jobs 1 vs 2");
    assert_eq!(stats[0], stats[2], "--stats identical for jobs 1 vs 8");
}

#[test]
fn journal_replay_is_idempotent() {
    let (prog, repo) = build_app(2);
    let journal = temp_journal("idempotent");
    let _ = std::fs::remove_file(&journal);

    let mut sconf = SentinelConfig {
        jobs: 2,
        journal: Some(journal.clone()),
        fsync_every: 4,
        ..SentinelConfig::default()
    };
    let fresh = run_sentinel(&prog, &repo, &Options::paper(), &sconf, ObsSession::new());

    // Resume once, then resume again: each replays the complete journal,
    // rescans nothing, and reproduces the report exactly.
    sconf.resume = true;
    for round in 1..=2 {
        let obs = ObsSession::new();
        let resumed = run_sentinel(&prog, &repo, &Options::paper(), &sconf, obs.clone());
        assert_eq!(
            resumed.report.canonical_bytes(),
            fresh.report.canonical_bytes(),
            "resume round {round} must reproduce the fresh report"
        );
        let snap = obs.registry.snapshot();
        assert_eq!(
            snap.counter("sentinel.units_replayed"),
            prog.funcs.len() as u64,
            "resume round {round} replays every unit"
        );
        assert_eq!(snap.counter("sentinel.units_scanned"), 0);
        assert_eq!(snap.counter("sentinel.duplicate_records"), 0);
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn fault_sweep_holds_under_parallel_workers() {
    // The faults.rs 32-seed sweep runs the sequential pipeline; this is the
    // same contract under `--jobs 4`, exercising the shared failpoint plan:
    // the detect-stage failpoint armed on this thread must fire inside
    // whichever worker thread picks up the poisoned unit.
    for seed in 0..4u64 {
        let mut profile = AppProfile::nfs_ganesha().scaled(0.05);
        profile.seed = seed.wrapping_mul(7919) ^ 0xFA17;
        profile.name = format!("pfaulted{seed}");
        let mut app = generate(&profile);
        let faults = inject_faults(&mut app, seed);
        let _fp = arm_failpoint(FailStage::Detect, PANIC_NEEDLE);

        let (prog, _errors) = Program::build_lenient(&app.source_refs(), &app.defines);
        let sconf = SentinelConfig {
            jobs: 4,
            ..SentinelConfig::default()
        };
        let obs = ObsSession::new();
        let analysis = run_sentinel(&prog, &app.repo, &Options::paper(), &sconf, obs.clone());

        // The poisoned unit retried its full attempt budget, then failed
        // permanent — and is counted once, not per attempt.
        let reg = &obs.registry;
        assert_eq!(
            reg.counter("harden.poisoned.detect"),
            1,
            "seed {seed}: one permanently poisoned function"
        );
        assert_eq!(reg.counter("sentinel.failed_permanent"), 1);
        assert_eq!(
            reg.counter("sentinel.retries"),
            u64::from(sconf.retry - 1),
            "seed {seed}: the poisoned unit burns its whole attempt budget"
        );
        let detect_failures = analysis
            .report
            .failures
            .iter()
            .filter(|f| {
                f.stage == FailStage::Detect
                    && f.function
                        .as_deref()
                        .is_some_and(|f| f.contains(PANIC_NEEDLE))
            })
            .count();
        assert_eq!(
            detect_failures, 1,
            "seed {seed}: exactly one detect failure"
        );

        // Funnel still balances with a poisoned unit under parallel workers.
        let raw = reg.counter("funnel.raw");
        let cross = reg.counter("funnel.cross_scope");
        let failed = reg.counter("funnel.failed");
        let pruned: u64 = PruneReason::ALL
            .iter()
            .map(|r| reg.counter(&format!("funnel.pruned.{}", r.label())))
            .sum();
        let reported = reg.counter("funnel.reported");
        assert_eq!(raw - failed - cross + failed + cross, raw);
        assert_eq!(cross, pruned + reported, "seed {seed}: funnel balance");

        // Planted dead-store faults still surface as report rows.
        for fault in faults
            .iter()
            .filter(|f| f.evidence == vc_workload::Evidence::ReportRow)
        {
            let hits = analysis
                .report
                .rows
                .iter()
                .filter(|r| r.function == fault.function)
                .count();
            assert_eq!(
                hits, 1,
                "seed {seed}: fault {:?} must leave one report row",
                fault.kind
            );
        }
    }
}
