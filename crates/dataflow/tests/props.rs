//! Property tests for the dataflow analyses, cross-checked against each
//! other and against independent oracles on arbitrary generated programs.
//!
//! Each property runs as a deterministic loop over cases drawn from a
//! seeded [`SplitMix64`]; a failing case prints its seed so it can be
//! replayed exactly.

use vc_dataflow::{
    dead_stores,
    liveness::{
        live_variables,
        transfer_inst, //
    },
    reaching::def_use_chains,
    varset::VarKeySet,
};
use vc_ir::{
    cfg::Cfg,
    ir::{
        LocalId,
        VarKey, //
    },
    testing::source_from_seed,
    Program,
};
use vc_obs::SplitMix64;

fn build(seed: u64) -> Program {
    let src = source_from_seed(seed);
    Program::build(&[("g.c", src.as_str())], &[]).expect("generated source builds")
}

/// Liveness is at a fixed point: re-applying every block's transfer to
/// its exit fact reproduces its entry fact.
#[test]
fn liveness_is_a_fixed_point() {
    let mut rng = SplitMix64::new(0xF1);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let prog = build(seed);
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            let facts = live_variables(f, &cfg);
            for (bid, bb) in f.iter_blocks() {
                let mut fact = facts.exit(bid).clone();
                for inst in bb.insts.iter().rev() {
                    transfer_inst(inst, &mut fact);
                }
                assert_eq!(&fact, facts.entry(bid), "seed {seed}");
            }
        }
    }
}

/// Exit facts are the join of successor entry facts.
#[test]
fn exit_facts_join_successors() {
    let mut rng = SplitMix64::new(0xF2);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let prog = build(seed);
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            let facts = live_variables(f, &cfg);
            for (bid, _) in f.iter_blocks() {
                let mut joined = VarKeySet::new();
                for &s in cfg.succs(bid) {
                    joined.union_with(facts.entry(s));
                }
                assert_eq!(&joined, facts.exit(bid), "seed {seed} block {bid:?}");
            }
        }
    }
}

/// Soundness cross-check: a dead store never has a def-use edge, and a
/// store with a def-use edge is never reported dead.
#[test]
fn dead_stores_have_no_uses() {
    let mut rng = SplitMix64::new(0xF3);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let prog = build(seed);
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            let dead = dead_stores(f, &cfg);
            let edges = def_use_chains(f, &cfg);
            for d in &dead {
                assert!(
                    !edges
                        .iter()
                        .any(|e| e.def.block == d.block && e.def.inst_idx as usize == d.inst_idx),
                    "seed {seed}: dead store {}:{} has a use in {}",
                    d.block.0,
                    d.inst_idx,
                    f.name
                );
            }
        }
    }
}

/// Every store to a tracked local either reaches a use or is reported
/// dead (completeness against the reaching-definitions oracle), for
/// non-escaping locals.
#[test]
fn non_dead_stores_reach_a_use() {
    let mut rng = SplitMix64::new(0xF4);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let prog = build(seed);
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            let dead = dead_stores(f, &cfg);
            let edges = def_use_chains(f, &cfg);
            let escaped = vc_dataflow::escaped_locals(f);
            for (bid, bb) in f.iter_blocks() {
                for (idx, inst) in bb.insts.iter().enumerate() {
                    let vc_ir::ir::Inst::Store { place, .. } = inst else {
                        continue;
                    };
                    let Some(key) = place.var_key() else { continue };
                    if escaped.contains(&key.local()) {
                        continue;
                    }
                    let has_use = edges
                        .iter()
                        .any(|e| e.def.block == bid && e.def.inst_idx as usize == idx);
                    let is_dead = dead.iter().any(|d| d.block == bid && d.inst_idx == idx);
                    // Whole-variable stores can be kept live by field reads
                    // through covering; allow has_use via covering too: the
                    // def-use oracle already includes covering edges.
                    assert!(
                        has_use || is_dead,
                        "seed {seed}: store {}:{} to {key:?} neither used nor dead in {}",
                        bid.0,
                        idx,
                        f.name
                    );
                }
            }
        }
    }
}

/// VarKeySet covering semantics: inserting a whole variable covers all
/// its fields, and killing the whole variable removes them.
#[test]
fn varset_covering_laws() {
    let mut rng = SplitMix64::new(0xF5);
    for case in 0..200 {
        let l = LocalId(rng.range_usize(0, 8) as u32);
        let fields: Vec<u32> = (0..rng.range_usize(0, 6))
            .map(|_| rng.range_usize(0, 6) as u32)
            .collect();
        let mut s = VarKeySet::new();
        for &fi in &fields {
            s.insert(VarKey::Field(l, fi));
        }
        for &fi in &fields {
            assert!(
                s.contains_covering(VarKey::Field(l, fi)),
                "case {case} fields {fields:?}"
            );
        }
        if !fields.is_empty() {
            assert!(
                s.contains_covering(VarKey::Local(l)),
                "case {case} fields {fields:?}"
            );
        }
        s.remove_killed(VarKey::Local(l));
        for &fi in &fields {
            assert!(
                !s.contains_covering(VarKey::Field(l, fi)),
                "case {case} fields {fields:?}"
            );
        }
        assert!(s.is_empty(), "case {case} fields {fields:?}");
    }
}
