//! Dense bitset-backed liveness for the summary builder.
//!
//! [`crate::liveness::Liveness`] keeps its facts in a `BTreeSet<VarKey>`,
//! which is the right shape for the reference implementation and the
//! baselines but pays a tree allocation and pointer chase per inserted key,
//! per join, per equality check — the dominant cost of a whole-program
//! summary pass. This module solves the *same* lattice over a per-function
//! [`KeyIndex`]: every variable key that appears in the function gets one
//! bit, facts are a handful of `u64` words, join is bitwise-or, equality is
//! a word compare, and the field-covering rules become range scans over a
//! local's contiguous bit block.
//!
//! The two implementations are semantically identical (the key universe of
//! a function covers every key its transfer functions can ever mention), so
//! the solver visits blocks in the same order, converges after the same
//! iterations, and yields the same dead-store list. `summary.rs` keeps the
//! `BTreeSet` oracle in its tests to pin that equivalence.

use vc_ir::{
    ir::Inst,
    Function,
    LocalId,
    VarKey, //
};

use crate::framework::{
    DataflowAnalysis,
    Direction, //
};

/// Sentinel for "this local has no whole-variable key".
const NONE: u32 = u32::MAX;

/// Bit positions of one local's keys inside a [`KeyIndex`].
#[derive(Clone, Copy, Debug)]
struct LocalKeys {
    /// Bit of the `VarKey::Local` key, or [`NONE`].
    whole: u32,
    /// Half-open bit range of the local's `VarKey::Field` keys, sorted by
    /// field number (empty when the local has no field keys).
    fields: (u32, u32),
}

impl Default for LocalKeys {
    fn default() -> Self {
        Self {
            whole: NONE,
            fields: (0, 0),
        }
    }
}

/// The dense key universe of one function: every [`VarKey`] mentioned by a
/// load, store, or address-of, assigned one bit, grouped so a local's whole
/// key and field keys are contiguous.
#[derive(Clone, Debug, Default)]
pub struct KeyIndex {
    /// Keys in bit order: sorted by (local, whole-before-fields, field no).
    keys: Vec<VarKey>,
    /// Per-local bit positions; indexed by `LocalId`.
    locals: Vec<LocalKeys>,
}

fn key_order(k: &VarKey) -> (u32, u32, u32) {
    match k {
        VarKey::Local(l) => (l.0, 0, 0),
        VarKey::Field(l, n) => (l.0, 1, *n),
    }
}

impl KeyIndex {
    /// Builds the index for `f` in one instruction scan.
    pub fn new(f: &Function) -> Self {
        let mut keys: Vec<VarKey> = Vec::new();
        for bb in &f.blocks {
            for inst in &bb.insts {
                match inst {
                    Inst::Load { place, .. }
                    | Inst::Store { place, .. }
                    | Inst::AddrOf { place, .. } => {
                        if let Some(key) = place.var_key() {
                            keys.push(key);
                        }
                    }
                    Inst::Bin { .. } | Inst::Un { .. } | Inst::Call { .. } => {}
                }
            }
        }
        Self::from_keys(keys, f.locals.len())
    }

    /// Builds the index from an already-collected (possibly duplicated) key
    /// list — for callers whose own instruction scan gathered the keys.
    pub fn from_keys(mut keys: Vec<VarKey>, num_locals: usize) -> Self {
        keys.sort_unstable_by_key(key_order);
        keys.dedup();

        let mut locals = vec![LocalKeys::default(); num_locals];
        for (bit, key) in keys.iter().enumerate() {
            let bit = bit as u32;
            let entry = &mut locals[key.local().0 as usize];
            match key {
                VarKey::Local(_) => entry.whole = bit,
                VarKey::Field(..) => {
                    if entry.fields.0 == entry.fields.1 {
                        entry.fields = (bit, bit + 1);
                    } else {
                        entry.fields.1 = bit + 1;
                    }
                }
            }
        }
        Self { keys, locals }
    }

    /// Number of distinct keys (bits).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the function mentions no keys at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of overflow words a fact needs beyond the inline head word.
    fn rest_words(&self) -> usize {
        self.keys.len().div_ceil(64).saturating_sub(1)
    }

    /// The bit of `key`, if the key is in the universe.
    fn bit_of(&self, key: VarKey) -> Option<u32> {
        let lk = self.locals.get(key.local().0 as usize)?;
        match key {
            VarKey::Local(_) => (lk.whole != NONE).then_some(lk.whole),
            VarKey::Field(_, n) => {
                let (lo, hi) = (lk.fields.0 as usize, lk.fields.1 as usize);
                let slot = self.keys[lo..hi]
                    .binary_search_by_key(&n, |k| match k {
                        VarKey::Field(_, fno) => *fno,
                        VarKey::Local(_) => unreachable!("field range holds only field keys"),
                    })
                    .ok()?;
                Some((lo + slot) as u32)
            }
        }
    }

    /// An empty fact sized for this universe.
    pub fn empty_fact(&self) -> BitFact {
        BitFact {
            head: 0,
            rest: vec![0; self.rest_words()],
        }
    }
}

/// A set of live keys over a [`KeyIndex`] universe.
///
/// The first 64 bits live inline, so the dominant function shape — at most
/// 64 distinct keys — clones, joins, and compares without touching the
/// heap (`rest` stays the empty, allocation-free vector).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitFact {
    head: u64,
    rest: Vec<u64>,
}

impl BitFact {
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w == 0 {
            &mut self.head
        } else {
            &mut self.rest[w - 1]
        }
    }

    fn word(&self, w: usize) -> u64 {
        if w == 0 {
            self.head
        } else {
            self.rest[w - 1]
        }
    }

    fn set(&mut self, bit: u32) {
        *self.word_mut(bit as usize / 64) |= 1 << (bit % 64);
    }

    fn clear(&mut self, bit: u32) {
        *self.word_mut(bit as usize / 64) &= !(1 << (bit % 64));
    }

    fn get(&self, bit: u32) -> bool {
        self.word(bit as usize / 64) & (1 << (bit % 64)) != 0
    }

    fn any_in(&self, lo: u32, hi: u32) -> bool {
        (lo..hi).any(|b| self.get(b))
    }

    /// Bitwise-or of `other` into `self`.
    pub fn union_with(&mut self, other: &BitFact) {
        self.head |= other.head;
        for (w, o) in self.rest.iter_mut().zip(&other.rest) {
            *w |= o;
        }
    }

    /// Marks `key` live (a use). Keys outside the universe are ignored —
    /// they cannot occur for keys read off this function's instructions.
    pub fn insert(&mut self, idx: &KeyIndex, key: VarKey) {
        if let Some(bit) = idx.bit_of(key) {
            self.set(bit);
        }
    }

    /// Removes everything a store to `key` overwrites: the key itself and,
    /// for whole-variable stores, every field of the local.
    pub fn remove_killed(&mut self, idx: &KeyIndex, key: VarKey) {
        if let Some(bit) = idx.bit_of(key) {
            self.clear(bit);
        }
        if let VarKey::Local(l) = key {
            if let Some(lk) = idx.locals.get(l.0 as usize) {
                for b in lk.fields.0..lk.fields.1 {
                    self.clear(b);
                }
            }
        }
    }

    /// Covering membership, mirroring
    /// [`crate::varset::VarKeySet::contains_covering`]: a live field keeps
    /// the aggregate live, a live whole variable keeps each field live.
    pub fn contains_covering(&self, idx: &KeyIndex, key: VarKey) -> bool {
        let Some(lk) = idx.locals.get(key.local().0 as usize) else {
            return false;
        };
        match key {
            VarKey::Local(_) => {
                (lk.whole != NONE && self.get(lk.whole)) || self.any_in(lk.fields.0, lk.fields.1)
            }
            VarKey::Field(..) => {
                (lk.whole != NONE && self.get(lk.whole))
                    || idx.bit_of(key).is_some_and(|b| self.get(b))
            }
        }
    }

    /// The live keys, for cross-checks against the reference set.
    pub fn iter<'a>(&'a self, idx: &'a KeyIndex) -> impl Iterator<Item = VarKey> + 'a {
        idx.keys
            .iter()
            .enumerate()
            .filter(|(b, _)| self.get(*b as u32))
            .map(|(_, k)| *k)
    }
}

/// Applies the backward transfer of one instruction, mirroring
/// [`crate::liveness::transfer_inst`].
pub fn transfer_inst_dense(idx: &KeyIndex, inst: &Inst, live: &mut BitFact) {
    match inst {
        Inst::Load { place, .. } | Inst::AddrOf { place, .. } => {
            if let Some(key) = place.var_key() {
                live.insert(idx, key);
            }
        }
        Inst::Store { place, .. } => {
            if let Some(key) = place.var_key() {
                live.remove_killed(idx, key);
            }
        }
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Call { .. } => {}
    }
}

/// The dense live-variable analysis instance.
pub struct DenseLiveness<'a> {
    /// The function's key universe.
    pub idx: &'a KeyIndex,
}

impl DataflowAnalysis for DenseLiveness<'_> {
    type Fact = BitFact;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary_fact(&self, _f: &Function) -> BitFact {
        self.idx.empty_fact()
    }

    fn init_fact(&self, _f: &Function) -> BitFact {
        self.idx.empty_fact()
    }

    fn join(&self, into: &mut BitFact, from: &BitFact) {
        into.union_with(from);
    }

    fn transfer_block(&self, f: &Function, bb: vc_ir::ir::BlockId, fact: &mut BitFact) {
        for inst in f.block(bb).insts.iter().rev() {
            transfer_inst_dense(self.idx, inst, fact);
        }
    }
}

/// The locals whose address is taken anywhere in `f`, as a dense bool map
/// (the summary builder's allocation-free counterpart of
/// [`crate::liveness::escaped_locals`]).
pub fn escaped_flags(f: &Function) -> Vec<bool> {
    let mut out = vec![false; f.locals.len()];
    for bb in &f.blocks {
        for inst in &bb.insts {
            if let Inst::AddrOf { place, .. } = inst {
                if let Some(key) = place.var_key() {
                    out[key.local().0 as usize] = true;
                }
            }
        }
    }
    out
}

/// Whether `l` is flagged escaped (bounds-safe).
pub fn is_escaped(flags: &[bool], l: LocalId) -> bool {
    flags.get(l.0 as usize).copied().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        framework::solve,
        liveness::{live_variables, Liveness},
    };
    use std::collections::BTreeSet;
    use vc_ir::{cfg::Cfg, Program};

    const FIXTURES: &[&str] = &[
        "void f(void) { int x = 1; x = 2; use(x); }",
        "void f(int c) { int x = 1; if (c) { x = 2; } use(x); }",
        "void f(int c) { int x = 1; if (c) { x = 2; } else { x = 3; } use(x); }",
        "int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }",
        "int f(int n) { int acc = 0; for (int i = 0; i < n; i = i + 1) { acc = acc + i; } \
         return acc; }",
        "struct p { int a; int b; };\n\
         void f(void) { struct p s; s.a = 1; s.b = 2; s.a = 3; use(s.a); use(s.b); }",
        "struct p { int a; int b; };\n\
         void f(int c) { struct p s; s.a = 1; if (c) { consume(s); } s.b = 2; use(s.b); }",
        "void f(void) { int x = 1; register_ptr(&x); x = 2; }",
        "int g(void);\nvoid f(void) { g(); }",
        "void f(int c) {\n int x = 1;\n switch (c) {\n case 1: x = 10; break;\n \
         case 2: x = 20; break;\n default: x = 30;\n }\n use(x);\n }",
    ];

    fn func(src: &str) -> Function {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        prog.funcs.into_iter().next().unwrap()
    }

    #[test]
    fn dense_facts_match_the_reference_set_implementation() {
        for src in FIXTURES {
            let f = func(src);
            let cfg = Cfg::new(&f);
            let reference = live_variables(&f, &cfg);
            let idx = KeyIndex::new(&f);
            let dense = solve(&f, &cfg, &DenseLiveness { idx: &idx });
            assert_eq!(
                reference.iterations, dense.iterations,
                "{src}: different convergence"
            );
            for b in 0..f.blocks.len() {
                let b = vc_ir::ir::BlockId(b as u32);
                let want: BTreeSet<VarKey> = reference.entry(b).iter().collect();
                let got: BTreeSet<VarKey> = dense.entry(b).iter(&idx).collect();
                assert_eq!(got, want, "{src}: entry fact of {b:?}");
                let want: BTreeSet<VarKey> = reference.exit(b).iter().collect();
                let got: BTreeSet<VarKey> = dense.exit(b).iter(&idx).collect();
                assert_eq!(got, want, "{src}: exit fact of {b:?}");
            }
        }
    }

    #[test]
    fn covering_queries_match_the_reference_set_implementation() {
        use crate::varset::VarKeySet;
        for src in FIXTURES {
            let f = func(src);
            let idx = KeyIndex::new(&f);
            // Replay the whole-function backward walk on both
            // representations, checking every covering query both ways.
            let mut dense = idx.empty_fact();
            let mut reference = VarKeySet::new();
            for bb in f.blocks.iter().rev() {
                for inst in bb.insts.iter().rev() {
                    crate::liveness::transfer_inst(inst, &mut reference);
                    transfer_inst_dense(&idx, inst, &mut dense);
                    for key in idx.keys.iter().copied() {
                        assert_eq!(
                            dense.contains_covering(&idx, key),
                            reference.contains_covering(key),
                            "{src}: covering({key:?}) diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn escaped_flags_match_escaped_locals() {
        for src in FIXTURES {
            let f = func(src);
            let flags = escaped_flags(&f);
            let reference = crate::liveness::escaped_locals(&f);
            for l in 0..f.locals.len() {
                let l = LocalId(l as u32);
                assert_eq!(
                    is_escaped(&flags, l),
                    reference.contains(&l),
                    "{src}: {l:?}"
                );
            }
        }
    }

    #[test]
    fn key_index_groups_a_locals_keys_contiguously() {
        let f = func(
            "struct p { int a; int b; };\n\
             void f(void) { struct p s; int x; s.a = 1; s.b = 2; x = 3; use(x); use(s.a); \
             use(s.b); }",
        );
        let idx = KeyIndex::new(&f);
        assert!(!idx.is_empty());
        // Every key resolves to its own bit, and distinct keys to distinct
        // bits.
        let bits: BTreeSet<u32> = idx.keys.iter().map(|k| idx.bit_of(*k).unwrap()).collect();
        assert_eq!(bits.len(), idx.len());
    }

    #[test]
    fn out_of_universe_queries_are_inert() {
        let f = func("void f(void) { int x = 1; use(x); }");
        let idx = KeyIndex::new(&f);
        let mut fact = idx.empty_fact();
        let ghost = VarKey::Field(LocalId(999), 7);
        fact.insert(&idx, ghost);
        fact.remove_killed(&idx, ghost);
        assert!(!fact.contains_covering(&idx, ghost));
    }

    #[test]
    fn budgeted_dense_solve_flags_exhaustion_like_the_reference() {
        use crate::framework::solve_budgeted;
        use vc_obs::Budget;
        let f = func(
            "void f(int n) { while (n) { for (int i = 0; i < n; i = i + 1) { g(i); } n = n - 1; \
             } }",
        );
        let cfg = Cfg::new(&f);
        let idx = KeyIndex::new(&f);
        let dense = solve_budgeted(&f, &cfg, &DenseLiveness { idx: &idx }, Budget::steps(1));
        let reference = solve_budgeted(&f, &cfg, &Liveness, Budget::steps(1));
        assert!(dense.exhausted && reference.exhausted);
        assert_eq!(dense.iterations, reference.iterations);
    }
}
