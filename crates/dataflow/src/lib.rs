//! # vc-dataflow — worklist dataflow analyses over the MiniC IR
//!
//! The dataflow substrate of the ValueCheck reproduction:
//!
//! - a generic worklist [`framework`] (forward/backward, fixed-point),
//! - field-sensitive [`liveness`] with a flow-sensitive dead-store finder —
//!   the raw unused-definition detector of the paper's §4.1,
//! - [`dense`], the bitset-backed liveness the summary builder runs (same
//!   lattice as [`liveness`], facts as `u64` words over a per-function key
//!   index),
//! - forward [`reaching`] definitions and def-use chains,
//! - [`dominators`] as an independent control-flow oracle,
//! - [`varset::VarKeySet`], the variable-key set with field-covering
//!   semantics shared by every client.

pub mod dense;
pub mod dominators;
pub mod framework;
pub mod liveness;
pub mod reaching;
pub mod summary;
pub mod varset;

pub use framework::{
    solve,
    solve_budgeted,
    BlockFacts,
    DataflowAnalysis,
    Direction, //
};
pub use liveness::{
    dead_stores,
    escaped_locals,
    live_variables,
    DeadStore, //
};
pub use summary::{
    build_summary,
    CallTarget,
    FnSummary,
    SelfDelta,
    SigId,
    SigInterner,
    Summaries,
    SummaryDead, //
};
pub use varset::VarKeySet;
