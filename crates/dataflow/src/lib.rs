//! # vc-dataflow — worklist dataflow analyses over the MiniC IR
//!
//! The dataflow substrate of the ValueCheck reproduction:
//!
//! - a generic worklist [`framework`] (forward/backward, fixed-point),
//! - field-sensitive [`liveness`] with a flow-sensitive dead-store finder —
//!   the raw unused-definition detector of the paper's §4.1,
//! - forward [`reaching`] definitions and def-use chains,
//! - [`dominators`] as an independent control-flow oracle,
//! - [`varset::VarKeySet`], the variable-key set with field-covering
//!   semantics shared by every client.

pub mod dominators;
pub mod framework;
pub mod liveness;
pub mod reaching;
pub mod varset;

pub use framework::{
    solve,
    solve_budgeted,
    BlockFacts,
    DataflowAnalysis,
    Direction, //
};
pub use liveness::{
    dead_stores,
    escaped_locals,
    live_variables,
    DeadStore, //
};
pub use varset::VarKeySet;
