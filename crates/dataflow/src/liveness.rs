//! Flow-sensitive, field-sensitive live-variable analysis.
//!
//! This is the analysis of §2.1/§4.1 of the paper: a backward dataflow over
//! the CFG where a `load` generates a use, a `store` kills them, and loops are
//! iterated to a fixed point. The per-instruction transfer function is public
//! so the ValueCheck detector (which threads an extra define-set through the
//! same traversal) and the baseline tools stay consistent with it.

use std::collections::BTreeSet;

use vc_ir::{
    cfg::Cfg,
    ir::{
        BlockId,
        Inst,
        LocalId,
        StoreInfo, //
    },
    span::Span,
    Function,
    VarKey, //
};

use crate::{
    framework::{
        solve,
        BlockFacts,
        DataflowAnalysis,
        Direction, //
    },
    varset::VarKeySet,
};

/// The live-variable analysis instance.
pub struct Liveness;

/// Applies the backward transfer function of one instruction to a live set.
///
/// - `load place` adds the place's variable key (a use);
/// - `store place` removes everything the store overwrites (a kill);
/// - `&place` (address-of) conservatively adds the key: once the address
///   escapes, memory may be read through it at any later point.
pub fn transfer_inst(inst: &Inst, live: &mut VarKeySet) {
    match inst {
        Inst::Load { place, .. } => {
            if let Some(key) = place.var_key() {
                live.insert(key);
            }
        }
        Inst::Store { place, .. } => {
            if let Some(key) = place.var_key() {
                live.remove_killed(key);
            }
        }
        Inst::AddrOf { place, .. } => {
            if let Some(key) = place.var_key() {
                live.insert(key);
            }
        }
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Call { .. } => {}
    }
}

impl DataflowAnalysis for Liveness {
    type Fact = VarKeySet;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary_fact(&self, _f: &Function) -> VarKeySet {
        // Nothing local is live after the function returns.
        VarKeySet::new()
    }

    fn init_fact(&self, _f: &Function) -> VarKeySet {
        VarKeySet::new()
    }

    fn join(&self, into: &mut VarKeySet, from: &VarKeySet) {
        into.union_with(from);
    }

    fn transfer_block(&self, f: &Function, bb: BlockId, fact: &mut VarKeySet) {
        for inst in f.block(bb).insts.iter().rev() {
            transfer_inst(inst, fact);
        }
    }
}

/// Solves liveness for `f`, returning live sets at block boundaries.
pub fn live_variables(f: &Function, cfg: &Cfg) -> BlockFacts<VarKeySet> {
    solve(f, cfg, &Liveness)
}

/// The locals whose address is taken anywhere in `f` (directly via `&x`, or
/// by array decay). Stores to them can be observed through pointers, so they
/// are excluded from unused-definition candidates (paper §4.1, "Pointer and
/// Alias").
pub fn escaped_locals(f: &Function) -> BTreeSet<LocalId> {
    let mut out = BTreeSet::new();
    for bb in &f.blocks {
        for inst in &bb.insts {
            if let Inst::AddrOf { place, .. } = inst {
                if let Some(key) = place.var_key() {
                    out.insert(key.local());
                }
            }
        }
    }
    out
}

/// A store whose value is never subsequently read: an unused definition.
#[derive(Clone, Debug)]
pub struct DeadStore {
    /// Containing block.
    pub block: BlockId,
    /// Index of the store within the block.
    pub inst_idx: usize,
    /// The variable (or field) defined.
    pub key: VarKey,
    /// Span of the store.
    pub span: Span,
    /// Provenance of the stored value.
    pub info: StoreInfo,
}

/// Finds all dead stores to non-escaping locals, flow-sensitively.
///
/// This is the raw unused-definition detector shared by ValueCheck (which
/// filters it by authorship) and by the dead-store baseline. Stores carrying
/// an `unused` attribute are **not** filtered here; pruning is a separate,
/// later phase (Fig. 2).
pub fn dead_stores(f: &Function, cfg: &Cfg) -> Vec<DeadStore> {
    let facts = live_variables(f, cfg);
    let escaped = escaped_locals(f);
    let mut out = Vec::new();
    for (bid, bb) in f.iter_blocks() {
        let mut live = facts.exit(bid).clone();
        // Walk the block backward, checking each store against the live set
        // *below* it before applying its kill.
        for (idx, inst) in bb.insts.iter().enumerate().rev() {
            if let Inst::Store {
                place, span, info, ..
            } = inst
            {
                if let Some(key) = place.var_key() {
                    if !escaped.contains(&key.local()) && !live.contains_covering(key) {
                        out.push(DeadStore {
                            block: bid,
                            inst_idx: idx,
                            key,
                            span: *span,
                            info: info.clone(),
                        });
                    }
                }
            }
            transfer_inst(inst, &mut live);
        }
    }
    // Report in source order for stable output.
    out.sort_by_key(|d| (d.span.start, d.block, d.inst_idx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::Program;

    fn func(src: &str) -> Function {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        prog.funcs.into_iter().next().unwrap()
    }

    fn dead_names(src: &str) -> Vec<String> {
        let f = func(src);
        let cfg = Cfg::new(&f);
        dead_stores(&f, &cfg)
            .into_iter()
            .map(|d| f.var_key_name(d.key))
            .collect()
    }

    #[test]
    fn simple_overwrite_is_dead() {
        let names = dead_names("void f(void) { int x = 1; x = 2; use(x); }");
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn used_definition_is_live() {
        let names = dead_names("void f(void) { int x = 1; use(x); x = 2; use(x); }");
        assert!(names.is_empty());
    }

    #[test]
    fn last_store_before_return_is_dead() {
        let names = dead_names("int f(void) { int x = 1; int y = x; x = 3; return y; }");
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn flow_sensitivity_beats_ast_walking() {
        // `ret` IS referenced (in the condition), but the first definition is
        // still dead: the Figure 8 pattern that defeats AST-based tools.
        let names = dead_names(
            "void f(void) { int ret = get_permset(); ret = calc_mask(); if (ret) { handle(); } }",
        );
        assert_eq!(names, vec!["ret"]);
    }

    #[test]
    fn loop_carried_use_keeps_definition_live() {
        // `acc` defined before the loop is read by the first iteration.
        let names =
            dead_names("int f(int n) { int acc = 0; for (int i = 0; i < n; i = i + 1) { acc = acc + i; } return acc; }");
        assert!(names.is_empty(), "unexpected dead stores: {names:?}");
    }

    #[test]
    fn figure_1a_loop_overwrite_is_dead() {
        // Fig. 1a: first `attr` definition overwritten by the for-init on
        // every path.
        let names = dead_names(
            "int conv(int *bm) {\n\
               int attr = next_attr(bm);\n\
               for (attr = next_attr(bm); attr != -1; attr = next_attr(bm)) { use(attr); }\n\
               return 0;\n\
             }",
        );
        assert_eq!(names, vec!["attr"]);
    }

    #[test]
    fn figure_1b_overwritten_param_is_dead() {
        // Fig. 1b: `bufsz` overwritten before any read.
        let names = dead_names(
            "int logfile_mod_open(char *path, size_t bufsz) {\n\
               bufsz = 1400;\n\
               if (bufsz > 0) { setup(path, bufsz); }\n\
               return 0;\n\
             }",
        );
        assert_eq!(names, vec!["bufsz"]);
    }

    #[test]
    fn partial_overwrite_on_one_path_is_live() {
        // Overwritten on the then-path only; the else-path reads it.
        let names = dead_names("void f(int c) { int x = 1; if (c) { x = 2; } use(x); }");
        assert!(names.is_empty(), "unexpected dead stores: {names:?}");
    }

    #[test]
    fn overwrite_on_all_paths_is_dead() {
        let names =
            dead_names("void f(int c) { int x = 1; if (c) { x = 2; } else { x = 3; } use(x); }");
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn field_stores_are_tracked_separately() {
        let names = dead_names(
            "struct p { int a; int b; };\n\
             void f(void) { struct p s; s.a = 1; s.b = 2; s.a = 3; use(s.a); use(s.b); }",
        );
        assert_eq!(names, vec!["s#0"]);
    }

    #[test]
    fn whole_struct_use_keeps_fields_live() {
        let names = dead_names(
            "struct p { int a; int b; };\n\
             void f(void) { struct p s; s.a = 1; consume(s); }",
        );
        assert!(names.is_empty(), "unexpected dead stores: {names:?}");
    }

    #[test]
    fn address_taken_locals_are_exempt() {
        // `x` escapes via `&x`; the write may be observed through the pointer.
        let names = dead_names("void f(void) { int x = 1; register_ptr(&x); x = 2; }");
        assert!(names.is_empty(), "unexpected dead stores: {names:?}");
    }

    #[test]
    fn unused_parameter_definition_is_dead() {
        let names = dead_names("int f(int used, int ignored) { return used; }");
        assert_eq!(names, vec!["ignored"]);
    }

    #[test]
    fn ignored_return_value_synthesizes_dead_store() {
        let names = dead_names("int g(void);\nvoid f(void) { g(); }");
        assert_eq!(names.len(), 1);
        assert!(names[0].starts_with("$ret_g_"), "got {names:?}");
    }

    #[test]
    fn escape_set_is_exact() {
        let f = func("void f(void) { int a = 1; int b = 2; sink(&a); use(b); }");
        let escaped = escaped_locals(&f);
        let a = f.local_by_name("a").unwrap();
        let b = f.local_by_name("b").unwrap();
        assert!(escaped.contains(&a));
        assert!(!escaped.contains(&b));
    }

    #[test]
    fn switch_overwrite_on_all_arms_is_dead() {
        // Every arm (and default) overwrites x: the initial store is dead.
        let names = dead_names(
            "void f(int c) {\n\
             int x = 1;\n\
             switch (c) {\n\
             case 1: x = 10; break;\n\
             case 2: x = 20; break;\n\
             default: x = 30;\n\
             }\n\
             use(x);\n\
             }",
        );
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn switch_without_default_keeps_initial_live() {
        // No default: the fall-through path reads the initial value.
        let names = dead_names(
            "void f(int c) {\n\
             int x = 1;\n\
             switch (c) {\n\
             case 1: x = 10; break;\n\
             }\n\
             use(x);\n\
             }",
        );
        assert!(names.is_empty(), "{names:?}");
    }

    #[test]
    fn do_while_body_use_keeps_definition_live() {
        let names = dead_names(
            "void f(int n) { int acc = 0; do { acc = acc + n; n = n - 1; } while (n > 0); \
             use(acc); }",
        );
        assert!(names.is_empty(), "{names:?}");
    }

    #[test]
    fn liveness_equation_holds_at_fixpoint() {
        // in[n] == gen/kill applied to out[n]; check by re-applying transfer.
        let f =
            func("int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }");
        let cfg = Cfg::new(&f);
        let facts = live_variables(&f, &cfg);
        for (bid, bb) in f.iter_blocks() {
            let mut fact = facts.exit(bid).clone();
            for inst in bb.insts.iter().rev() {
                transfer_inst(inst, &mut fact);
            }
            assert_eq!(&fact, facts.entry(bid), "block {bid:?} not at fixpoint");
        }
    }
}
