//! Sets of [`VarKey`]s with field-covering semantics.
//!
//! Field-sensitive liveness needs "covering" membership: a use of the whole
//! variable keeps each of its fields live, and a whole-variable store kills
//! every field. [`VarKeySet`] centralizes those rules so liveness, the
//! detector's define-set, and the baselines all agree on them.
//!
//! The set is backed by a sorted, deduplicated `Vec`: summaries retain one
//! def set and one use set per function for a whole scan, and a single
//! flat allocation per set keeps that residency far cheaper than tree
//! nodes. `VarKey`'s derived order places every `Field(l, _)` run
//! contiguously, so the covering queries stay range scans.

use vc_ir::{
    LocalId,
    VarKey, //
};

/// A set of variable keys with field-covering queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarKeySet {
    /// Sorted and deduplicated.
    set: Vec<VarKey>,
}

impl VarKeySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, returning true if it was absent.
    pub fn insert(&mut self, key: VarKey) -> bool {
        match self.set.binary_search(&key) {
            Ok(_) => false,
            Err(pos) => {
                self.set.insert(pos, key);
                true
            }
        }
    }

    /// Exact membership (no covering).
    pub fn contains_exact(&self, key: VarKey) -> bool {
        self.set.binary_search(&key).is_ok()
    }

    /// Covering membership:
    ///
    /// - `Local(l)` is covered if the whole variable **or any field** of it
    ///   is present (a live field keeps the aggregate live);
    /// - `Field(l, n)` is covered if that field **or the whole variable** is
    ///   present (a whole-variable use reads every field).
    pub fn contains_covering(&self, key: VarKey) -> bool {
        if self.contains_exact(key) {
            return true;
        }
        match key {
            VarKey::Local(l) => self.any_field_of(l),
            VarKey::Field(l, _) => self.contains_exact(VarKey::Local(l)),
        }
    }

    /// Whether any `Field(l, _)` key is present.
    pub fn any_field_of(&self, l: LocalId) -> bool {
        let start = self.set.partition_point(|k| *k < VarKey::Field(l, 0));
        matches!(self.set.get(start), Some(VarKey::Field(fl, _)) if *fl == l)
    }

    /// Removes everything a store to `key` overwrites: the key itself, and
    /// for whole-variable stores every field of the variable.
    pub fn remove_killed(&mut self, key: VarKey) {
        if let Ok(pos) = self.set.binary_search(&key) {
            self.set.remove(pos);
        }
        if let VarKey::Local(l) = key {
            let start = self.set.partition_point(|k| *k < VarKey::Field(l, 0));
            let mut end = start;
            while matches!(self.set.get(end), Some(VarKey::Field(fl, _)) if *fl == l) {
                end += 1;
            }
            self.set.drain(start..end);
        }
    }

    /// Unions another set into this one; returns true if anything was added.
    pub fn union_with(&mut self, other: &VarKeySet) -> bool {
        let before = self.set.len();
        let mut added = false;
        for &key in &other.set {
            added |= self.insert(key);
        }
        debug_assert!(added == (self.set.len() != before));
        added
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over keys in order.
    pub fn iter(&self) -> impl Iterator<Item = VarKey> + '_ {
        self.set.iter().copied()
    }
}

impl FromIterator<VarKey> for VarKeySet {
    fn from_iter<T: IntoIterator<Item = VarKey>>(iter: T) -> Self {
        let mut set: Vec<VarKey> = iter.into_iter().collect();
        set.sort_unstable();
        set.dedup();
        Self { set }
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    const L0: LocalId = LocalId(0);
    const L1: LocalId = LocalId(1);

    #[test]
    fn whole_var_use_covers_fields() {
        let mut s = VarKeySet::new();
        s.insert(VarKey::Local(L0));
        assert!(s.contains_covering(VarKey::Field(L0, 3)));
        assert!(!s.contains_covering(VarKey::Field(L1, 3)));
    }

    #[test]
    fn field_use_covers_whole_var() {
        let mut s = VarKeySet::new();
        s.insert(VarKey::Field(L0, 2));
        assert!(s.contains_covering(VarKey::Local(L0)));
        assert!(!s.contains_exact(VarKey::Local(L0)));
    }

    #[test]
    fn whole_store_kills_fields() {
        let mut s: VarKeySet = [
            VarKey::Field(L0, 0),
            VarKey::Field(L0, 7),
            VarKey::Local(L1),
        ]
        .into_iter()
        .collect();
        s.remove_killed(VarKey::Local(L0));
        assert!(!s.contains_covering(VarKey::Field(L0, 0)));
        assert!(s.contains_exact(VarKey::Local(L1)));
    }

    #[test]
    fn field_store_kills_only_that_field() {
        let mut s: VarKeySet = [VarKey::Field(L0, 0), VarKey::Field(L0, 1)]
            .into_iter()
            .collect();
        s.remove_killed(VarKey::Field(L0, 0));
        assert!(!s.contains_exact(VarKey::Field(L0, 0)));
        assert!(s.contains_exact(VarKey::Field(L0, 1)));
    }

    #[test]
    fn union_reports_growth() {
        let mut a: VarKeySet = [VarKey::Local(L0)].into_iter().collect();
        let b: VarKeySet = [VarKey::Local(L1)].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
    }
}
