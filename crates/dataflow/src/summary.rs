//! Per-function analysis summaries — compute once, consume everywhere.
//!
//! Historically the detect stage solved a combined liveness × define-set
//! fixpoint per function, and the prune stage then rebuilt the CFG and
//! re-solved liveness for every function `PeerStats` looked at, while the
//! cursor and unused-hint prunes rescanned instruction streams per
//! candidate. This module centralizes those facts in one [`FnSummary`] per
//! function:
//!
//! - the dead-store list with overwriter spans (detect candidates and
//!   `PeerStats` unused-counts both read it),
//! - the def/use and escape sets,
//! - the interned signature and the direct-callee set (the cross-scope
//!   relevance facts used by redundant-summary elimination),
//! - the call-result map (`temp → callee`) detection classifies with,
//! - the per-key self-offset uniformity map the cursor prune consults.
//!
//! The work is split in two phases: a plain [`Liveness`] solve over the
//! escape facts finds dead stores, and only when that list is non-empty do
//! the allocation-heavy facts get collected (callee names, the call-result
//! map, def/use sets — every consumer asks about a dead-store candidate)
//! and a second define-set fixpoint run — restricted to the dead stores'
//! locals.
//! The define equations of one local never read another local's entries (a
//! store only clears and replaces keys of its own base local), so the
//! restricted solve produces the same overwriter spans the old combined
//! fact did, at a fraction of the joins.
//!
//! Summaries are content-addressable by construction (nothing in them
//! depends on ids outside the function except the interned signature), so
//! the serve daemon caches them across warm requests keyed by file content.

use std::collections::{
    BTreeMap,
    BTreeSet,
    HashMap, //
};

use vc_ir::{
    cfg::Cfg,
    ir::{
        BlockId,
        Callee,
        Inst,
        LocalId,
        Operand,
        StoreInfo,
        TempId, //
    },
    span::Span,
    types::Type,
    FuncId,
    Function,
    Program,
    VarKey, //
};
use vc_obs::Budget;

use crate::{
    dense::{
        transfer_inst_dense,
        DenseLiveness,
        KeyIndex, //
    },
    framework::{
        solve_budgeted,
        DataflowAnalysis,
        Direction, //
    },
    varset::VarKeySet,
};

/// An interned function signature (parameter type vector).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

/// Interns every function signature of a program once, so `PeerStats` and
/// the peer prune compare signatures by id instead of cloning `Vec<Type>`
/// per function and per candidate.
///
/// Interning is deterministic (first-seen order over `prog.funcs`), so two
/// interners built from the same program assign identical ids.
#[derive(Clone, Debug, Default)]
pub struct SigInterner {
    ids: Vec<SigId>,
    table: HashMap<Vec<Type>, SigId>,
}

impl SigInterner {
    /// Interns the signatures of every function in `prog`.
    pub fn new(prog: &Program) -> Self {
        let mut out = Self::default();
        for f in &prog.funcs {
            let sig: Vec<Type> = f.params.iter().map(|p| p.ty.clone()).collect();
            let next = SigId(out.table.len() as u32);
            let id = *out.table.entry(sig).or_insert(next);
            out.ids.push(id);
        }
        out
    }

    /// The interned signature of `fid`.
    pub fn sig_of(&self, fid: FuncId) -> SigId {
        self.ids[fid.0 as usize]
    }

    /// Number of distinct signatures interned.
    pub fn distinct(&self) -> usize {
        self.table.len()
    }
}

/// Where a call result came from: the facts detection needs to classify a
/// dead store of a call result without rescanning the function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// Direct call to a named function.
    Direct(String),
    /// Indirect call through the given function-pointer temp; resolving it
    /// is a demand pointer query.
    Indirect(TempId),
}

/// Whether every self-offset store (`x = x + k`) to a key uses the same
/// delta — the fact the cursor prune's "uniform stride" heuristic needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelfDelta {
    /// All self-offset stores to the key share this delta.
    Uniform(i64),
    /// At least two distinct deltas were seen.
    Mixed,
}

/// One dead store, with the spans of the definitions that overwrite it.
#[derive(Clone, Debug)]
pub struct SummaryDead {
    /// Containing block.
    pub block: BlockId,
    /// Index of the store within the block.
    pub inst_idx: usize,
    /// The variable (or field) defined.
    pub key: VarKey,
    /// Span of the store.
    pub span: Span,
    /// Provenance of the stored value.
    pub info: StoreInfo,
    /// Spans of the next definitions downstream that overwrite this store
    /// (§4.2's define set, queried at the dead store's program point).
    pub overwriters: Vec<Span>,
}

/// The per-function summary: everything detect, `PeerStats`, and the prune
/// passes need, computed in one shot.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Interned signature.
    pub sig: SigId,
    /// Dead stores in discovery order (blocks ascending, instructions
    /// descending within a block — the detector's traversal order).
    pub dead: Vec<SummaryDead>,
    /// Locals whose address is taken (stores to them are never dead).
    pub escaped: BTreeSet<LocalId>,
    /// Keys written by any store. Populated only when `dead` is non-empty:
    /// every consumer of the def/use/callee facts asks about a dead-store
    /// candidate, so dead-free functions skip the collection cost.
    pub defs: VarKeySet,
    /// Keys read by any load or address-of (same population rule as
    /// [`FnSummary::defs`]).
    pub uses: VarKeySet,
    /// Names called directly anywhere in the function (same population rule
    /// as [`FnSummary::defs`]).
    pub callees: BTreeSet<String>,
    /// Call-result temp → callee, for dead-store classification.
    /// Restricted to the value temps of dead stores — the only entries
    /// classification ever looks up (the temp-origin table remains the
    /// defensive fallback for anything else).
    pub call_dsts: HashMap<TempId, CallTarget>,
    /// Per-key self-offset delta uniformity, for the cursor prune.
    pub self_offsets: HashMap<VarKey, SelfDelta>,
    /// Whether the function contains any indirect call (the only case a
    /// pointer query can influence its report output).
    pub has_indirect_calls: bool,
    /// Whether a dataflow budget ran out while building; facts are partial
    /// and candidates derived from them are low-confidence.
    pub exhausted: bool,
}

/// The define-set analysis of §4.2, restricted to the dead stores' locals:
/// for each key of a tracked local, the spans of the next definitions
/// downstream. A store's transfer only clears and replaces keys of its own
/// base local, so restricting to the dead stores' locals loses nothing.
/// The transfers iterate pre-extracted per-block store lists — nothing but
/// a tracked store mutates the fact, so skipping every other instruction
/// changes no fact the walk reads.
struct DefsAnalysis<'a> {
    /// Per-block `(inst_idx, key, span)` of stores to tracked locals, in
    /// instruction order.
    stores: &'a [Vec<(u32, VarKey, Span)>],
}

type DefsFact = BTreeMap<VarKey, BTreeSet<Span>>;

/// A store to `key` at `span` becomes the (sole) next definition for
/// everything it overwrites.
fn defs_store_transfer(defs: &mut DefsFact, key: VarKey, span: Span) {
    if let VarKey::Local(l) = key {
        let stale: Vec<VarKey> = defs
            .range(VarKey::Field(l, 0)..=VarKey::Field(l, u32::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            defs.remove(&k);
        }
    }
    defs.insert(key, BTreeSet::from([span]));
}

/// The overwriting definitions of `key` at a point: exact entry plus, for
/// field keys, whole-variable stores.
fn overwriters_of(defs: &DefsFact, key: VarKey) -> Vec<Span> {
    let mut out: BTreeSet<Span> = defs.get(&key).cloned().unwrap_or_default();
    if let VarKey::Field(l, _) = key {
        if let Some(extra) = defs.get(&VarKey::Local(l)) {
            out.extend(extra.iter().copied());
        }
    }
    out.into_iter().collect()
}

impl DataflowAnalysis for DefsAnalysis<'_> {
    type Fact = DefsFact;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary_fact(&self, _f: &Function) -> DefsFact {
        DefsFact::default()
    }

    fn init_fact(&self, _f: &Function) -> DefsFact {
        DefsFact::default()
    }

    fn join(&self, into: &mut DefsFact, from: &DefsFact) {
        for (k, spans) in from {
            into.entry(*k).or_default().extend(spans.iter().copied());
        }
    }

    fn transfer_block(&self, _f: &Function, bb: BlockId, fact: &mut DefsFact) {
        for &(_, key, span) in self.stores[bb.0 as usize].iter().rev() {
            defs_store_transfer(fact, key, span);
        }
    }
}

/// Builds the summary of one function under a liveness [`Budget`].
///
/// Counted as `summary.built`. When the budget runs out mid-fixpoint the
/// summary is still produced from the partial facts, with
/// [`FnSummary::exhausted`] set.
pub fn build_summary(f: &Function, sig: SigId, budget: Budget) -> FnSummary {
    vc_obs::counter_inc(vc_obs::names::SUMMARY_BUILT);

    // Phase 0 — the only instruction scan. Everything is buffered into
    // flat vectors (keys, store locations, call sites borrowed from `f`):
    // no string is cloned and no def/use set is grown here. Every consumer
    // of those facts asks about a dead-store candidate, so their
    // materialization waits for the dead-triggered phase and the dead-free
    // function pays only the vector pushes.
    let mut self_offsets: HashMap<VarKey, SelfDelta> = HashMap::new();
    let mut escaped = BTreeSet::new();
    let mut has_indirect_calls = false;
    let mut use_keys: Vec<VarKey> = Vec::new();
    // `(block, inst_idx, key, span)` of every keyed store, in program order.
    let mut stores: Vec<(BlockId, u32, VarKey, Span)> = Vec::new();
    let mut calls: Vec<(Option<TempId>, &Callee)> = Vec::new();
    let mut store_counts = vec![0u32; f.locals.len()];
    let mut block_has_store = vec![false; f.blocks.len()];
    for (bid, bb) in f.iter_blocks() {
        for (ii, inst) in bb.insts.iter().enumerate() {
            match inst {
                Inst::Load { place, .. } => {
                    if let Some(key) = place.var_key() {
                        use_keys.push(key);
                    }
                }
                Inst::AddrOf { place, .. } => {
                    if let Some(key) = place.var_key() {
                        use_keys.push(key);
                        escaped.insert(key.local());
                    }
                }
                Inst::Store {
                    place, span, info, ..
                } => {
                    if let Some(key) = place.var_key() {
                        stores.push((bid, ii as u32, key, *span));
                        store_counts[key.local().0 as usize] += 1;
                        block_has_store[bid.0 as usize] = true;
                        if let StoreInfo::SelfOffset { delta } = info {
                            self_offsets
                                .entry(key)
                                .and_modify(|d| {
                                    if *d != SelfDelta::Uniform(*delta) {
                                        *d = SelfDelta::Mixed;
                                    }
                                })
                                .or_insert(SelfDelta::Uniform(*delta));
                        }
                    }
                }
                Inst::Call { dst, callee, .. } => {
                    if matches!(callee, Callee::Indirect(_)) {
                        has_indirect_calls = true;
                    }
                    calls.push((*dst, callee));
                }
                Inst::Bin { .. } | Inst::Un { .. } => {}
            }
        }
    }
    let mut keys = use_keys.clone();
    keys.extend(stores.iter().map(|&(_, _, k, _)| k));
    let idx = KeyIndex::from_keys(keys, f.locals.len());

    // Phase 1: dense liveness (bitwise facts over the key universe — the
    // same lattice as [`Liveness`], pinned equivalent by the oracle tests),
    // then the dead-store walk in the detector's discovery order (blocks
    // ascending, instructions descending), checking each store against the
    // live set *below* it before applying its kill.
    let cfg = Cfg::new(f);
    let live = solve_budgeted(f, &cfg, &DenseLiveness { idx: &idx }, budget);
    let mut exhausted = live.exhausted;
    let mut dead: Vec<SummaryDead> = Vec::new();
    for (bid, bb) in f.iter_blocks() {
        // A block without stores can yield no dead store; skip its walk.
        if !block_has_store[bid.0 as usize] {
            continue;
        }
        let mut fact = live.exit(bid).clone();
        for (ii, inst) in bb.insts.iter().enumerate().rev() {
            if let Inst::Store {
                place, span, info, ..
            } = inst
            {
                if let Some(key) = place.var_key() {
                    if !escaped.contains(&key.local()) && !fact.contains_covering(&idx, key) {
                        dead.push(SummaryDead {
                            block: bid,
                            inst_idx: ii,
                            key,
                            span: *span,
                            info: info.clone(),
                            overwriters: Vec::new(),
                        });
                    }
                }
            }
            transfer_inst_dense(&idx, inst, &mut fact);
        }
    }

    // Phase 2 (only when something is dead): the define-set fixpoint,
    // restricted to the dead stores' locals, then one walk per block that
    // holds a dead store to read each store's overwriters from the fact
    // below it.
    let mut callees = BTreeSet::new();
    let mut call_dsts = HashMap::new();
    let mut defs = VarKeySet::new();
    let mut uses = VarKeySet::new();
    if !dead.is_empty() {
        // Deferred fact materialization: the callee set, the call-result
        // map classification reads, and the def/use sets — only functions
        // with dead stores are ever asked about them, and the phase-0 scan
        // already buffered the raw entries. Sets bulk-build from the
        // buffers (`collect` sorts once) and strings clone only here.
        defs = stores.iter().map(|&(_, _, k, _)| k).collect();
        uses = use_keys.into_iter().collect();
        // Callee names dedup as borrowed strings before cloning once per
        // distinct name.
        let mut names: Vec<&str> = calls
            .iter()
            .filter_map(|(_, c)| match c {
                Callee::Direct(n) => Some(n.as_str()),
                Callee::Indirect(_) => None,
            })
            .collect();
        names.sort_unstable();
        names.dedup();
        callees = names.into_iter().map(String::from).collect();
        // Classification only ever looks up the value temp of a dead
        // store, so the call-result map carries exactly those entries.
        let mut dead_value_temps: Vec<TempId> = dead
            .iter()
            .filter_map(|d| match f.block(d.block).insts.get(d.inst_idx) {
                Some(Inst::Store {
                    value: Operand::Temp(t),
                    ..
                }) => Some(*t),
                _ => None,
            })
            .collect();
        dead_value_temps.sort_unstable();
        dead_value_temps.dedup();
        for &(dst, callee) in &calls {
            if let Some(d) = dst {
                if dead_value_temps.binary_search(&d).is_ok() {
                    let target = match callee {
                        Callee::Direct(n) => CallTarget::Direct(n.clone()),
                        Callee::Indirect(t) => CallTarget::Indirect(*t),
                    };
                    call_dsts.insert(d, target);
                }
            }
        }

        let tracked: BTreeSet<LocalId> = dead.iter().map(|d| d.key.local()).collect();
        // A dead store's overwriters are later stores to the same local (a
        // field key is also overwritten by a whole-variable store, still the
        // same local). When every dead local has exactly one store in the
        // whole function — the dead store itself, the shape of every
        // synthetic ignored-retval store — the define-set fixpoint can only
        // produce empty overwriter lists, so skip it.
        let overwriters_possible = tracked.iter().any(|l| store_counts[l.0 as usize] > 1);
        if overwriters_possible {
            // Per-block lists of stores to tracked locals, filtered from
            // the phase-0 buffer: the define-set fixpoint transfers over
            // exactly these.
            let mut tracked_stores: Vec<Vec<(u32, VarKey, Span)>> =
                vec![Vec::new(); f.blocks.len()];
            for &(bid, ii, key, span) in &stores {
                if tracked.contains(&key.local()) {
                    tracked_stores[bid.0 as usize].push((ii, key, span));
                }
            }
            let analysis = DefsAnalysis {
                stores: &tracked_stores,
            };
            let facts = solve_budgeted(f, &cfg, &analysis, budget);
            exhausted |= facts.exhausted;
            let mut i = 0;
            while i < dead.len() {
                let bid = dead[i].block;
                let mut j = i;
                while j < dead.len() && dead[j].block == bid {
                    j += 1;
                }
                // Walk the block's tracked stores backward. Only stores
                // mutate the define fact, and every dead store of this
                // block is itself a tracked store, so the full-instruction
                // walk collapses to the store list without changing any
                // fact read.
                let mut fact = facts.exit(bid).clone();
                let mut di = i;
                for &(s_idx, key, span) in tracked_stores[bid.0 as usize].iter().rev() {
                    while di < j && dead[di].inst_idx == s_idx as usize {
                        dead[di].overwriters = overwriters_of(&fact, dead[di].key);
                        di += 1;
                    }
                    defs_store_transfer(&mut fact, key, span);
                }
                i = j;
            }
        }
    }

    FnSummary {
        sig,
        dead,
        escaped,
        defs,
        uses,
        callees,
        call_dsts,
        self_offsets,
        has_indirect_calls,
        exhausted,
    }
}

/// A store of per-function summaries for one scan.
///
/// `get_or_build` hands out full-confidence summaries: a cached summary
/// built under an exhausted budget is rebuilt unbudgeted on first full
/// demand (the prune passes were never budget-limited), replacing the
/// partial entry.
#[derive(Debug, Default)]
pub struct Summaries {
    /// Indexed by `FuncId` (function ids are dense), `None` until built.
    map: Vec<Option<FnSummary>>,
    held: usize,
}

impl Summaries {
    /// Inserts a summary computed elsewhere (the detect loop, a warm cache).
    pub fn insert(&mut self, fid: FuncId, summary: FnSummary) {
        let i = fid.0 as usize;
        if i >= self.map.len() {
            self.map.resize_with(i + 1, || None);
        }
        if self.map[i].is_none() {
            self.held += 1;
        }
        self.map[i] = Some(summary);
    }

    /// The summary of `fid`, if present.
    pub fn get(&self, fid: FuncId) -> Option<&FnSummary> {
        self.map.get(fid.0 as usize).and_then(|o| o.as_ref())
    }

    /// The full-confidence summary of `fid`: reused when cached (counted as
    /// `summary.reused`), built unbudgeted otherwise — also when the cached
    /// entry is partial from budget exhaustion.
    pub fn get_or_build(&mut self, f: &Function, fid: FuncId, sig: SigId) -> &FnSummary {
        let rebuild = match self.get(fid) {
            Some(s) => s.exhausted,
            None => true,
        };
        if rebuild {
            let s = build_summary(f, sig, Budget::UNLIMITED);
            self.insert(fid, s);
        } else {
            vc_obs::counter_inc(vc_obs::names::SUMMARY_REUSED);
        }
        self.map[fid.0 as usize].as_ref().unwrap()
    }

    /// Number of summaries held.
    pub fn len(&self) -> usize {
        self.held
    }

    /// Whether no summaries are held.
    pub fn is_empty(&self) -> bool {
        self.held == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::dead_stores;
    use vc_ir::Program;

    fn prog(src: &str) -> Program {
        Program::build(&[("a.c", src)], &[]).unwrap()
    }

    fn summary(src: &str) -> (Program, FnSummary) {
        let p = prog(src);
        let interner = SigInterner::new(&p);
        let s = build_summary(&p.funcs[0], interner.sig_of(FuncId(0)), Budget::UNLIMITED);
        (p, s)
    }

    #[test]
    fn dead_list_matches_dead_stores_oracle() {
        let src = "int f(int n) {\n\
                   int x = 1;\n\
                   x = 2;\n\
                   int acc = 0;\n\
                   for (int i = 0; i < n; i = i + 1) { acc = acc + x; }\n\
                   return acc;\n\
                   }";
        let (p, s) = summary(src);
        let f = &p.funcs[0];
        let cfg = Cfg::new(f);
        let mut oracle: Vec<_> = dead_stores(f, &cfg)
            .into_iter()
            .map(|d| (d.block, d.inst_idx, d.key))
            .collect();
        oracle.sort();
        let mut got: Vec<_> = s
            .dead
            .iter()
            .map(|d| (d.block, d.inst_idx, d.key))
            .collect();
        got.sort();
        assert_eq!(got, oracle);
    }

    #[test]
    fn overwriters_collect_all_branch_definitions() {
        let (p, s) =
            summary("void f(int c) { int x = 1; if (c) { x = 2; } else { x = 3; } use(x); }");
        let f = &p.funcs[0];
        let dead: Vec<_> = s
            .dead
            .iter()
            .filter(|d| f.var_key_name(d.key) == "x")
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].overwriters.len(), 2, "{:?}", dead[0].overwriters);
    }

    #[test]
    fn field_dead_store_sees_whole_variable_overwriter() {
        let (p, s) = summary(
            "struct s { int a; int b; };\n\
             struct s mk(void);\n\
             void f(void) { struct s v; v.a = 1; v = mk(); use_s(v); }",
        );
        let f = &p.funcs[0];
        let fa = s
            .dead
            .iter()
            .find(|d| f.var_key_name(d.key) == "v#0")
            .expect("field dead store");
        assert_eq!(fa.overwriters.len(), 1);
    }

    #[test]
    fn scan_facts_cover_calls_and_self_offsets() {
        let (p, s) = summary(
            "void f(int n) {\n\
               int r = getv();\n\
               r = getw();\n\
               use(r);\n\
               n = n + 2;\n\
               n = n + 2;\n\
               use(n);\n\
             }",
        );
        let f = &p.funcs[0];
        assert!(s.callees.contains("getv") && s.callees.contains("getw"));
        assert!(!s.has_indirect_calls);
        let n = f.local_by_name("n").unwrap();
        assert_eq!(
            s.self_offsets.get(&VarKey::Local(n)),
            Some(&SelfDelta::Uniform(2))
        );
    }

    #[test]
    fn mixed_self_offset_deltas_are_flagged() {
        let (p, s) = summary("void f(int n) { n = n + 1; n = n + 2; use(n); }");
        let f = &p.funcs[0];
        let n = f.local_by_name("n").unwrap();
        assert_eq!(
            s.self_offsets.get(&VarKey::Local(n)),
            Some(&SelfDelta::Mixed)
        );
    }

    #[test]
    fn sig_interner_shares_ids_for_equal_signatures() {
        let p = prog(
            "int a(int x) { return x; }\n\
             int b(int y) { return y; }\n\
             int c(char *z) { return 0; }",
        );
        let i = SigInterner::new(&p);
        assert_eq!(i.sig_of(FuncId(0)), i.sig_of(FuncId(1)));
        assert_ne!(i.sig_of(FuncId(0)), i.sig_of(FuncId(2)));
        assert_eq!(i.distinct(), 2);
    }

    #[test]
    fn exhausted_summary_is_rebuilt_on_full_demand() {
        let p = prog("void f(int n) { int x = 1; x = 2; while (n) { n = n - 1; use(x); } }");
        let interner = SigInterner::new(&p);
        let sig = interner.sig_of(FuncId(0));
        let obs = vc_obs::ObsSession::new();
        let _g = obs.install();
        let partial = build_summary(&p.funcs[0], sig, Budget::steps(1));
        assert!(partial.exhausted);
        let mut store = Summaries::default();
        store.insert(FuncId(0), partial);
        let full = store.get_or_build(&p.funcs[0], FuncId(0), sig);
        assert!(!full.exhausted);
        // Partial entry was rebuilt, not reused.
        assert_eq!(obs.registry.counter(vc_obs::names::SUMMARY_REUSED), 0);
        assert_eq!(obs.registry.counter(vc_obs::names::SUMMARY_BUILT), 2);
        // A second full demand reuses.
        store.get_or_build(&p.funcs[0], FuncId(0), sig);
        assert_eq!(obs.registry.counter(vc_obs::names::SUMMARY_REUSED), 1);
    }
}
