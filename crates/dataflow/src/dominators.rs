//! Dominator-tree computation (Cooper–Harvey–Kennedy).
//!
//! Dominators are not needed by the headline detection algorithm, but the
//! incremental analyzer and several ablation benches use them to reason about
//! "overwritten on all successor paths" properties, and they serve as an
//! independent oracle in property tests of the CFG utilities.

use vc_ir::{
    cfg::Cfg,
    ir::BlockId, //
};

/// The dominator tree of a CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative scheme.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        // Position of each block in RPO; unreachable blocks keep usize::MAX.
        let mut rpo_pos = vec![usize::MAX; n];
        let mut reachable_rpo = Vec::new();
        let mut seen = vec![false; n];
        // `postorder()` appends unreachable blocks; filter to reachable only.
        {
            let mut stack = vec![cfg.entry];
            seen[cfg.entry.0 as usize] = true;
            while let Some(b) = stack.pop() {
                for &s in cfg.succs(b) {
                    if !seen[s.0 as usize] {
                        seen[s.0 as usize] = true;
                        stack.push(s);
                    }
                }
            }
        }
        for (i, &b) in rpo.iter().enumerate() {
            if seen[b.0 as usize] {
                rpo_pos[b.0 as usize] = i;
                reachable_rpo.push(b);
            }
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry.0 as usize] = Some(cfg.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.0 as usize] > rpo_pos[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed block has idom");
                }
                while rpo_pos[b.0 as usize] > rpo_pos[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &reachable_rpo {
                if b == cfg.entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !seen[p.0 as usize] || idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }

        Self {
            idom,
            entry: cfg.entry,
        }
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.0 as usize].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::{
        Function,
        Program, //
    };

    fn func(src: &str) -> Function {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        prog.funcs.into_iter().next().unwrap()
    }

    /// Oracle: `a` dominates `b` iff removing `a` makes `b` unreachable.
    fn dominates_oracle(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if a == cfg.entry {
            return reachable(cfg, None, b);
        }
        !reachable_avoiding(cfg, a, b)
    }

    fn reachable(cfg: &Cfg, _skip: Option<BlockId>, target: BlockId) -> bool {
        reachable_avoiding(cfg, BlockId(u32::MAX), target)
    }

    fn reachable_avoiding(cfg: &Cfg, avoid: BlockId, target: BlockId) -> bool {
        let mut seen = vec![false; cfg.len()];
        let mut stack = vec![cfg.entry];
        if cfg.entry == avoid {
            return false;
        }
        seen[cfg.entry.0 as usize] = true;
        while let Some(b) = stack.pop() {
            if b == target {
                return true;
            }
            for &s in cfg.succs(b) {
                if s != avoid && !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    fn check_against_oracle(src: &str) {
        let f = func(src);
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        for a in 0..cfg.len() {
            for b in 0..cfg.len() {
                let (a, b) = (BlockId(a as u32), BlockId(b as u32));
                if !dom.is_reachable(a) || !dom.is_reachable(b) {
                    continue;
                }
                assert_eq!(
                    dom.dominates(a, b),
                    dominates_oracle(&cfg, a, b),
                    "dominates({a:?}, {b:?}) mismatch"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_diamond() {
        check_against_oracle(
            "int f(int x) { int y = 0; if (x) { y = 1; } else { y = 2; } return y; }",
        );
    }

    #[test]
    fn matches_oracle_on_loops() {
        check_against_oracle(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { if (i % 2) { s = s + \
             i; } else { continue; } } return s; }",
        );
    }

    #[test]
    fn matches_oracle_with_early_returns() {
        check_against_oracle(
            "int f(int x) { if (x < 0) { return -1; } while (x) { x = x - 1; if (x == 3) { \
             break; } } return x; }",
        );
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let f = func("void f(int x) { if (x) { a(); } else { b(); } c(); }");
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        for b in 0..cfg.len() {
            let b = BlockId(b as u32);
            if dom.is_reachable(b) {
                assert!(dom.dominates(cfg.entry, b));
            }
        }
    }
}
