//! Forward reaching-definitions analysis.
//!
//! For every program point, which stores may have produced the current value
//! of each variable? Used to build def-use chains (the in-function slice of a
//! sparse value-flow graph) and by tests cross-checking liveness: a store
//! reaching a load of the same key must be live.

use std::collections::{
    BTreeMap,
    BTreeSet, //
};

use vc_ir::{
    cfg::Cfg,
    ir::{
        BlockId,
        Inst, //
    },
    Function,
    VarKey, //
};

use vc_obs::Budget;

use crate::framework::{
    solve,
    solve_budgeted,
    BlockFacts,
    DataflowAnalysis,
    Direction, //
};

/// Identifies one store instruction: `(block, instruction index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefSite {
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst_idx: u32,
}

/// Map from variable key to the set of stores that may reach this point.
pub type ReachingFact = BTreeMap<VarKey, BTreeSet<DefSite>>;

/// The reaching-definitions analysis instance.
pub struct ReachingDefs;

impl DataflowAnalysis for ReachingDefs {
    type Fact = ReachingFact;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary_fact(&self, _f: &Function) -> ReachingFact {
        ReachingFact::new()
    }

    fn init_fact(&self, _f: &Function) -> ReachingFact {
        ReachingFact::new()
    }

    fn join(&self, into: &mut ReachingFact, from: &ReachingFact) {
        for (key, sites) in from {
            into.entry(*key).or_default().extend(sites.iter().copied());
        }
    }

    fn transfer_block(&self, f: &Function, bb: BlockId, fact: &mut ReachingFact) {
        for (idx, inst) in f.block(bb).insts.iter().enumerate() {
            transfer_inst(inst, bb, idx as u32, fact);
        }
    }
}

/// Applies one instruction's forward transfer: a store to a key kills the
/// reaching definitions of everything it overwrites and gens itself.
pub fn transfer_inst(inst: &Inst, bb: BlockId, idx: u32, fact: &mut ReachingFact) {
    if let Inst::Store { place, .. } = inst {
        if let Some(key) = place.var_key() {
            // A whole-variable store also kills each field's definitions.
            if let VarKey::Local(l) = key {
                let field_keys: Vec<VarKey> = fact
                    .range(VarKey::Field(l, 0)..=VarKey::Field(l, u32::MAX))
                    .map(|(k, _)| *k)
                    .collect();
                for k in field_keys {
                    fact.remove(&k);
                }
            }
            let site = DefSite {
                block: bb,
                inst_idx: idx,
            };
            fact.insert(key, BTreeSet::from([site]));
        }
    }
}

/// Solves reaching definitions for `f`.
pub fn reaching_definitions(f: &Function, cfg: &Cfg) -> BlockFacts<ReachingFact> {
    solve(f, cfg, &ReachingDefs)
}

/// [`reaching_definitions`] under a step/wall-clock [`Budget`]: on
/// pathological CFGs the def-site sets grow with the block count and the
/// fixpoint turns quadratic, so hardened callers bound it and accept the
/// partial facts ([`BlockFacts::exhausted`]).
pub fn reaching_definitions_budgeted(
    f: &Function,
    cfg: &Cfg,
    budget: Budget,
) -> BlockFacts<ReachingFact> {
    solve_budgeted(f, cfg, &ReachingDefs, budget)
}

/// A def-use edge: the store at `def` flows to the load at `(use_block,
/// use_idx)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DefUseEdge {
    /// The defining store.
    pub def: DefSite,
    /// Block of the use.
    pub use_block: BlockId,
    /// Instruction index of the use.
    pub use_idx: u32,
    /// The variable flowing along the edge.
    pub key: VarKey,
}

/// Computes all def-use chains of `f` over direct local accesses.
pub fn def_use_chains(f: &Function, cfg: &Cfg) -> Vec<DefUseEdge> {
    let facts = reaching_definitions(f, cfg);
    let mut edges = Vec::new();
    for (bid, bb) in f.iter_blocks() {
        let mut fact = facts.entry(bid).clone();
        for (idx, inst) in bb.insts.iter().enumerate() {
            if let Inst::Load { place, .. } = inst {
                if let Some(key) = place.var_key() {
                    // Exact and covering defs both flow into this use.
                    let mut reached: BTreeSet<DefSite> = BTreeSet::new();
                    if let Some(sites) = fact.get(&key) {
                        reached.extend(sites.iter().copied());
                    }
                    if let VarKey::Field(l, _) = key {
                        if let Some(sites) = fact.get(&VarKey::Local(l)) {
                            reached.extend(sites.iter().copied());
                        }
                    }
                    for def in reached {
                        edges.push(DefUseEdge {
                            def,
                            use_block: bid,
                            use_idx: idx as u32,
                            key,
                        });
                    }
                }
            }
            transfer_inst(inst, bid, idx as u32, &mut fact);
        }
    }
    edges.sort();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::Program;

    fn func(src: &str) -> Function {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        prog.funcs.into_iter().next().unwrap()
    }

    #[test]
    fn straight_line_def_reaches_use() {
        let f = func("void f(void) { int x = 1; use(x); }");
        let cfg = Cfg::new(&f);
        let edges = def_use_chains(&f, &cfg);
        let x = f.local_by_name("x").unwrap();
        assert!(edges.iter().any(|e| e.key == VarKey::Local(x)));
    }

    #[test]
    fn overwritten_def_does_not_reach() {
        let f = func("void f(void) { int x = 1; x = 2; use(x); }");
        let cfg = Cfg::new(&f);
        let edges = def_use_chains(&f, &cfg);
        let x = f.local_by_name("x").unwrap();
        // Exactly one def of x reaches the single use.
        let x_edges: Vec<_> = edges.iter().filter(|e| e.key == VarKey::Local(x)).collect();
        assert_eq!(x_edges.len(), 1);
    }

    #[test]
    fn branches_merge_definitions() {
        let f = func("void f(int c) { int x = 1; if (c) { x = 2; } use(x); }");
        let cfg = Cfg::new(&f);
        let edges = def_use_chains(&f, &cfg);
        let x = f.local_by_name("x").unwrap();
        // Both the initial and the conditional store reach the use.
        let defs: BTreeSet<DefSite> = edges
            .iter()
            .filter(|e| e.key == VarKey::Local(x))
            .map(|e| e.def)
            .collect();
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn loop_back_edge_carries_definition() {
        let f = func("int f(int n) { int s = 0; while (n) { s = s + 1; n = n - 1; } return s; }");
        let cfg = Cfg::new(&f);
        let edges = def_use_chains(&f, &cfg);
        let s = f.local_by_name("s").unwrap();
        // The in-loop redefinition of s flows back into `s + 1`.
        let loads_of_s_with_two_defs = edges
            .iter()
            .filter(|e| e.key == VarKey::Local(s))
            .fold(BTreeMap::<(BlockId, u32), usize>::new(), |mut m, e| {
                *m.entry((e.use_block, e.use_idx)).or_default() += 1;
                m
            })
            .values()
            .any(|&n| n >= 2);
        assert!(loads_of_s_with_two_defs);
    }

    #[test]
    fn dead_store_reaches_no_use() {
        let f = func("int f(void) { int x = 1; int y = 2; x = y; return x; }");
        let cfg = Cfg::new(&f);
        let edges = def_use_chains(&f, &cfg);
        // Cross-check with liveness: every dead store must have no def-use
        // edge, and every store with an edge must not be reported dead.
        let dead = crate::liveness::dead_stores(&f, &cfg);
        for d in &dead {
            assert!(
                !edges
                    .iter()
                    .any(|e| e.def.block == d.block && e.def.inst_idx as usize == d.inst_idx),
                "dead store has a use"
            );
        }
    }
}
