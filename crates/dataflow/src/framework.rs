//! A generic worklist dataflow solver over function CFGs.
//!
//! The solver implements the classic iterative scheme the paper formalizes in
//! §2.1: facts per block boundary, a join over CFG neighbours, and a block
//! transfer function, iterated to a fixed point. Both directions are
//! supported; liveness (backward) and reaching definitions (forward) are the
//! two instances shipped in this crate.

use std::collections::VecDeque;

use vc_ir::{
    cfg::Cfg,
    ir::BlockId,
    Function, //
};
use vc_obs::{
    Budget,
    BudgetMeter, //
};

/// Direction of a dataflow analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry toward exits.
    Forward,
    /// Facts flow from exits toward the entry.
    Backward,
}

/// A dataflow analysis: a lattice of facts plus join and transfer.
pub trait DataflowAnalysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// The direction facts flow.
    const DIRECTION: Direction;

    /// The fact at the boundary (entry for forward, every exit for backward).
    fn boundary_fact(&self, f: &Function) -> Self::Fact;

    /// The initial optimistic fact for interior program points.
    fn init_fact(&self, f: &Function) -> Self::Fact;

    /// Joins `from` into `into`.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Applies the whole-block transfer function, mutating `fact` in place.
    ///
    /// For a forward analysis `fact` is the entry fact and becomes the exit
    /// fact; for a backward analysis it is the exit fact and becomes the
    /// entry fact.
    fn transfer_block(&self, f: &Function, bb: BlockId, fact: &mut Self::Fact);
}

/// Per-block solution: the fact at block entry and at block exit.
#[derive(Clone, Debug)]
pub struct BlockFacts<F> {
    /// Fact at the top of each block.
    pub entry: Vec<F>,
    /// Fact at the bottom of each block.
    pub exit: Vec<F>,
    /// How many block transfers the solver executed before convergence.
    pub iterations: usize,
    /// Whether the solve stopped on budget exhaustion before reaching the
    /// fixed point. Exhausted facts are partial: callers should treat
    /// results derived from them as low-confidence.
    pub exhausted: bool,
}

impl<F> BlockFacts<F> {
    /// The entry fact of `b`.
    pub fn entry(&self, b: BlockId) -> &F {
        &self.entry[b.0 as usize]
    }

    /// The exit fact of `b`.
    pub fn exit(&self, b: BlockId) -> &F {
        &self.exit[b.0 as usize]
    }
}

/// Runs `analysis` over `f` to a fixed point and returns per-block facts.
///
/// The worklist is seeded in an order that converges quickly: reverse
/// postorder for forward analyses, postorder for backward ones. The solver is
/// guaranteed to terminate for monotone transfer functions over finite
/// lattices; a defensive iteration cap turns a non-monotone analysis bug into
/// a panic rather than a hang.
///
/// # Panics
///
/// Panics if the analysis fails to converge within `64 * blocks + 1024`
/// block transfers, which indicates a non-monotone transfer function.
pub fn solve<A: DataflowAnalysis>(f: &Function, cfg: &Cfg, analysis: &A) -> BlockFacts<A::Fact> {
    solve_budgeted(f, cfg, analysis, Budget::UNLIMITED)
}

/// [`solve`] under a [`Budget`]: when the step cap or wall-clock deadline
/// runs out mid-fixpoint, the solver stops and returns the facts computed so
/// far with [`BlockFacts::exhausted`] set, instead of hanging or panicking.
/// The defensive non-convergence cap still panics when no budget is set.
pub fn solve_budgeted<A: DataflowAnalysis>(
    f: &Function,
    cfg: &Cfg,
    analysis: &A,
    budget: Budget,
) -> BlockFacts<A::Fact> {
    let n = f.blocks.len();
    let mut entry: Vec<A::Fact> = (0..n).map(|_| analysis.init_fact(f)).collect();
    let mut exit: Vec<A::Fact> = (0..n).map(|_| analysis.init_fact(f)).collect();

    let order: Vec<BlockId> = match A::DIRECTION {
        Direction::Forward => cfg.reverse_postorder(),
        Direction::Backward => cfg.postorder(),
    };
    let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
    let mut queued = vec![true; n];

    let cap = 64 * n + 1024;
    let mut iterations = 0usize;
    let mut pushes = n; // The initial seeding counts as worklist pushes.
    let mut meter = BudgetMeter::start(budget);

    while let Some(b) = queue.pop_front() {
        if !meter.tick() {
            vc_obs::counter_inc(vc_obs::names::DATAFLOW_BUDGET_EXHAUSTED);
            break;
        }
        queued[b.0 as usize] = false;
        iterations += 1;
        assert!(
            iterations <= cap,
            "dataflow did not converge in {} ({} blocks)",
            f.name,
            n
        );

        match A::DIRECTION {
            Direction::Forward => {
                // entry[b] = join of preds' exits (boundary at the entry).
                let mut fact = if b == cfg.entry {
                    analysis.boundary_fact(f)
                } else {
                    analysis.init_fact(f)
                };
                for &p in cfg.preds(b) {
                    analysis.join(&mut fact, &exit[p.0 as usize]);
                }
                entry[b.0 as usize] = fact.clone();
                analysis.transfer_block(f, b, &mut fact);
                if fact != exit[b.0 as usize] {
                    exit[b.0 as usize] = fact;
                    for &s in cfg.succs(b) {
                        if !queued[s.0 as usize] {
                            queued[s.0 as usize] = true;
                            pushes += 1;
                            queue.push_back(s);
                        }
                    }
                }
            }
            Direction::Backward => {
                // exit[b] = join of succs' entries (boundary at exits).
                let mut fact = if cfg.succs(b).is_empty() {
                    analysis.boundary_fact(f)
                } else {
                    analysis.init_fact(f)
                };
                for &s in cfg.succs(b) {
                    analysis.join(&mut fact, &entry[s.0 as usize]);
                }
                exit[b.0 as usize] = fact.clone();
                analysis.transfer_block(f, b, &mut fact);
                if fact != entry[b.0 as usize] {
                    entry[b.0 as usize] = fact;
                    for &p in cfg.preds(b) {
                        if !queued[p.0 as usize] {
                            queued[p.0 as usize] = true;
                            pushes += 1;
                            queue.push_back(p);
                        }
                    }
                }
            }
        }
    }

    vc_obs::counter_inc(vc_obs::names::DATAFLOW_SOLVES);
    vc_obs::counter_add(
        vc_obs::names::DATAFLOW_FIXPOINT_ITERATIONS,
        iterations as u64,
    );
    vc_obs::counter_add(vc_obs::names::DATAFLOW_WORKLIST_PUSHES, pushes as u64);
    vc_obs::observe(vc_obs::names::DATAFLOW_BLOCK_COUNT, n as u64);

    BlockFacts {
        entry,
        exit,
        iterations,
        exhausted: meter.exhausted(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::Program;

    /// A toy forward analysis counting the minimum number of blocks on any
    /// path from entry (a min-lattice), to exercise the framework on its own.
    struct MinDepth;

    impl DataflowAnalysis for MinDepth {
        type Fact = u64;
        const DIRECTION: Direction = Direction::Forward;

        fn boundary_fact(&self, _f: &Function) -> u64 {
            0
        }

        fn init_fact(&self, _f: &Function) -> u64 {
            u64::MAX
        }

        fn join(&self, into: &mut u64, from: &u64) {
            *into = (*into).min(*from);
        }

        fn transfer_block(&self, _f: &Function, _bb: BlockId, fact: &mut u64) {
            *fact = fact.saturating_add(1);
        }
    }

    #[test]
    fn converges_on_loops() {
        let prog = Program::build(
            &[(
                "a.c",
                "void f(int n) { for (int i = 0; i < n; i = i + 1) { g(i); } h(); }",
            )],
            &[],
        )
        .unwrap();
        let f = &prog.funcs[0];
        let cfg = Cfg::new(f);
        let facts = solve(f, &cfg, &MinDepth);
        // Entry block has depth 0 at entry, 1 at exit.
        assert_eq!(*facts.entry(f.entry), 0);
        assert_eq!(*facts.exit(f.entry), 1);
        assert!(facts.iterations >= f.blocks.len());
    }

    #[test]
    fn solver_reports_fixpoint_metrics() {
        let prog = Program::build(
            &[(
                "a.c",
                "void f(int n) { for (int i = 0; i < n; i = i + 1) { g(i); } }",
            )],
            &[],
        )
        .unwrap();
        let f = &prog.funcs[0];
        let cfg = Cfg::new(f);
        let obs = vc_obs::ObsSession::new();
        let facts = {
            let _g = obs.install();
            solve(f, &cfg, &MinDepth)
        };
        assert_eq!(obs.registry.counter(vc_obs::names::DATAFLOW_SOLVES), 1);
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::DATAFLOW_FIXPOINT_ITERATIONS),
            facts.iterations as u64
        );
        assert!(
            obs.registry
                .counter(vc_obs::names::DATAFLOW_WORKLIST_PUSHES)
                >= f.blocks.len() as u64
        );
        assert_eq!(
            obs.registry
                .histogram(vc_obs::names::DATAFLOW_BLOCK_COUNT)
                .count,
            1
        );
    }

    #[test]
    fn budgeted_solve_stops_early_and_flags_exhaustion() {
        let prog = Program::build(
            &[(
                "a.c",
                "void f(int n) { while (n) { for (int i = 0; i < n; i = i + 1) { g(i); } n = n \
                 - 1; } }",
            )],
            &[],
        )
        .unwrap();
        let f = &prog.funcs[0];
        let cfg = Cfg::new(f);
        let obs = vc_obs::ObsSession::new();
        let facts = {
            let _g = obs.install();
            solve_budgeted(f, &cfg, &MinDepth, Budget::steps(1))
        };
        assert!(facts.exhausted);
        assert!(facts.iterations <= 1);
        assert_eq!(
            obs.registry
                .counter(vc_obs::names::DATAFLOW_BUDGET_EXHAUSTED),
            1
        );
        // An unlimited budget converges and is not flagged.
        let full = solve(f, &cfg, &MinDepth);
        assert!(!full.exhausted);
    }

    #[test]
    fn facts_are_monotone_along_edges() {
        let prog = Program::build(
            &[(
                "a.c",
                "int f(int x) { int y = 0; if (x) { y = 1; } else { y = 2; while (x) { x = x - \
                 1; } } return y; }",
            )],
            &[],
        )
        .unwrap();
        let f = &prog.funcs[0];
        let cfg = Cfg::new(f);
        let facts = solve(f, &cfg, &MinDepth);
        // Every reachable block's entry equals min over pred exits.
        for b in 0..f.blocks.len() {
            let b = BlockId(b as u32);
            if b == cfg.entry || cfg.preds(b).is_empty() {
                continue;
            }
            let min = cfg.preds(b).iter().map(|p| *facts.exit(*p)).min().unwrap();
            assert_eq!(*facts.entry(b), min);
        }
    }
}
