//! Alias-use queries derived from the points-to solution.
//!
//! The paper's §4.1 "Pointer and Alias": a definition that may be read
//! through a pointer must not be reported unused. [`AliasUses`] computes,
//! program-wide, which memory objects may be read indirectly — via a deref
//! load anywhere, or by being visible to an unknown (extern) callee — and
//! answers "is this local possibly used through an alias?".

use std::collections::BTreeSet;

use vc_ir::{
    ir::{
        Callee,
        Inst,
        Operand,
        Place, //
    },
    FileId,
    FuncId,
    LocalId,
    Program, //
};

use crate::{
    andersen::PointsTo,
    node::MemObj, //
};

/// Program-wide indirect-read facts.
#[derive(Clone, Debug, Default)]
pub struct AliasUses {
    /// `(function, local)` pairs that may be read through a pointer.
    read_locals: BTreeSet<(FuncId, LocalId)>,
}

impl AliasUses {
    /// Computes alias-use facts for the whole program.
    pub fn compute(prog: &Program, pts: &PointsTo) -> AliasUses {
        Self::compute_impl(prog, pts, None)
    }

    /// Computes alias-use facts restricted to functions in `files` (the
    /// per-file mode of §7 / the incremental analyzer).
    pub fn compute_files(prog: &Program, pts: &PointsTo, files: &BTreeSet<FileId>) -> AliasUses {
        Self::compute_impl(prog, pts, Some(files))
    }

    fn compute_impl(prog: &Program, pts: &PointsTo, scope: Option<&BTreeSet<FileId>>) -> AliasUses {
        let mut read_locals = BTreeSet::new();
        let mut mark = |obj: &MemObj| {
            if let MemObj::Local(f, l) | MemObj::LocalField(f, l, _) = obj {
                read_locals.insert((*f, *l));
            }
        };
        for (fi, f) in prog.funcs.iter().enumerate() {
            if let Some(files) = scope {
                if !files.contains(&f.file) {
                    continue;
                }
            }
            let fid = FuncId(fi as u32);
            for bb in &f.blocks {
                for inst in &bb.insts {
                    match inst {
                        // A deref load may read anything the pointer targets.
                        Inst::Load {
                            place: Place::Deref(t) | Place::DerefField(t, _),
                            ..
                        } => {
                            for o in pts.points_to(fid, *t) {
                                mark(o);
                            }
                        }
                        // Pointers handed to unknown callees may be read there.
                        Inst::Call { callee, args, .. } => {
                            let unknown = match callee {
                                Callee::Direct(name) => !prog.defines_function(name),
                                Callee::Indirect(_) => false,
                            };
                            if unknown {
                                for a in args {
                                    if let Operand::Temp(t) = a {
                                        for o in pts.points_to(fid, *t) {
                                            mark(o);
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        AliasUses { read_locals }
    }

    /// The degraded-mode oracle: a field-insensitive over-approximation
    /// that needs no points-to solution at all. Every local whose address
    /// is ever taken is treated as may-aliased-read, since `&x` is the only
    /// way a local's storage can become reachable through a pointer. This
    /// is the fallback tier when the Andersen solver's budget runs out
    /// ([`PointsTo::exhausted`]); it is a strict superset of what
    /// [`AliasUses::compute`] marks, so detection stays sound, merely less
    /// precise.
    pub fn conservative(prog: &Program) -> AliasUses {
        let mut read_locals = BTreeSet::new();
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for bb in &f.blocks {
                for inst in &bb.insts {
                    if let Inst::AddrOf { place, .. } = inst {
                        if let Some(key) = place.var_key() {
                            read_locals.insert((fid, key.local()));
                        }
                    }
                }
            }
        }
        AliasUses { read_locals }
    }

    /// Whether `(func, local)` may be read through an alias.
    pub fn is_aliased_read(&self, func: FuncId, local: LocalId) -> bool {
        self.read_locals.contains(&(func, local))
    }

    /// All aliased-read locals of one function.
    pub fn aliased_locals(&self, func: FuncId) -> impl Iterator<Item = LocalId> + '_ {
        self.read_locals
            .iter()
            .filter(move |(f, _)| *f == func)
            .map(|(_, l)| *l)
    }

    /// Total number of `(function, local)` facts.
    pub fn len(&self) -> usize {
        self.read_locals.len()
    }

    /// Whether no local is aliased-read.
    pub fn is_empty(&self) -> bool {
        self.read_locals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> (Program, PointsTo, AliasUses) {
        let p = Program::build(&[("a.c", src)], &[]).unwrap();
        let pts = PointsTo::solve(&p);
        let uses = AliasUses::compute(&p, &pts);
        (p, pts, uses)
    }

    #[test]
    fn deref_read_marks_local() {
        let (p, _, uses) = facts("int f(void) { int x = 1; int *p = &x; return *p; }");
        let fid = p.func_id("f").unwrap();
        let x = p.func_by_name("f").unwrap().local_by_name("x").unwrap();
        assert!(uses.is_aliased_read(fid, x));
    }

    #[test]
    fn cross_function_deref_marks_callers_local() {
        let (p, _, uses) = facts(
            "int read_it(int *p) { return *p; }\n\
             int f(void) { int x = 7; return read_it(&x); }",
        );
        let fid = p.func_id("f").unwrap();
        let x = p.func_by_name("f").unwrap().local_by_name("x").unwrap();
        assert!(uses.is_aliased_read(fid, x));
    }

    #[test]
    fn pointer_to_extern_call_marks_local() {
        let (p, _, uses) = facts("void f(void) { int x = 1; libc_sink(&x); }");
        let fid = p.func_id("f").unwrap();
        let x = p.func_by_name("f").unwrap().local_by_name("x").unwrap();
        assert!(uses.is_aliased_read(fid, x));
    }

    #[test]
    fn unrelated_local_is_not_marked() {
        let (p, _, uses) =
            facts("int f(void) { int x = 1; int y = 2; int *p = &x; return *p + y; }");
        let fid = p.func_id("f").unwrap();
        let y = p.func_by_name("f").unwrap().local_by_name("y").unwrap();
        assert!(!uses.is_aliased_read(fid, y));
    }

    #[test]
    fn conservative_oracle_covers_precise_analysis() {
        let src = "int read_it(int *p) { return *p; }\n\
                   void write_it(int *p) { *p = 3; }\n\
                   int f(void) { int x = 7; int y = 1; write_it(&y); return read_it(&x) + y; }";
        let (p, _, precise) = facts(src);
        let cons = AliasUses::conservative(&p);
        let fid = p.func_id("f").unwrap();
        let f = p.func_by_name("f").unwrap();
        // Everything the precise analysis marks, the oracle marks too.
        for l in precise.aliased_locals(fid) {
            assert!(cons.is_aliased_read(fid, l));
        }
        // And it marks the write-only address-taken local the precise
        // analysis can skip.
        let y = f.local_by_name("y").unwrap();
        assert!(cons.is_aliased_read(fid, y));
    }

    #[test]
    fn write_only_pointer_does_not_mark_read_when_only_defined_callee_writes() {
        // `write_it` only stores through p; there is no deref *load*, and the
        // callee is defined, so x is not aliased-READ.
        let (p, _, uses) = facts(
            "void write_it(int *p) { *p = 3; }\n\
             void f(void) { int x = 1; write_it(&x); }",
        );
        let fid = p.func_id("f").unwrap();
        let x = p.func_by_name("f").unwrap().local_by_name("x").unwrap();
        assert!(!uses.is_aliased_read(fid, x));
    }
}
