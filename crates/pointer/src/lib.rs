//! # vc-pointer — field-sensitive Andersen's pointer analysis
//!
//! The SVF substitute of the ValueCheck reproduction. Provides:
//!
//! - [`andersen::PointsTo`] — inclusion-based, field-sensitive points-to
//!   analysis with on-the-fly call-graph construction (function pointers
//!   resolve during solving, as the paper's indirect-call handling requires);
//! - [`alias::AliasUses`] — the "may this local be read through a pointer?"
//!   query that suppresses aliased definitions from the unused-definition
//!   candidates (§4.1, "Pointer and Alias").

pub mod alias;
pub mod andersen;
pub mod demand;
pub mod fasthash;
pub mod node;

pub use alias::AliasUses;
pub use andersen::{
    Config,
    PointsTo, //
};
pub use demand::DemandPointer;
pub use node::MemObj;
