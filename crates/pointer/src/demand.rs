//! Demand-driven pointer queries over pointer-closed components.
//!
//! The eager path solved Andersen's constraints for the whole program up
//! front, even though detection only consults the points-to relation to
//! resolve indirect-call targets — and most programs (and all generated
//! workloads) have few or no function-pointer calls. [`DemandPointer`]
//! inverts that: construction only partitions the functions into
//! *pointer-closed components*, and a component is solved the first time a
//! candidate in it actually asks a question.
//!
//! Two functions land in the same component when a pointer fact could flow
//! between them in the whole-program solve. Cross-function constraints
//! arise only through shared named objects or call bindings, so the
//! partition unions each function with:
//!
//! - its own name and every direct callee name (covers parameter/return
//!   binding, and calls into the same extern — extern return objects are
//!   shared by name),
//! - every function name whose address it takes (`Operand::FuncAddr`),
//! - every global it touches (`Place::Global`/`GlobalField`),
//! - every string literal it references (string objects are shared).
//!
//! Solving a component with [`PointsTo::solve_funcs`] then reproduces the
//! whole-program relation restricted to that component: every constraint
//! the full solve would apply between two in-component functions is
//! generated, and no out-of-component constraint can reach an in-component
//! variable without crossing one of the unions above.
//!
//! Degradation mirrors the eager ladder: a budget-exhausted component
//! solve is discarded (an under-approximation must not feed call
//! resolution) and resolves to no targets; a panic inside a solve is
//! caught at this boundary (when isolation is on) and recorded for the
//! caller to turn into a failure record.

use std::{
    collections::{
        BTreeSet,
        HashMap, //
    },
    panic,
    sync::Mutex, //
};

use vc_ir::{
    ir::{
        Callee,
        Inst,
        Operand,
        Place,
        Terminator, //
    },
    FuncId,
    Program,
    TempId, //
};

use crate::andersen::{
    Config,
    PointsTo, //
};

/// Union-find over `funcs + named atoms`.
struct Uf {
    parent: Vec<u32>,
}

impl Uf {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

#[derive(Default)]
struct DemandState {
    /// Component root → solved relation; `None` records a degraded solve
    /// (budget exhaustion or caught panic) that resolves to no targets.
    solved: HashMap<u32, Option<PointsTo>>,
    degraded: bool,
    panic: Option<String>,
}

/// The demand pointer oracle: cheap to build, solves per component on
/// first query, safe to share across scan workers.
pub struct DemandPointer<'p> {
    prog: &'p Program,
    config: Config,
    isolate: bool,
    /// Function index → component root.
    comp: Vec<u32>,
    /// Component root → member functions (program order).
    members: HashMap<u32, BTreeSet<FuncId>>,
    state: Mutex<DemandState>,
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

impl<'p> DemandPointer<'p> {
    /// Partitions `prog` into pointer-closed components. No solving happens
    /// here; `isolate` controls whether later demand solves run behind a
    /// panic boundary.
    pub fn new(prog: &'p Program, config: Config, isolate: bool) -> Self {
        fn join<'a>(
            atoms: &mut HashMap<(u8, &'a str), u32>,
            uf: &mut Uf,
            fi: u32,
            kind: u8,
            name: &'a str,
        ) {
            let next = uf.make();
            let a = *atoms.entry((kind, name)).or_insert(next);
            uf.union(fi, a);
        }
        fn join_place<'a>(
            atoms: &mut HashMap<(u8, &'a str), u32>,
            uf: &mut Uf,
            fi: u32,
            p: &'a Place,
        ) {
            if let Place::Global(g) | Place::GlobalField(g, _) = p {
                join(atoms, uf, fi, 1, g.as_str());
            }
        }
        fn join_operand<'a>(
            atoms: &mut HashMap<(u8, &'a str), u32>,
            uf: &mut Uf,
            fi: u32,
            op: &'a Operand,
        ) {
            match op {
                Operand::FuncAddr(name) => join(atoms, uf, fi, 0, name.as_str()),
                Operand::Str(s) => join(atoms, uf, fi, 2, s.as_str()),
                Operand::Temp(_) | Operand::Const(_) | Operand::Null => {}
            }
        }

        let n = prog.funcs.len();
        // Fast path: a program with no indirect calls can never be asked a
        // question (`resolve_fn_ptr` is only reachable from an
        // `Callee::Indirect` site), so the partition — a whole-program
        // union-find hashing every call/global/string name — would be pure
        // overhead. One cheap allocation-free scan decides.
        let has_indirect = prog.funcs.iter().any(|f| {
            f.blocks.iter().any(|bb| {
                bb.insts.iter().any(|inst| {
                    matches!(
                        inst,
                        Inst::Call {
                            callee: Callee::Indirect(_),
                            ..
                        }
                    )
                })
            })
        });
        if !has_indirect {
            return Self {
                prog,
                config,
                isolate,
                comp: vec![u32::MAX; n],
                members: HashMap::new(),
                state: Mutex::new(DemandState::default()),
            };
        }
        let mut uf = Uf::new(n);
        let mut atoms: HashMap<(u8, &str), u32> = HashMap::new();
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fi = fi as u32;
            join(&mut atoms, &mut uf, fi, 0, f.name.as_str());
            for bb in &f.blocks {
                for inst in &bb.insts {
                    match inst {
                        Inst::Load { place, .. } | Inst::AddrOf { place, .. } => {
                            join_place(&mut atoms, &mut uf, fi, place);
                        }
                        Inst::Store { place, value, .. } => {
                            join_place(&mut atoms, &mut uf, fi, place);
                            join_operand(&mut atoms, &mut uf, fi, value);
                        }
                        Inst::Bin { lhs, rhs, .. } => {
                            join_operand(&mut atoms, &mut uf, fi, lhs);
                            join_operand(&mut atoms, &mut uf, fi, rhs);
                        }
                        Inst::Un { operand, .. } => join_operand(&mut atoms, &mut uf, fi, operand),
                        Inst::Call { callee, args, .. } => {
                            if let Callee::Direct(name) = callee {
                                join(&mut atoms, &mut uf, fi, 0, name.as_str());
                            }
                            for a in args {
                                join_operand(&mut atoms, &mut uf, fi, a);
                            }
                        }
                    }
                }
                match &bb.term {
                    Terminator::CondBr { cond, .. } => join_operand(&mut atoms, &mut uf, fi, cond),
                    Terminator::Ret { value: Some(v), .. } => {
                        join_operand(&mut atoms, &mut uf, fi, v)
                    }
                    _ => {}
                }
            }
        }
        let mut comp = Vec::with_capacity(n);
        let mut members: HashMap<u32, BTreeSet<FuncId>> = HashMap::new();
        for fi in 0..n {
            let root = uf.find(fi as u32);
            comp.push(root);
            members.entry(root).or_default().insert(FuncId(fi as u32));
        }
        Self {
            prog,
            config,
            isolate,
            comp,
            members,
            state: Mutex::new(DemandState::default()),
        }
    }

    /// The functions sharing `fid`'s pointer-closed component (empty on
    /// the indirect-free fast path, where no partition was built).
    pub fn members_of(&self, fid: FuncId) -> &BTreeSet<FuncId> {
        static EMPTY: BTreeSet<FuncId> = BTreeSet::new();
        self.members
            .get(&self.comp[fid.0 as usize])
            .unwrap_or(&EMPTY)
    }

    /// The function names a function-pointer temp may target, solving the
    /// temp's component on first demand.
    pub fn resolve_fn_ptr(&self, func: FuncId, temp: TempId) -> Vec<String> {
        let root = self.comp[func.0 as usize];
        let Some(funcs) = self.members.get(&root) else {
            // Indirect-free fast path: nothing to solve, nothing to target.
            return Vec::new();
        };
        let mut state = self.state.lock().unwrap();
        if !state.solved.contains_key(&root) {
            let entry = self.solve_component(funcs, &mut state);
            state.solved.insert(root, entry);
        }
        match state.solved.get(&root) {
            Some(Some(pts)) => pts.resolve_fn_ptr(func, temp),
            _ => Vec::new(),
        }
    }

    fn solve_component(
        &self,
        funcs: &BTreeSet<FuncId>,
        state: &mut DemandState,
    ) -> Option<PointsTo> {
        let mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_POINTER);
        let solved = if self.isolate {
            panic::catch_unwind(panic::AssertUnwindSafe(|| {
                PointsTo::solve_funcs(self.prog, funcs, self.config)
            }))
        } else {
            Ok(PointsTo::solve_funcs(self.prog, funcs, self.config))
        };
        mem.finish();
        match solved {
            Ok(pts) if pts.exhausted() => {
                // The partial relation under-approximates: resolving calls
                // from it could silently drop callees. Degrade to "no
                // targets" and let the caller flag the run.
                state.degraded = true;
                None
            }
            Ok(pts) => Some(pts),
            Err(payload) => {
                state.degraded = true;
                let msg = panic_text(payload);
                if state.panic.is_none() {
                    state.panic = Some(msg);
                }
                None
            }
        }
    }

    /// Whether any demand solve degraded (budget exhaustion or panic).
    pub fn degraded(&self) -> bool {
        self.state.lock().unwrap().degraded
    }

    /// The first caught panic message, if a demand solve poisoned.
    pub fn panic_message(&self) -> Option<String> {
        self.state.lock().unwrap().panic.clone()
    }

    /// Number of components solved so far (for tests).
    pub fn solved_components(&self) -> usize {
        self.state.lock().unwrap().solved.len()
    }

    /// Total number of pointer-closed components in the program.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        Program::build(&[("a.c", src)], &[]).unwrap()
    }

    /// A function with an indirect call, appended to partition-shape tests
    /// so the partition is actually built (an indirect-free program takes
    /// the fast path and never partitions at all).
    const TICKLE: &str = "int ha(void) { return 1; }\n\
                          void tickle(void) { int fp = ha; int r = fp(); use(r); }\n";

    #[test]
    fn unrelated_functions_stay_in_separate_components() {
        let p = prog(&format!(
            "void a(void) {{ int x = 1; use_a(x); }}\n\
             void b(void) {{ int y = 2; use_b(y); }}\n{TICKLE}",
        ));
        let d = DemandPointer::new(&p, Config::default(), true);
        // a/b call different externs and share nothing: distinct components.
        assert_ne!(d.comp[0], d.comp[1]);
    }

    #[test]
    fn callers_of_the_same_extern_share_a_component() {
        let p = prog(&format!(
            "int get(void);\n\
             void a(void) {{ int x = get(); use(x); }}\n\
             void b(void) {{ int y = get(); use(y); }}\n{TICKLE}",
        ));
        let d = DemandPointer::new(&p, Config::default(), true);
        let a = p.func_id("a").unwrap();
        let b = p.func_id("b").unwrap();
        assert!(d.members_of(a).contains(&b));
    }

    #[test]
    fn indirect_free_program_skips_partition_and_resolves_empty() {
        let p = prog(
            "void a(void) { int x = 1; use_a(x); }\n\
             void b(void) { int y = 2; use_b(y); }",
        );
        let d = DemandPointer::new(&p, Config::default(), true);
        assert_eq!(d.component_count(), 0, "no partition built");
        let a = p.func_id("a").unwrap();
        assert!(d.resolve_fn_ptr(a, TempId(0)).is_empty());
        assert!(d.members_of(a).is_empty());
        assert!(!d.degraded());
        assert_eq!(d.solved_components(), 0, "nothing was ever solved");
    }

    #[test]
    fn demand_resolution_matches_whole_program_solve() {
        let src = "int handler_a(int x) { return x; }\n\
                   int handler_b(int x) { return x + 1; }\n\
                   void dispatch(int which) {\n\
                     int *fp = handler_a;\n\
                     if (which) { fp = handler_b; }\n\
                     int r = fp(3);\n\
                     use(r);\n\
                   }";
        let p = prog(src);
        let eager = PointsTo::solve(&p);
        let demand = DemandPointer::new(&p, Config::default(), true);
        let dispatch = p.func_id("dispatch").unwrap();
        let f = p.func_by_name("dispatch").unwrap();
        for ti in 0..f.temp_origins.len() {
            let t = TempId(ti as u32);
            let mut a = eager.resolve_fn_ptr(dispatch, t);
            let mut b = demand.resolve_fn_ptr(dispatch, t);
            a.sort();
            b.sort();
            assert_eq!(a, b, "temp {ti} diverged");
        }
        assert!(!demand.degraded());
    }

    #[test]
    fn components_solve_lazily_and_once() {
        let src = "int ha(void) { return 1; }\n\
                   void f(int w) { int *fp = ha; int r = fp(); r = w; use(r); }\n\
                   void quiet(void) { int x = 1; use_q(x); }";
        let p = prog(src);
        let obs = vc_obs::ObsSession::new();
        let _g = obs.install();
        let d = DemandPointer::new(&p, Config::default(), true);
        assert_eq!(d.solved_components(), 0);
        assert_eq!(obs.registry.counter(vc_obs::names::POINTER_SOLVES), 0);
        let f = p.func_id("f").unwrap();
        let func = p.func_by_name("f").unwrap();
        for ti in 0..func.temp_origins.len() {
            d.resolve_fn_ptr(f, TempId(ti as u32));
            d.resolve_fn_ptr(f, TempId(ti as u32));
        }
        assert_eq!(d.solved_components(), 1);
        assert_eq!(obs.registry.counter(vc_obs::names::POINTER_SOLVES), 1);
    }

    #[test]
    fn exhausted_demand_solve_degrades_to_no_targets() {
        let src = "int ha(void) { return 1; }\n\
                   void f(int w) { int *fp = ha; int r = fp(); r = w; use(r); }";
        let p = prog(src);
        let d = DemandPointer::new(
            &p,
            Config {
                budget: vc_obs::Budget::steps(0),
                ..Config::default()
            },
            true,
        );
        let f = p.func_id("f").unwrap();
        let func = p.func_by_name("f").unwrap();
        for ti in 0..func.temp_origins.len() {
            assert!(d.resolve_fn_ptr(f, TempId(ti as u32)).is_empty());
        }
        assert!(d.degraded());
        assert!(d.panic_message().is_none());
    }
}
