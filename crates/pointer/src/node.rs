//! Node space of the pointer analysis: abstract memory objects and pointer
//! variables, with interning to dense ids.

use vc_ir::{
    FuncId,
    LocalId,
    TempId, //
};

use crate::fasthash::FastMap;

/// An abstract memory object (an allocation site in Andersen's terms).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemObj {
    /// The stack slot of a local variable.
    Local(FuncId, LocalId),
    /// Field `n` of a local aggregate (field-sensitive objects).
    LocalField(FuncId, LocalId, u32),
    /// A global variable's storage.
    Global(String),
    /// Field `n` of a global aggregate.
    GlobalField(String, u32),
    /// A function, as the target of function pointers.
    Func(String),
    /// A string literal (read-only data).
    Str(String),
    /// The opaque object returned by an unknown/extern function.
    Extern(String),
}

impl MemObj {
    /// The object representing field `n` of `self`.
    ///
    /// Field sensitivity is one level deep: fields of fields collapse into
    /// the field object itself, and opaque objects absorb their fields.
    pub fn field(&self, n: u32) -> Option<MemObj> {
        match self {
            MemObj::Local(f, l) => Some(MemObj::LocalField(*f, *l, n)),
            MemObj::Global(g) => Some(MemObj::GlobalField(g.clone(), n)),
            MemObj::LocalField(..) | MemObj::GlobalField(..) | MemObj::Extern(_) => {
                Some(self.clone())
            }
            MemObj::Func(_) | MemObj::Str(_) => None,
        }
    }

    /// The function name, if this object is a function.
    pub fn as_func(&self) -> Option<&str> {
        match self {
            MemObj::Func(n) => Some(n),
            _ => None,
        }
    }
}

/// A pointer-valued analysis variable: something that holds a points-to set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PtVar {
    /// An IR temp of a function.
    Temp(FuncId, TempId),
    /// The *contents* of a memory object (what is stored in it).
    Slot(u32),
}

/// Dense interner for objects and variables.
#[derive(Debug, Default)]
pub struct Interner {
    objs: Vec<MemObj>,
    obj_ids: FastMap<MemObj, u32>,
    vars: Vec<PtVar>,
    var_ids: FastMap<PtVar, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an object.
    pub fn obj(&mut self, o: MemObj) -> u32 {
        if let Some(&id) = self.obj_ids.get(&o) {
            return id;
        }
        let id = self.objs.len() as u32;
        self.objs.push(o.clone());
        self.obj_ids.insert(o, id);
        id
    }

    /// Interns a variable.
    pub fn var(&mut self, v: PtVar) -> u32 {
        if let Some(&id) = self.var_ids.get(&v) {
            return id;
        }
        let id = self.vars.len() as u32;
        self.vars.push(v.clone());
        self.var_ids.insert(v, id);
        id
    }

    /// The variable holding the contents of object `o`.
    pub fn slot_var(&mut self, o: u32) -> u32 {
        self.var(PtVar::Slot(o))
    }

    /// Resolves an object id.
    pub fn obj_ref(&self, id: u32) -> &MemObj {
        &self.objs[id as usize]
    }

    /// Resolves a variable id.
    pub fn var_ref(&self, id: u32) -> &PtVar {
        &self.vars[id as usize]
    }

    /// Looks up a variable id without interning.
    pub fn lookup_var(&self, v: &PtVar) -> Option<u32> {
        self.var_ids.get(v).copied()
    }

    /// Number of interned objects.
    pub fn num_objs(&self) -> usize {
        self.objs.len()
    }

    /// Number of interned variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over all interned objects with ids.
    pub fn iter_objs(&self) -> impl Iterator<Item = (u32, &MemObj)> {
        self.objs.iter().enumerate().map(|(i, o)| (i as u32, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.obj(MemObj::Global("g".into()));
        let b = i.obj(MemObj::Global("g".into()));
        assert_eq!(a, b);
        assert_eq!(i.num_objs(), 1);
    }

    #[test]
    fn field_of_local_is_field_object() {
        let o = MemObj::Local(FuncId(0), LocalId(1));
        assert_eq!(
            o.field(2),
            Some(MemObj::LocalField(FuncId(0), LocalId(1), 2))
        );
    }

    #[test]
    fn field_of_field_collapses() {
        let o = MemObj::LocalField(FuncId(0), LocalId(1), 2);
        assert_eq!(o.field(5), Some(o.clone()));
    }

    #[test]
    fn functions_have_no_fields() {
        assert_eq!(MemObj::Func("f".into()).field(0), None);
    }
}
