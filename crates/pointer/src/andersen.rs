//! Field-sensitive Andersen's (inclusion-based) pointer analysis.
//!
//! This is the SVF substitute: the paper uses field-sensitive Andersen's
//! analysis \[13\] "because of its better scalability compared to
//! flow-sensitive pointer analysis" (§4.1). The solver is a standard
//! worklist over inclusion constraints with on-the-fly call-graph
//! construction, so function pointers are resolved during solving and
//! indirect calls bind their arguments to the discovered callees.

use std::{
    collections::BTreeSet,
    rc::Rc, //
};

use vc_ir::{
    ir::{
        Callee,
        Inst,
        Operand,
        Place,
        TempOrigin,
        Terminator, //
    },
    FileId,
    FuncId,
    LocalId,
    Program,
    TempId, //
};

use crate::{
    fasthash::{FastMap, FastSet},
    node::{Interner, MemObj},
};

/// A value source feeding a constraint: a pointer variable or a literal
/// object address.
#[derive(Clone, Copy, Debug)]
enum Src {
    Var(u32),
    Obj(u32),
}

/// An indirect call site awaiting callee resolution.
#[derive(Clone, Debug)]
struct IndirectSite {
    caller: FuncId,
    args: Vec<Src>,
    dst: Option<u32>,
}

/// Analysis configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Field-sensitive object model (the paper's default). Disable for the
    /// field-sensitivity ablation bench.
    pub field_sensitive: bool,
    /// Work budget for the constraint solver. When the step cap or deadline
    /// runs out mid-solve the partial (under-approximate) solution is
    /// returned with [`PointsTo::exhausted`] set; callers are expected to
    /// fall back to a conservative alias oracle.
    pub budget: vc_obs::Budget,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            field_sensitive: true,
            budget: vc_obs::Budget::UNLIMITED,
        }
    }
}

/// The solved points-to relation and derived call graph.
#[derive(Debug)]
pub struct PointsTo {
    interner: Interner,
    pts: Vec<BTreeSet<u32>>,
    /// `(caller, callee-name)` edges, direct and resolved-indirect.
    call_edges: BTreeSet<(FuncId, String)>,
    /// Per-function temps of each parameter index, for binding.
    config: Config,
    /// Per-function base of the dense temp variable id space (see
    /// [`Solver::temp_var`]); `temp_base[f] + t` is the variable id of
    /// temp `t` in function `f`.
    temp_base: Vec<u32>,
    /// Whether the solver stopped on budget exhaustion: the relation is
    /// partial (an under-approximation) and must not be trusted for
    /// may-alias queries.
    exhausted: bool,
}

struct Solver<'p> {
    prog: &'p Program,
    config: Config,
    scope: Option<BTreeSet<FileId>>,
    func_scope: Option<BTreeSet<FuncId>>,
    interner: Interner,
    /// Dense variable ids without hashing: temps occupy `0..total_temps`
    /// (`temp_base[f] + t`), and the slot variable of object `o` is
    /// `total_temps + o` (object ids are themselves dense).
    temp_base: Vec<u32>,
    total_temps: u32,
    /// Memoized object ids of plain `MemObj::Local` objects, indexed by
    /// `local_base[f] + l` (`u32::MAX` = not yet interned). Avoids a hash
    /// of the enum for the hottest object kind during generation.
    local_base: Vec<u32>,
    local_obj: Vec<u32>,
    /// Memoized object ids of named objects (globals, function addresses,
    /// string literals, extern returns), keyed by name so repeat lookups
    /// neither clone the name into a fresh `MemObj` nor hash the enum.
    global_objs: FastMap<String, u32>,
    func_objs: FastMap<String, u32>,
    str_objs: FastMap<String, u32>,
    extern_objs: FastMap<String, u32>,
    pts: Vec<BTreeSet<u32>>,
    copy_edges: Vec<Vec<u32>>,
    copy_seen: FastSet<(u32, u32)>,
    loads: Vec<Vec<(u32, Option<u32>)>>,
    stores: Vec<Vec<(Src, Option<u32>)>>,
    geps: Vec<Vec<(u32, u32)>>,
    sites: Vec<IndirectSite>,
    sites_by_var: FastMap<u32, Vec<usize>>,
    bound: FastSet<(usize, String)>,
    worklist: Vec<u32>,
    queued: Vec<bool>,
    /// Worklist pops performed before reaching the fixpoint.
    propagations: u64,
    call_edges: BTreeSet<(FuncId, String)>,
    /// name -> (FuncId, param temps, return sources).
    func_info: FastMap<String, Rc<(FuncId, Vec<u32>, Vec<Src>)>>,
}

impl PointsTo {
    /// Runs the analysis over a whole program with the default (field-
    /// sensitive) configuration.
    pub fn solve(prog: &Program) -> PointsTo {
        Self::solve_with(prog, Config::default())
    }

    /// Runs the analysis with an explicit configuration.
    pub fn solve_with(prog: &Program, config: Config) -> PointsTo {
        Self::solve_impl(prog, config, None, None)
    }

    /// Runs the analysis restricted to functions defined in `files` — the
    /// paper's per-bitcode-file SVF usage (§7), and the incremental
    /// analyzer's fast path. Out-of-scope callees are treated as externs.
    pub fn solve_files(prog: &Program, files: &BTreeSet<FileId>) -> PointsTo {
        Self::solve_impl(prog, Config::default(), Some(files), None)
    }

    /// Runs the analysis restricted to an explicit function set — the
    /// demand-driven per-component solve (see `demand`). Out-of-scope
    /// callees are treated as externs; the caller is responsible for
    /// passing a set closed under pointer-relevant interactions.
    pub fn solve_funcs(prog: &Program, funcs: &BTreeSet<FuncId>, config: Config) -> PointsTo {
        Self::solve_impl(prog, config, None, Some(funcs))
    }

    fn solve_impl(
        prog: &Program,
        config: Config,
        scope: Option<&BTreeSet<FileId>>,
        func_scope: Option<&BTreeSet<FuncId>>,
    ) -> PointsTo {
        let span = vc_obs::span("pointer.solve", "pointer");
        let mut solver = Solver::new(prog, config);
        solver.scope = scope.cloned();
        solver.func_scope = func_scope.cloned();
        solver.generate();
        let exhausted = solver.run();
        span.end();
        let out = PointsTo {
            interner: solver.interner,
            pts: solver.pts,
            call_edges: solver.call_edges,
            config,
            temp_base: solver.temp_base,
            exhausted,
        };
        if exhausted {
            vc_obs::counter_inc(vc_obs::names::POINTER_BUDGET_EXHAUSTED);
        }
        vc_obs::counter_inc(vc_obs::names::POINTER_SOLVES);
        vc_obs::counter_add(vc_obs::names::POINTER_PROPAGATIONS, solver.propagations);
        vc_obs::counter_add(vc_obs::names::POINTER_NODES, out.pts.len() as u64);
        vc_obs::counter_add(
            vc_obs::names::POINTER_COPY_EDGES,
            solver.copy_seen.len() as u64,
        );
        vc_obs::counter_add(vc_obs::names::POINTER_FACTS, out.fact_count() as u64);
        out
    }

    /// The points-to set of a temp, as memory objects.
    pub fn points_to(&self, func: FuncId, temp: TempId) -> Vec<&MemObj> {
        let v = match self.temp_base.get(func.0 as usize) {
            Some(base) => (base + temp.0) as usize,
            None => return Vec::new(),
        };
        match self.pts.get(v) {
            Some(set) => set.iter().map(|&o| self.interner.obj_ref(o)).collect(),
            None => Vec::new(),
        }
    }

    /// The function names a function-pointer temp may target.
    pub fn resolve_fn_ptr(&self, func: FuncId, temp: TempId) -> Vec<String> {
        self.points_to(func, temp)
            .into_iter()
            .filter_map(|o| o.as_func().map(str::to_string))
            .collect()
    }

    /// Call-graph edges `(caller, callee name)`, direct and indirect.
    pub fn call_edges(&self) -> &BTreeSet<(FuncId, String)> {
        &self.call_edges
    }

    /// Locals of `func` whose storage appears in some points-to set: they
    /// are "referenced by pointers" in the paper's sense and must not be
    /// reported as unused definitions.
    pub fn pointed_to_locals(&self, func: FuncId) -> BTreeSet<LocalId> {
        let mut out = BTreeSet::new();
        for set in &self.pts {
            for &o in set {
                match self.interner.obj_ref(o) {
                    MemObj::Local(f, l) | MemObj::LocalField(f, l, _) if *f == func => {
                        out.insert(*l);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Whether the analysis ran field-sensitively.
    pub fn is_field_sensitive(&self) -> bool {
        self.config.field_sensitive
    }

    /// Whether the solver stopped on budget exhaustion. An exhausted
    /// solution under-approximates the points-to relation; may-alias
    /// consumers must fall back to a conservative oracle (see
    /// `AliasUses::conservative`).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Total number of points-to facts (for scalability reporting).
    pub fn fact_count(&self) -> usize {
        self.pts.iter().map(|s| s.len()).sum()
    }
}

impl<'p> Solver<'p> {
    fn new(prog: &'p Program, config: Config) -> Self {
        let mut temp_base = Vec::with_capacity(prog.funcs.len());
        let mut local_base = Vec::with_capacity(prog.funcs.len());
        let mut total_temps: u32 = 0;
        let mut total_locals: u32 = 0;
        for f in &prog.funcs {
            temp_base.push(total_temps);
            local_base.push(total_locals);
            total_temps += f.temp_origins.len() as u32;
            total_locals += f.locals.len() as u32;
        }
        Self {
            prog,
            config,
            scope: None,
            func_scope: None,
            interner: Interner::new(),
            temp_base,
            total_temps,
            local_base,
            local_obj: vec![u32::MAX; total_locals as usize],
            global_objs: FastMap::default(),
            func_objs: FastMap::default(),
            str_objs: FastMap::default(),
            extern_objs: FastMap::default(),
            pts: Vec::new(),
            copy_edges: Vec::new(),
            copy_seen: FastSet::default(),
            loads: Vec::new(),
            stores: Vec::new(),
            geps: Vec::new(),
            sites: Vec::new(),
            sites_by_var: FastMap::default(),
            bound: FastSet::default(),
            worklist: Vec::new(),
            queued: Vec::new(),
            propagations: 0,
            call_edges: BTreeSet::new(),
            func_info: FastMap::default(),
        }
    }

    fn ensure_var(&mut self, v: u32) {
        let n = (v as usize) + 1;
        if self.pts.len() < n {
            self.pts.resize_with(n, BTreeSet::new);
            self.copy_edges.resize_with(n, Vec::new);
            self.loads.resize_with(n, Vec::new);
            self.stores.resize_with(n, Vec::new);
            self.geps.resize_with(n, Vec::new);
            self.queued.resize(n, false);
        }
    }

    fn temp_var(&mut self, f: FuncId, t: TempId) -> u32 {
        let id = self.temp_base[f.0 as usize] + t.0;
        self.ensure_var(id);
        id
    }

    fn slot_of(&mut self, o: u32) -> u32 {
        let id = self.total_temps + o;
        self.ensure_var(id);
        id
    }

    fn global_obj(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.global_objs.get(name) {
            return id;
        }
        let id = self.interner.obj(MemObj::Global(name.to_string()));
        self.global_objs.insert(name.to_string(), id);
        id
    }

    fn func_obj(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.func_objs.get(name) {
            return id;
        }
        let id = self.interner.obj(MemObj::Func(name.to_string()));
        self.func_objs.insert(name.to_string(), id);
        id
    }

    fn str_obj(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.str_objs.get(s) {
            return id;
        }
        let id = self.interner.obj(MemObj::Str(s.to_string()));
        self.str_objs.insert(s.to_string(), id);
        id
    }

    fn extern_obj(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.extern_objs.get(name) {
            return id;
        }
        let id = self.interner.obj(MemObj::Extern(name.to_string()));
        self.extern_objs.insert(name.to_string(), id);
        id
    }

    fn local_obj(&mut self, f: FuncId, l: LocalId) -> u32 {
        let idx = (self.local_base[f.0 as usize] + l.0) as usize;
        let memo = self.local_obj[idx];
        if memo != u32::MAX {
            return memo;
        }
        let id = self.interner.obj(MemObj::Local(f, l));
        self.local_obj[idx] = id;
        id
    }

    fn obj_field(&mut self, o: u32, n: u32) -> Option<u32> {
        if !self.config.field_sensitive {
            return Some(o);
        }
        let base = self.interner.obj_ref(o).clone();
        base.field(n).map(|f| self.interner.obj(f))
    }

    fn enqueue(&mut self, v: u32) {
        if !self.queued[v as usize] {
            self.queued[v as usize] = true;
            self.worklist.push(v);
        }
    }

    fn add_addr(&mut self, dst: u32, obj: u32) {
        if self.pts[dst as usize].insert(obj) {
            self.enqueue(dst);
        }
    }

    fn add_copy(&mut self, src: u32, dst: u32) {
        if src == dst || !self.copy_seen.insert((src, dst)) {
            return;
        }
        self.copy_edges[src as usize].push(dst);
        // Propagate what src already has.
        let items: Vec<u32> = self.pts[src as usize].iter().copied().collect();
        let mut changed = false;
        for o in items {
            changed |= self.pts[dst as usize].insert(o);
        }
        if changed {
            self.enqueue(dst);
        }
    }

    fn add_src(&mut self, src: Src, dst: u32) {
        match src {
            Src::Var(v) => self.add_copy(v, dst),
            Src::Obj(o) => self.add_addr(dst, o),
        }
    }

    /// Converts an operand to a constraint source, if it carries a pointer.
    fn operand_src(&mut self, f: FuncId, op: &Operand) -> Option<Src> {
        match op {
            Operand::Temp(t) => Some(Src::Var(self.temp_var(f, *t))),
            Operand::FuncAddr(n) => {
                let o = self.func_obj(n);
                Some(Src::Obj(o))
            }
            Operand::Str(s) => {
                let o = self.str_obj(s);
                Some(Src::Obj(o))
            }
            Operand::Const(_) | Operand::Null => None,
        }
    }

    /// The object a direct place denotes, if any.
    fn place_obj(&mut self, f: FuncId, p: &Place) -> Option<u32> {
        match p {
            Place::Local(l) => Some(self.local_obj(f, *l)),
            Place::Field(l, n) => {
                let base = self.local_obj(f, *l);
                self.obj_field(base, *n)
            }
            Place::Global(g) => Some(self.global_obj(g)),
            Place::GlobalField(g, n) => {
                let base = self.global_obj(g);
                self.obj_field(base, *n)
            }
            Place::Deref(_) | Place::DerefField(_, _) => None,
        }
    }

    // ----- Constraint generation ------------------------------------------

    fn in_scope(&self, fid: FuncId, f: &vc_ir::Function) -> bool {
        if let Some(s) = &self.scope {
            if !s.contains(&f.file) {
                return false;
            }
        }
        if let Some(s) = &self.func_scope {
            if !s.contains(&fid) {
                return false;
            }
        }
        true
    }

    fn generate(&mut self) {
        // Collect per-function info first: param temps and return sources.
        for (fi, f) in self.prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            if !self.in_scope(fid, f) {
                continue;
            }
            let mut param_temps = vec![u32::MAX; f.params.len()];
            for (ti, origin) in f.temp_origins.iter().enumerate() {
                if let TempOrigin::Param(i) = origin {
                    if *i < param_temps.len() {
                        param_temps[*i] = self.temp_var(fid, TempId(ti as u32));
                    }
                }
            }
            let mut rets = Vec::new();
            for bb in &f.blocks {
                if let Terminator::Ret { value: Some(v), .. } = &bb.term {
                    if let Some(src) = self.operand_src(fid, v) {
                        rets.push(src);
                    }
                }
            }
            self.func_info
                .insert(f.name.clone(), Rc::new((fid, param_temps, rets)));
        }

        for (fi, f) in self.prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            if !self.in_scope(fid, f) {
                continue;
            }
            for bb in &f.blocks {
                for inst in &bb.insts {
                    self.gen_inst(fid, inst);
                }
            }
        }
    }

    fn gen_inst(&mut self, fid: FuncId, inst: &Inst) {
        match inst {
            Inst::AddrOf { dst, place, .. } => {
                let d = self.temp_var(fid, *dst);
                match place {
                    Place::Deref(q) => {
                        // `&*q` is `q`.
                        let qv = self.temp_var(fid, *q);
                        self.add_copy(qv, d);
                    }
                    Place::DerefField(q, n) => {
                        // `&q->f`: gep over pts(q).
                        let qv = self.temp_var(fid, *q);
                        self.geps[qv as usize].push((d, *n));
                        self.enqueue(qv);
                    }
                    direct => {
                        if let Some(o) = self.place_obj(fid, direct) {
                            self.add_addr(d, o);
                        }
                    }
                }
            }
            Inst::Load { dst, place, .. } => {
                let d = self.temp_var(fid, *dst);
                match place {
                    Place::Deref(q) => {
                        let qv = self.temp_var(fid, *q);
                        self.loads[qv as usize].push((d, None));
                        self.enqueue(qv);
                    }
                    Place::DerefField(q, n) => {
                        let qv = self.temp_var(fid, *q);
                        self.loads[qv as usize].push((d, Some(*n)));
                        self.enqueue(qv);
                    }
                    direct => {
                        if let Some(o) = self.place_obj(fid, direct) {
                            let s = self.slot_of(o);
                            self.add_copy(s, d);
                        }
                    }
                }
            }
            Inst::Store { place, value, .. } => {
                let Some(src) = self.operand_src(fid, value) else {
                    return;
                };
                match place {
                    Place::Deref(q) => {
                        let qv = self.temp_var(fid, *q);
                        self.stores[qv as usize].push((src, None));
                        self.enqueue(qv);
                    }
                    Place::DerefField(q, n) => {
                        let qv = self.temp_var(fid, *q);
                        self.stores[qv as usize].push((src, Some(*n)));
                        self.enqueue(qv);
                    }
                    direct => {
                        if let Some(o) = self.place_obj(fid, direct) {
                            let s = self.slot_of(o);
                            self.add_src(src, s);
                        }
                    }
                }
            }
            Inst::Call {
                dst, callee, args, ..
            } => {
                // Positional sources: keep alignment with parameter indices.
                let mut positional = Vec::with_capacity(args.len());
                for a in args {
                    positional.push(self.operand_src(fid, a));
                }
                match callee {
                    Callee::Direct(name) => {
                        self.call_edges.insert((fid, name.clone()));
                        let dv = dst.map(|t| self.temp_var(fid, t));
                        self.bind_direct(fid, name, &positional, dv);
                    }
                    Callee::Indirect(t) => {
                        let cv = self.temp_var(fid, *t);
                        let dv = dst.map(|t| self.temp_var(fid, t));
                        let site = IndirectSite {
                            caller: fid,
                            args: positional.into_iter().flatten().collect(),
                            dst: dv,
                        };
                        let idx = self.sites.len();
                        self.sites.push(site);
                        self.sites_by_var.entry(cv).or_default().push(idx);
                        self.enqueue(cv);
                    }
                }
            }
            Inst::Bin { .. } | Inst::Un { .. } => {
                // Pointer arithmetic (`p + 1`) keeps pointing at the same
                // objects; propagate through the result.
                if let Inst::Bin { dst, lhs, rhs, .. } = inst {
                    let d = self.temp_var(fid, *dst);
                    for op in [lhs, rhs] {
                        if let Some(Src::Var(v)) = self.operand_src(fid, op) {
                            self.add_copy(v, d);
                        }
                    }
                }
            }
        }
    }

    fn bind_direct(&mut self, caller: FuncId, name: &str, args: &[Option<Src>], dst: Option<u32>) {
        if let Some(info) = self.func_info.get(name).cloned() {
            let (_fid, param_temps, rets) = &*info;
            for (i, arg) in args.iter().enumerate() {
                if let (Some(src), Some(&pv)) = (arg, param_temps.get(i)) {
                    if pv != u32::MAX {
                        self.add_src(*src, pv);
                    }
                }
            }
            if let Some(d) = dst {
                for &r in rets {
                    self.add_src(r, d);
                }
            }
        } else if let Some(d) = dst {
            // Unknown function: returns an opaque object.
            let o = self.extern_obj(name);
            self.add_addr(d, o);
        }
        let _ = caller;
    }

    // ----- Solving ---------------------------------------------------------

    /// Runs the fixpoint loop; returns whether the work budget ran out
    /// before convergence (in which case the relation is partial).
    fn run(&mut self) -> bool {
        let mut meter = vc_obs::BudgetMeter::start(self.config.budget);
        while let Some(v) = self.worklist.pop() {
            if !meter.tick() {
                return true;
            }
            self.queued[v as usize] = false;
            self.propagations += 1;
            let objs: Vec<u32> = self.pts[v as usize].iter().copied().collect();

            // Load constraints: d ⊇ *(v[.field]).
            let loads = self.loads[v as usize].clone();
            for (d, field) in loads {
                for &o in &objs {
                    let target = match field {
                        Some(n) => self.obj_field(o, n),
                        None => Some(o),
                    };
                    if let Some(t) = target {
                        let s = self.slot_of(t);
                        self.add_copy(s, d);
                    }
                }
            }
            // Store constraints: *(v[.field]) ⊇ src.
            let stores = self.stores[v as usize].clone();
            for (src, field) in stores {
                for &o in &objs {
                    let target = match field {
                        Some(n) => self.obj_field(o, n),
                        None => Some(o),
                    };
                    if let Some(t) = target {
                        let s = self.slot_of(t);
                        self.add_src(src, s);
                    }
                }
            }
            // Gep constraints: d ⊇ field(v, n).
            let geps = self.geps[v as usize].clone();
            for (d, n) in geps {
                for &o in &objs {
                    if let Some(fo) = self.obj_field(o, n) {
                        self.add_addr(d, fo);
                    }
                }
            }
            // Indirect call sites on this variable.
            if let Some(site_ids) = self.sites_by_var.get(&v).cloned() {
                for sid in site_ids {
                    let site = self.sites[sid].clone();
                    let funcs: Vec<String> = objs
                        .iter()
                        .filter_map(|&o| self.interner.obj_ref(o).as_func().map(str::to_string))
                        .collect();
                    for name in funcs {
                        if self.bound.insert((sid, name.clone())) {
                            self.call_edges.insert((site.caller, name.clone()));
                            let args: Vec<Option<Src>> =
                                site.args.iter().copied().map(Some).collect();
                            self.bind_direct(site.caller, &name, &args, site.dst);
                        }
                    }
                }
            }
            // Copy edges.
            let edges = self.copy_edges[v as usize].clone();
            for d in edges {
                let mut changed = false;
                let items: Vec<u32> = self.pts[v as usize].iter().copied().collect();
                for o in items {
                    changed |= self.pts[d as usize].insert(o);
                }
                if changed {
                    self.enqueue(d);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        Program::build(&[("a.c", src)], &[]).unwrap()
    }

    fn temp_pts_names(p: &Program, func: &str, pts: &PointsTo) -> Vec<String> {
        let fid = p.func_id(func).unwrap();
        let f = p.func_by_name(func).unwrap();
        let mut out = Vec::new();
        for ti in 0..f.temp_origins.len() {
            for o in pts.points_to(fid, TempId(ti as u32)) {
                out.push(format!("{o:?}"));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn addr_of_points_to_local() {
        let p = prog("void f(void) { int x = 1; int *p = &x; use(p); }");
        let pts = PointsTo::solve(&p);
        let names = temp_pts_names(&p, "f", &pts);
        assert!(
            names.iter().any(|n| n.contains("Local")),
            "no local object found: {names:?}"
        );
        let fid = p.func_id("f").unwrap();
        let f = p.func_by_name("f").unwrap();
        let x = f.local_by_name("x").unwrap();
        assert!(pts.pointed_to_locals(fid).contains(&x));
    }

    #[test]
    fn copies_propagate() {
        let p = prog("void f(void) { int x = 1; int *p = &x; int *q = p; *q = 2; }");
        let pts = PointsTo::solve(&p);
        let fid = p.func_id("f").unwrap();
        let f = p.func_by_name("f").unwrap();
        let x = f.local_by_name("x").unwrap();
        // q points to x, so x is pointed-to.
        assert!(pts.pointed_to_locals(fid).contains(&x));
    }

    #[test]
    fn function_pointers_resolve() {
        let p = prog(
            "int handler_a(int x) { return x; }\n\
             int handler_b(int x) { return x + 1; }\n\
             void dispatch(int which) {\n\
               int *fp = handler_a;\n\
               if (which) { fp = handler_b; }\n\
               fp(3);\n\
             }",
        );
        let pts = PointsTo::solve(&p);
        let edges = pts.call_edges();
        let d = p.func_id("dispatch").unwrap();
        assert!(edges.contains(&(d, "handler_a".to_string())));
        assert!(edges.contains(&(d, "handler_b".to_string())));
    }

    #[test]
    fn args_flow_into_params() {
        let p = prog(
            "void callee(int *p) { *p = 3; }\n\
             void caller(void) { int x = 0; callee(&x); }",
        );
        let pts = PointsTo::solve(&p);
        // Inside callee, param p points to caller's x.
        let callee = p.func_id("callee").unwrap();
        let caller_f = p.func_id("caller").unwrap();
        let f = p.func_by_name("callee").unwrap();
        // The ParamInit temp (origin Param(0)) must point to caller::x.
        let pt = f
            .temp_origins
            .iter()
            .position(|o| matches!(o, TempOrigin::Param(0)))
            .unwrap();
        let objs = pts.points_to(callee, TempId(pt as u32));
        assert!(
            objs.iter()
                .any(|o| matches!(o, MemObj::Local(f, _) if *f == caller_f)),
            "param does not point at caller local: {objs:?}"
        );
    }

    #[test]
    fn fields_are_distinguished_when_sensitive() {
        let p = prog(
            "struct s { int a; int b; };\n\
             void f(void) { struct s v; int *pa = &v.a; int *pb = &v.b; sink(pa, pb); }",
        );
        let pts = PointsTo::solve(&p);
        let fid = p.func_id("f").unwrap();
        let f = p.func_by_name("f").unwrap();
        // Find the two AddrOf temps and check their objects differ.
        let mut field_objs = Vec::new();
        for (ti, origin) in f.temp_origins.iter().enumerate() {
            if matches!(origin, TempOrigin::AddrOf(Place::Field(_, _))) {
                for o in pts.points_to(fid, TempId(ti as u32)) {
                    field_objs.push(format!("{o:?}"));
                }
            }
        }
        field_objs.sort();
        field_objs.dedup();
        assert_eq!(field_objs.len(), 2, "fields collapsed: {field_objs:?}");
    }

    #[test]
    fn field_insensitive_mode_collapses() {
        let p = prog(
            "struct s { int a; int b; };\n\
             void f(void) { struct s v; int *pa = &v.a; int *pb = &v.b; sink(pa, pb); }",
        );
        let pts = PointsTo::solve_with(
            &p,
            Config {
                field_sensitive: false,
                ..Config::default()
            },
        );
        let fid = p.func_id("f").unwrap();
        let f = p.func_by_name("f").unwrap();
        let mut field_objs = Vec::new();
        for (ti, origin) in f.temp_origins.iter().enumerate() {
            if matches!(origin, TempOrigin::AddrOf(Place::Field(_, _))) {
                for o in pts.points_to(fid, TempId(ti as u32)) {
                    field_objs.push(format!("{o:?}"));
                }
            }
        }
        field_objs.sort();
        field_objs.dedup();
        assert_eq!(field_objs.len(), 1, "expected collapse: {field_objs:?}");
    }

    #[test]
    fn solver_reports_metrics() {
        let obs = vc_obs::ObsSession::new();
        let p = prog("void f(void) { int x = 1; int *p = &x; int *q = p; *q = 2; }");
        let pts = {
            let _g = obs.install();
            PointsTo::solve(&p)
        };
        let reg = &obs.registry;
        assert_eq!(reg.counter(vc_obs::names::POINTER_SOLVES), 1);
        assert!(reg.counter(vc_obs::names::POINTER_PROPAGATIONS) > 0);
        assert!(reg.counter(vc_obs::names::POINTER_NODES) > 0);
        assert_eq!(
            reg.counter(vc_obs::names::POINTER_FACTS),
            pts.fact_count() as u64
        );
        let spans = obs.tracer.records();
        assert!(spans.iter().any(|s| s.name == "pointer.solve"));
    }

    #[test]
    fn extern_calls_return_opaque_objects() {
        let p = prog("char *strdup(char *s);\nvoid f(void) { char *p = strdup(\"x\"); use(p); }");
        let pts = PointsTo::solve(&p);
        let names = temp_pts_names(&p, "f", &pts);
        assert!(
            names.iter().any(|n| n.contains("Extern")),
            "no extern object: {names:?}"
        );
    }

    #[test]
    fn monotone_growth_no_removal() {
        // Solve twice; identical programs give identical fact counts
        // (determinism), and facts satisfy every copy edge (a ⊇ b).
        let src = "void g(int *p) { *p = 1; }\n\
                   void f(int c) { int x = 0; int y = 0; int *p = &x; if (c) { p = &y; } g(p); }";
        let p1 = prog(src);
        let p2 = prog(src);
        let a = PointsTo::solve(&p1);
        let b = PointsTo::solve(&p2);
        assert_eq!(a.fact_count(), b.fact_count());
        assert!(a.fact_count() > 0);
    }

    #[test]
    fn returned_pointers_flow_to_caller() {
        let p = prog(
            "int g_buf = 0;\n\
             int *get(void) { return &g_buf; }\n\
             void f(void) { int *p = get(); *p = 1; }",
        );
        let pts = PointsTo::solve(&p);
        let names = temp_pts_names(&p, "f", &pts);
        assert!(
            names.iter().any(|n| n.contains("Global")),
            "no global flow: {names:?}"
        );
    }
}
