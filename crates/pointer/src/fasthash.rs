//! A fast, deterministic hasher for the solver's hot maps.
//!
//! The constraint generator performs hundreds of thousands of lookups on
//! tiny keys (u32 pairs, short names); std's default SipHash dominates
//! that profile. This is an FxHash-style multiply-rotate hasher: not
//! DoS-resistant (irrelevant — keys come from the parsed program, and
//! iteration order is never observable in analysis results), but several
//! times faster on small keys and fully deterministic across runs.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (the rustc FxHash recipe).
#[derive(Default)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastMap::default();
        a.insert((1u32, 2u32), "x");
        assert_eq!(a.get(&(1, 2)), Some(&"x"));
        let mut h1 = FastHasher::default();
        h1.write(b"hello world");
        let mut h2 = FastHasher::default();
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn tail_bytes_distinguish_lengths() {
        let mut h1 = FastHasher::default();
        h1.write(b"ab");
        let mut h2 = FastHasher::default();
        h2.write(b"ab\0");
        assert_ne!(h1.finish(), h2.finish());
    }
}
