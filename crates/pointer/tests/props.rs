//! Property tests for the pointer analysis: determinism, address-of
//! containment, and consistency between field-sensitive and insensitive
//! modes on arbitrary generated programs.
//!
//! Each property runs as a deterministic loop over cases drawn from a
//! seeded [`SplitMix64`]; a failing case prints its seed so it can be
//! replayed exactly.

use vc_ir::{
    ir::{
        Inst,
        TempOrigin, //
    },
    testing::source_from_seed,
    FuncId, Program, TempId,
};
use vc_obs::SplitMix64;
use vc_pointer::{
    AliasUses,
    Config,
    PointsTo, //
};

fn build(seed: u64) -> Program {
    let src = source_from_seed(seed);
    Program::build(&[("g.c", src.as_str())], &[]).expect("generated source builds")
}

/// Solving the same program twice yields identical fact counts and call
/// graphs (determinism).
#[test]
fn solving_is_deterministic() {
    let mut rng = SplitMix64::new(0xA1);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let a = PointsTo::solve(&prog);
        let b = PointsTo::solve(&prog);
        assert_eq!(a.fact_count(), b.fact_count(), "seed {seed}");
        assert_eq!(a.call_edges(), b.call_edges(), "seed {seed}");
    }
}

/// The result temp of every `&place` instruction points at the place's
/// object (address-of containment).
#[test]
fn addr_of_containment() {
    let mut rng = SplitMix64::new(0xA2);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let pts = PointsTo::solve(&prog);
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for bb in &f.blocks {
                for inst in &bb.insts {
                    if let Inst::AddrOf { dst, place, .. } = inst {
                        // Direct places must appear in the points-to set.
                        if place.var_key().is_some() {
                            assert!(
                                !pts.points_to(fid, *dst).is_empty(),
                                "seed {seed}: &{place:?} has empty points-to set"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Field-insensitive mode never resolves *fewer* function-pointer
/// targets than field-sensitive mode (it only merges objects).
#[test]
fn field_insensitive_is_coarser() {
    let mut rng = SplitMix64::new(0xA3);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let fs = PointsTo::solve_with(
            &prog,
            Config {
                field_sensitive: true,
                ..Config::default()
            },
        );
        let fi = PointsTo::solve_with(
            &prog,
            Config {
                field_sensitive: false,
                ..Config::default()
            },
        );
        for (f_idx, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(f_idx as u32);
            for (t_idx, origin) in f.temp_origins.iter().enumerate() {
                if matches!(origin, TempOrigin::Load(_)) {
                    let t = TempId(t_idx as u32);
                    let fs_funcs = fs.resolve_fn_ptr(fid, t).len();
                    let fi_funcs = fi.resolve_fn_ptr(fid, t).len();
                    assert!(
                        fi_funcs >= fs_funcs,
                        "seed {seed}: insensitive mode lost targets at t{t_idx} in {}",
                        f.name
                    );
                }
            }
        }
    }
}

/// Alias-use facts only name locals that actually exist.
#[test]
fn alias_uses_reference_real_locals() {
    let mut rng = SplitMix64::new(0xA4);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let prog = build(seed);
        let pts = PointsTo::solve(&prog);
        let uses = AliasUses::compute(&prog, &pts);
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for l in uses.aliased_locals(fid) {
                assert!((l.0 as usize) < f.locals.len(), "seed {seed}");
            }
        }
    }
}
