//! Property tests for the pointer analysis: determinism, address-of
//! containment, and consistency between field-sensitive and insensitive
//! modes on arbitrary generated programs.

use proptest::prelude::*;
use vc_ir::{
    ir::{
        Inst,
        TempOrigin, //
    },
    testing::source_from_seed,
    FuncId,
    Program,
    TempId,
};
use vc_pointer::{
    AliasUses,
    Config,
    PointsTo, //
};

fn build(seed: u64) -> Program {
    let src = source_from_seed(seed);
    Program::build(&[("g.c", src.as_str())], &[]).expect("generated source builds")
}

proptest! {
    /// Solving the same program twice yields identical fact counts and call
    /// graphs (determinism).
    #[test]
    fn solving_is_deterministic(seed in any::<u64>()) {
        let prog = build(seed);
        let a = PointsTo::solve(&prog);
        let b = PointsTo::solve(&prog);
        prop_assert_eq!(a.fact_count(), b.fact_count());
        prop_assert_eq!(a.call_edges(), b.call_edges());
    }

    /// The result temp of every `&place` instruction points at the place's
    /// object (address-of containment).
    #[test]
    fn addr_of_containment(seed in any::<u64>()) {
        let prog = build(seed);
        let pts = PointsTo::solve(&prog);
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for bb in &f.blocks {
                for inst in &bb.insts {
                    if let Inst::AddrOf { dst, place, .. } = inst {
                        // Direct places must appear in the points-to set.
                        if place.var_key().is_some() {
                            prop_assert!(
                                !pts.points_to(fid, *dst).is_empty(),
                                "&{place:?} has empty points-to set"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Field-insensitive mode never resolves *fewer* function-pointer
    /// targets than field-sensitive mode (it only merges objects).
    #[test]
    fn field_insensitive_is_coarser(seed in any::<u64>()) {
        let prog = build(seed);
        let fs = PointsTo::solve_with(&prog, Config { field_sensitive: true });
        let fi = PointsTo::solve_with(&prog, Config { field_sensitive: false });
        for (f_idx, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(f_idx as u32);
            for (t_idx, origin) in f.temp_origins.iter().enumerate() {
                if matches!(origin, TempOrigin::Load(_)) {
                    let t = TempId(t_idx as u32);
                    let fs_funcs = fs.resolve_fn_ptr(fid, t).len();
                    let fi_funcs = fi.resolve_fn_ptr(fid, t).len();
                    prop_assert!(fi_funcs >= fs_funcs,
                        "insensitive mode lost targets at t{t_idx} in {}", f.name);
                }
            }
        }
    }

    /// Alias-use facts only name locals that actually exist.
    #[test]
    fn alias_uses_reference_real_locals(seed in any::<u64>()) {
        let prog = build(seed);
        let pts = PointsTo::solve(&prog);
        let uses = AliasUses::compute(&prog, &pts);
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for l in uses.aliased_locals(fid) {
                prop_assert!((l.0 as usize) < f.locals.len());
            }
        }
    }
}
