//! `perf` — the deterministic scaled perf run behind the CI observatory.
//!
//! ```text
//! Usage: perf [--scale S] [--runs N] [--out DIR]
//!
//!   --scale S   workload scale (default 0.05; 1.0 = paper sizes)
//!   --runs N    timed runs per case, median reported (default 5)
//!   --out DIR   where BENCH_scan.json / BENCH_stages.json go (default .)
//! ```
//!
//! Run `perfgate` afterwards to compare the output against the committed
//! `bench/baseline.json`.

use std::path::PathBuf;

use vc_bench::perf::{run_perf, PerfConfig};

fn main() {
    let mut config = PerfConfig::default();
    let mut out = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                config.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--runs" => {
                config.runs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a number"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                eprintln!("Usage: perf [--scale S] [--runs N] [--out DIR]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let (scan, stages) = run_perf(&config);
    for report in [&scan, &stages] {
        let path = out.join(format!("BENCH_{}.json", report.name));
        report.save(&path).unwrap_or_else(|e| die(&e));
        eprintln!("perf: wrote {}", path.display());
        for c in &report.cases {
            eprintln!(
                "perf:   {:<28} {:>10.3} ms",
                c.name,
                c.median_ns as f64 / 1e6
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("perf: {msg}");
    std::process::exit(2);
}
