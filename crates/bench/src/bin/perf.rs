//! `perf` — the deterministic scaled perf run behind the CI observatory.
//!
//! ```text
//! Usage: perf [--scale S] [--runs N] [--out DIR] [--serve-only]
//!             [--storm-requests N]
//!
//!   --scale S          workload scale (default 0.05; 1.0 = paper sizes)
//!   --runs N           timed runs per case, median reported (default 5)
//!   --out DIR          where BENCH_*.json files go (default .)
//!   --serve-only       run only the serve sustained-throughput storm
//!                      (writes just BENCH_serve.json)
//!   --storm-requests N requests in the serve edit storm (default 60)
//! ```
//!
//! A full run writes three reports: `BENCH_scan.json` and
//! `BENCH_stages.json` from the batch observatory, and `BENCH_serve.json`
//! from the seeded edit storm through the warm serve engine (exact
//! `serve/sustained_p50|p95|p99` latency percentiles plus a
//! `throughput_rps` figure). Run `perfgate` afterwards to compare all of
//! them against the committed `bench/baseline.json`.

use std::path::PathBuf;

use vc_bench::perf::{run_perf, run_serve_bench, PerfConfig, PerfReport, ServeBenchConfig};

fn main() {
    let mut config = PerfConfig::default();
    let mut storm = ServeBenchConfig::default();
    let mut out = PathBuf::from(".");
    let mut serve_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                config.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
                storm.scale = config.scale;
            }
            "--runs" => {
                config.runs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a number"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--serve-only" => serve_only = true,
            "--storm-requests" => {
                storm.requests = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--storm-requests needs a number"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "Usage: perf [--scale S] [--runs N] [--out DIR] [--serve-only] \
                     [--storm-requests N]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let print_report = |report: &PerfReport| {
        for c in &report.cases {
            eprintln!(
                "perf:   {:<28} {:>10.3} ms",
                c.name,
                c.median_ns as f64 / 1e6
            );
        }
    };

    if !serve_only {
        let (scan, stages) = run_perf(&config);
        for report in [&scan, &stages] {
            let path = out.join(format!("BENCH_{}.json", report.name));
            report.save(&path).unwrap_or_else(|e| die(&e));
            eprintln!("perf: wrote {}", path.display());
            print_report(report);
        }
    }

    let result = run_serve_bench(&storm);
    let path = out.join("BENCH_serve.json");
    result.save(&path).unwrap_or_else(|e| die(&e));
    eprintln!(
        "perf: wrote {} ({:.1} req/s sustained)",
        path.display(),
        result.throughput_rps
    );
    print_report(&result.report);
}

fn die(msg: &str) -> ! {
    eprintln!("perf: {msg}");
    std::process::exit(2);
}
