//! `perfgate` — the CI perf-regression gate.
//!
//! ```text
//! Usage: perfgate [--current-dir DIR] [--baseline FILE]
//!                 [--ratio R] [--floor-ms N] [--write-baseline]
//!
//!   --current-dir DIR   directory holding BENCH_scan.json,
//!                       BENCH_stages.json, and BENCH_serve.json from a
//!                       fresh `perf` run (default .)
//!   --baseline FILE     the committed baseline (default bench/baseline.json)
//!   --ratio R           max allowed current/baseline ratio (default 1.6)
//!   --floor-ms N        minimum absolute slowdown before a case can
//!                       regress (default 10)
//!   --write-baseline    refresh the baseline from the current run instead
//!                       of gating against it
//! ```
//!
//! Exit status: 0 when every case is within thresholds (or the baseline was
//! refreshed), 1 on regression, 2 on usage/IO errors. An environment
//! fingerprint mismatch is reported to stderr but never fails the gate —
//! baselines recorded on other machines still bound order-of-magnitude
//! regressions.

use std::path::PathBuf;

use vc_bench::perf::{compare, PerfReport, Thresholds};

fn main() {
    let mut current_dir = PathBuf::from(".");
    let mut baseline_path = PathBuf::from("bench/baseline.json");
    let mut thresholds = Thresholds::default();
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--current-dir" => {
                current_dir = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--current-dir needs a path")),
                );
            }
            "--baseline" => {
                baseline_path = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                );
            }
            "--ratio" => {
                thresholds.max_ratio = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--ratio needs a number"));
            }
            "--floor-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--floor-ms needs a number"));
                thresholds.floor_ns = ms * 1_000_000;
            }
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                eprintln!(
                    "Usage: perfgate [--current-dir DIR] [--baseline FILE] [--ratio R] \
                     [--floor-ms N] [--write-baseline]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let scan = PerfReport::load(&current_dir.join("BENCH_scan.json")).unwrap_or_else(|e| die(&e));
    let stages =
        PerfReport::load(&current_dir.join("BENCH_stages.json")).unwrap_or_else(|e| die(&e));
    let serve = PerfReport::load(&current_dir.join("BENCH_serve.json")).unwrap_or_else(|e| die(&e));
    let current = PerfReport::merged("baseline", &[scan, stages, serve]);

    if write_baseline {
        if let Some(parent) = baseline_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        current.save(&baseline_path).unwrap_or_else(|e| die(&e));
        eprintln!(
            "perfgate: baseline refreshed at {}",
            baseline_path.display()
        );
        std::process::exit(0);
    }

    let baseline = PerfReport::load(&baseline_path).unwrap_or_else(|e| die(&e));
    if !baseline.env.is_empty() && baseline.env != current.env {
        eprintln!(
            "perfgate: note: environment differs from baseline ({} vs {})",
            current.env, baseline.env
        );
    }
    for case in &baseline.cases {
        let cur = current.median_ns(&case.name);
        eprintln!(
            "perfgate: {:<28} baseline {:>10.3} ms  current {}",
            case.name,
            case.median_ns as f64 / 1e6,
            cur.map(|ns| format!("{:>10.3} ms", ns as f64 / 1e6))
                .unwrap_or_else(|| "   <missing>".to_string()),
        );
    }
    let regressions = compare(&baseline, &current, &thresholds);
    if regressions.is_empty() {
        eprintln!(
            "perfgate: pass ({} cases within {:.2}x / {} ms)",
            baseline.cases.len(),
            thresholds.max_ratio,
            thresholds.floor_ns / 1_000_000
        );
        std::process::exit(0);
    }
    for r in &regressions {
        eprintln!("perfgate: REGRESSION {}: {}", r.case, r.reason);
    }
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("perfgate: {msg}");
    std::process::exit(2);
}
