//! `tables` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! Usage: tables [--scale F] [--out DIR] [--only NAME[,NAME...]]
//!
//!   --scale F   workload scale factor (default 1.0 = published sizes)
//!   --out DIR   CSV output directory (default result/)
//!   --only X    run a subset: table2 table3 table4 table5 table6 table7
//!               figure7 figure9 prelim dokfit ea
//! ```

use std::collections::BTreeSet;

use vc_bench::{
    experiments,
    prepare, //
};

fn main() {
    let mut scale = 1.0f64;
    let mut out_dir = "result".to_string();
    let mut only: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                out_dir = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--only" => {
                let list = args.next().unwrap_or_else(|| die("--only needs names"));
                only.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => {
                eprintln!(
                    "Usage: tables [--scale F] [--out DIR] [--only NAME,...]\n\
                     Experiments: table2 table3 table4 table5 table6 table7 \
                     figure7 figure9 prelim dokfit ea"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let want = |name: &str| only.is_empty() || only.contains(name);

    eprintln!("generating workloads (scale {scale}) and running the pipeline ...");
    let runs = prepare(scale);
    for r in &runs {
        eprintln!(
            "  {}: {} LOC, {} commits, pipeline {:.2}s",
            r.name(),
            r.app.loc(),
            r.app.repo.commits().len(),
            r.full_time.as_secs_f64()
        );
    }

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        die(&format!("cannot create {out_dir}: {e}"));
    });

    let mut outputs = Vec::new();
    if want("table2") {
        outputs.push(experiments::table2(&runs));
    }
    if want("table3") {
        outputs.push(experiments::table3(&runs));
    }
    if want("table4") {
        outputs.push(experiments::table4(&runs));
    }
    if want("table5") {
        outputs.push(experiments::table5(&runs));
    }
    if want("table6") {
        outputs.push(experiments::table6(&runs));
    }
    if want("table7") {
        outputs.push(experiments::table7(&runs));
    }
    if want("figure7") {
        outputs.push(experiments::figure7(&runs));
    }
    if want("figure9") {
        outputs.push(experiments::figure9(&runs));
    }
    if want("prelim") {
        outputs.push(experiments::prelim_and_recall(&runs));
    }
    if want("dokfit") {
        outputs.push(experiments::dok_calibration(&runs));
    }
    if want("ea") {
        outputs.push(experiments::ea_alternative(&runs));
    }

    for out in &outputs {
        println!("{}", out.text);
        for (name, csv) in &out.csv {
            let path = format!("{out_dir}/{name}");
            std::fs::write(&path, csv).unwrap_or_else(|e| {
                die(&format!("cannot write {path}: {e}"));
            });
        }
    }
    // Per-app detected.csv like the paper artifact.
    for r in &runs {
        let dir = format!("{out_dir}/{}", r.name());
        std::fs::create_dir_all(&dir).ok();
        std::fs::write(format!("{dir}/detected.csv"), r.analysis.report.to_csv()).ok();
    }
    eprintln!("CSV written to {out_dir}/");
}

fn die(msg: &str) -> ! {
    eprintln!("tables: {msg}");
    std::process::exit(2);
}
