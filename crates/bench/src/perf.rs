//! The perf observatory: deterministic scaled benchmark runs and the
//! regression gate that keeps CI honest about them.
//!
//! [`run_perf`] generates a fixed workload (same seed every run), scans it
//! `runs` times through the paper pipeline, and reduces each measured case
//! to its **median** — the noise-robust statistic the gate compares. Two
//! files come out, in the existing `BENCH_*.json` shape plus an environment
//! fingerprint:
//!
//! - `BENCH_scan.json` — end-to-end wall time of the full pipeline run,
//!   plus the whole-history lifecycle replay (`scan/history_replay`, the
//!   `vcheck history` path over a generated multi-commit workload);
//! - `BENCH_stages.json` — per-stage self-time breakdown (detect,
//!   authorship, prune, rank) extracted from the span profiler
//!   ([`vc_obs::profile`]), so a regression names the stage that caused it.
//!
//! [`run_serve_bench`] is the third report, `BENCH_serve.json`: a seeded
//! edit storm through an in-process warm [`ServeEngine`] via the daemon's
//! own request path, reduced to **exact** latency percentiles
//! (`serve/sustained_p50|p95|p99`) plus a `throughput_rps` figure — the
//! sustained editor-loop workload `vcheck serve` exists for, gated by the
//! same thresholds as the batch cases.
//!
//! [`compare`] checks a current report against a committed baseline
//! (`bench/baseline.json`) with *noise-tolerant* thresholds: a case only
//! regresses when it is both `ratio`× slower **and** at least `floor_ns`
//! absolutely slower — tiny cases can double in the noise without tripping
//! the gate, big cases can't creep. A case that disappears from the current
//! report also fails (coverage loss reads as a perf win otherwise).
//!
//! For testing the gate end-to-end there is a failpoint-style hook,
//! [`set_injected_slowdown_ms`]: the runner sleeps that long inside every
//! timed region, so a test can fabricate a real measured regression without
//! depending on machine speed.

use std::{
    path::Path,
    sync::atomic::{AtomicU64, Ordering::Relaxed},
    time::Instant,
};

use valuecheck::{
    history::history_scan,
    pipeline::{run_with_obs, Options},
    sentinel::SentinelConfig,
    serve::{ServeConfig, ServeEngine},
    suppress::SuppressStore,
};
use vc_ir::Program;
use vc_obs::{FoldedProfile, Json, ObsSession};
use vc_workload::{generate, generate_life, AppProfile, LifeProfile};

/// Injected extra latency per timed region, milliseconds. Test-only hook
/// (failpoint-style): proves the gate trips on a real measured slowdown.
static SLOWDOWN_MS: AtomicU64 = AtomicU64::new(0);

/// Arms the injected slowdown; 0 disarms.
pub fn set_injected_slowdown_ms(ms: u64) {
    SLOWDOWN_MS.store(ms, Relaxed);
}

fn injected_delay() {
    let ms = SLOWDOWN_MS.load(Relaxed);
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Configuration for one observatory run.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Workload scale (1.0 = the paper's published sizes).
    pub scale: f64,
    /// Timed runs per case; the reported statistic is their median.
    pub runs: usize,
}

impl Default for PerfConfig {
    fn default() -> PerfConfig {
        PerfConfig {
            scale: 1.0,
            runs: 5,
        }
    }
}

/// One measured case: a name and its median over the configured runs.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfCase {
    /// Case label (`scan/total`, `stages/stage.detect`, ...).
    pub name: String,
    /// Median wall time across runs, nanoseconds.
    pub median_ns: u64,
    /// Number of runs the median was taken over.
    pub runs: usize,
}

/// A full report: measured cases plus the environment fingerprint.
#[derive(Clone, Debug, Default)]
pub struct PerfReport {
    /// Report name (`scan`, `stages`, or `baseline` for the merged file).
    pub name: String,
    /// Measured cases.
    pub cases: Vec<PerfCase>,
    /// Environment fingerprint (`os/arch/ncpu/profile`).
    pub env: String,
}

/// The machine/profile fingerprint recorded into every report. Compared
/// advisorily by the gate: a mismatch is reported but never fails the run.
/// The same string [`vc_obs::env_fingerprint`] stamps into the
/// `--metrics-json` export, so bench reports and metric dumps join on it.
pub fn env_fingerprint() -> String {
    vc_obs::env_fingerprint()
}

fn median(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the deterministic scaled workload `config.runs` times and returns
/// the `(scan, stages)` reports.
pub fn run_perf(config: &PerfConfig) -> (PerfReport, PerfReport) {
    // A fixed workload: every paper profile, same seeds, every invocation —
    // the measured work is identical across runs and machines.
    let apps: Vec<_> = AppProfile::all()
        .into_iter()
        .map(|p| {
            let profile = if (config.scale - 1.0).abs() < 1e-9 {
                p
            } else {
                p.scaled(config.scale)
            };
            let app = generate(&profile);
            let prog = Program::build(&app.source_refs(), &app.defines)
                .unwrap_or_else(|e| panic!("perf workload failed to build: {e}"));
            (app, prog)
        })
        .collect();
    let opts = Options::paper();

    // The lifecycle workload behind `scan/history_replay`: a scripted
    // multi-commit history (live / fixed / suppressed / churned fates),
    // replayed end to end through `history_scan` each run.
    let scale_n = |n: usize| ((n as f64 * config.scale).round() as usize).max(1);
    let life = generate_life(&LifeProfile {
        seed: 5,
        commits: scale_n(8),
        live: scale_n(20),
        fixed: scale_n(12),
        suppressed: scale_n(8),
        churned: scale_n(4),
        files: scale_n(4),
        drift_lines: 6,
    });

    // The warm-daemon workload behind `scan/serve_warm`: the nfs-ganesha
    // tree on disk, a warmed ServeEngine, and a one-file edit per run —
    // the editor-loop case the daemon exists for. The engine carries its
    // parse and unit caches across runs; only the edited file's dirty
    // closure re-analyzes.
    let serve_app = &apps[1].0; // AppProfile::all() Table 2 order: nfs-ganesha
    let serve_dir = std::env::temp_dir().join(format!("vc-perf-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_dir);
    for (path, content) in &serve_app.sources {
        let full = serve_dir.join(path);
        std::fs::create_dir_all(full.parent().unwrap()).expect("perf serve tree dir");
        std::fs::write(full, content).expect("perf serve tree write");
    }
    // Probe the smallest file: the editor-loop case is a small edit, and
    // the warm cost of an edit scales with the edited file's size (it is
    // the only file that re-parses).
    let probe_src = serve_app
        .sources
        .iter()
        .min_by_key(|(_, content)| content.len())
        .expect("serve app has sources");
    let probe_path = serve_dir.join(&probe_src.0);
    let probe_base = probe_src.1.clone();
    let probe_edited = format!("{probe_base}\nint vc_warm_probe(void) {{ return 1; }}\n");
    let mut engine = ServeEngine::new(
        &serve_dir,
        ServeConfig {
            opts,
            defines: serve_app.defines.clone(),
            ..ServeConfig::default()
        },
    )
    .expect("perf serve engine starts");
    engine.scan(None).expect("perf serve warmup scan");

    let stage_names = [
        "stage.detect",
        "stage.authorship",
        "stage.prune",
        "stage.rank",
    ];
    let mut total: Vec<u64> = Vec::with_capacity(config.runs);
    let mut history: Vec<u64> = Vec::with_capacity(config.runs);
    let mut recovery: Vec<u64> = Vec::with_capacity(config.runs);
    let mut serve_warm: Vec<u64> = Vec::with_capacity(config.runs);
    let mut summary: Vec<u64> = Vec::with_capacity(config.runs);
    let mut stages: Vec<Vec<u64>> = vec![Vec::with_capacity(config.runs); stage_names.len()];
    for run in 0..config.runs.max(1) {
        let mut stage_ns = [0u64; 4];
        let t0 = Instant::now();
        injected_delay();
        for (app, prog) in &apps {
            let obs = ObsSession::new();
            let analysis = run_with_obs(prog, &app.repo, &opts, obs.clone());
            std::hint::black_box(&analysis);
            // Per-stage self time from the folded profile. The sequential
            // pipeline puts each stage on the main lane with no sub-spans,
            // so self time here is the stage's full wall time.
            let folded = FoldedProfile::from_records(&obs.tracer.records());
            for (i, stage) in stage_names.iter().enumerate() {
                stage_ns[i] += folded
                    .top_self(usize::MAX)
                    .iter()
                    .filter(|(name, _)| name == stage)
                    .map(|(_, stat)| stat.self_us * 1_000)
                    .sum::<u64>();
            }
        }
        total.push(t0.elapsed().as_nanos() as u64);
        for (i, ns) in stage_ns.into_iter().enumerate() {
            stages[i].push(ns);
        }

        let t1 = Instant::now();
        injected_delay();
        let outcome = history_scan(
            &life.repo,
            &[],
            &opts,
            &SentinelConfig::default(),
            SuppressStore::default(),
            ObsSession::new(),
        )
        .unwrap_or_else(|e| panic!("perf history workload failed to build: {e}"));
        std::hint::black_box(&outcome);
        history.push(t1.elapsed().as_nanos() as u64);

        // The error-recovering front end over the same (clean) sources:
        // gates the overhead recovery bookkeeping adds to the common case
        // where nothing is corrupted.
        let t2 = Instant::now();
        injected_delay();
        for (app, _) in &apps {
            let (prog, errors, stats) = Program::build_recovering(&app.source_refs(), &app.defines);
            assert!(
                errors.is_empty() && stats == vc_ir::program::RecoverStats::default(),
                "recovery must be a no-op on the clean perf workload"
            );
            std::hint::black_box(&prog);
        }
        recovery.push(t2.elapsed().as_nanos() as u64);

        // Warm rescan after a one-file edit: flip the probe function in
        // and out so every run re-analyzes exactly one file's closure
        // against warm caches.
        let edited = if run % 2 == 0 {
            &probe_edited
        } else {
            &probe_base
        };
        std::fs::write(&probe_path, edited).expect("perf serve probe edit");
        let t3 = Instant::now();
        injected_delay();
        let resp = engine.scan(None).expect("perf serve warm scan");
        assert!(
            resp.unit_hits > 0,
            "warm rescan must hit the unit cache (got {} hits / {} misses)",
            resp.unit_hits,
            resp.unit_misses
        );
        std::hint::black_box(&resp);
        serve_warm.push(t3.elapsed().as_nanos() as u64);

        // Summary construction in isolation (not nested inside
        // stage.detect): one pass building every function's dataflow
        // summary — the unit of work detect and prune now share.
        let t4 = Instant::now();
        injected_delay();
        for (_, prog) in &apps {
            let interner = vc_dataflow::summary::SigInterner::new(prog);
            for (fi, f) in prog.funcs.iter().enumerate() {
                let s = vc_dataflow::summary::build_summary(
                    f,
                    interner.sig_of(vc_ir::FuncId(fi as u32)),
                    vc_obs::Budget::UNLIMITED,
                );
                std::hint::black_box(&s);
            }
        }
        summary.push(t4.elapsed().as_nanos() as u64);
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&serve_dir);

    let env = env_fingerprint();
    let scan = PerfReport {
        name: "scan".to_string(),
        cases: vec![
            PerfCase {
                name: "scan/total".to_string(),
                median_ns: median(total),
                runs: config.runs,
            },
            PerfCase {
                name: "scan/history_replay".to_string(),
                median_ns: median(history),
                runs: config.runs,
            },
            PerfCase {
                name: "scan/parse_recovery".to_string(),
                median_ns: median(recovery),
                runs: config.runs,
            },
            PerfCase {
                name: "scan/serve_warm".to_string(),
                median_ns: median(serve_warm),
                runs: config.runs,
            },
        ],
        env: env.clone(),
    };
    let stages_report = PerfReport {
        name: "stages".to_string(),
        cases: stage_names
            .iter()
            .zip(stages)
            .map(|(name, samples)| PerfCase {
                name: format!("stages/{name}"),
                median_ns: median(samples),
                runs: config.runs,
            })
            .chain(std::iter::once(PerfCase {
                name: "stages/stage.summary".to_string(),
                median_ns: median(summary),
                runs: config.runs,
            }))
            .collect(),
        env,
    };
    (scan, stages_report)
}

/// Configuration for the serve sustained-throughput bench.
#[derive(Clone, Copy, Debug)]
pub struct ServeBenchConfig {
    /// Workload scale (matches [`PerfConfig::scale`]).
    pub scale: f64,
    /// Requests in the edit storm (each one: edit a file, warm-rescan).
    pub requests: usize,
    /// Storm seed: which file each request edits.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> ServeBenchConfig {
        ServeBenchConfig {
            scale: 1.0,
            requests: 60,
            seed: 7,
        }
    }
}

/// The serve bench outcome: exact request-latency percentiles as a
/// [`PerfReport`] (the gate's unit) plus the sustained request rate.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// `serve/sustained_p50|p95|p99` cases, values in nanoseconds.
    pub report: PerfReport,
    /// Sustained requests per second over the whole storm.
    pub throughput_rps: f64,
}

impl ServeBenchResult {
    /// The `BENCH_serve.json` shape: a standard [`PerfReport`] export plus
    /// a `throughput_rps` key. [`PerfReport::from_json`] ignores unknown
    /// keys, so the gate loads this file like any other report.
    pub fn to_json(&self) -> Json {
        let mut json = self.report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.push((
                "throughput_rps".into(),
                Json::Float((self.throughput_rps * 100.0).round() / 100.0),
            ));
        }
        json
    }

    /// Writes the result to `path` (pretty JSON).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_string_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Deterministic xorshift64* (same stream on every platform/run).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Exact percentile over raw samples (nearest-rank on the sorted vec) —
/// unlike the serve daemon's log-linear histograms, the bench keeps every
/// sample, so the gated numbers carry no bucketing error.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs a seeded edit storm through an in-process warm [`ServeEngine`] via
/// the protocol path (`handle_line`, the same entry the daemon's worker
/// loop uses, so request telemetry is exercised while being measured) and
/// reports exact latency percentiles plus sustained throughput.
///
/// Every request edits one seeded-random file (toggling a probe function
/// in or out) and issues `{"op":"scan"}` — the editor-loop workload
/// `vcheck serve` exists for, sustained rather than one-shot.
pub fn run_serve_bench(config: &ServeBenchConfig) -> ServeBenchResult {
    let profile = {
        let p = AppProfile::all().into_iter().nth(1).expect("nfs-ganesha"); // Table 2 order
        if (config.scale - 1.0).abs() < 1e-9 {
            p
        } else {
            p.scaled(config.scale)
        }
    };
    let app = generate(&profile);
    let dir = std::env::temp_dir().join(format!("vc-perf-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (path, content) in &app.sources {
        let full = dir.join(path);
        std::fs::create_dir_all(full.parent().unwrap()).expect("storm tree dir");
        std::fs::write(full, content).expect("storm tree write");
    }
    let mut engine = ServeEngine::new(
        &dir,
        ServeConfig {
            opts: Options::paper(),
            defines: app.defines.clone(),
            ..ServeConfig::default()
        },
    )
    .expect("storm engine starts");
    // Warm-up request (the cold rebuild) is not part of the measurement.
    let (warm, _) = engine.handle_line("{\"op\":\"scan\"}", 0);
    assert_eq!(
        warm.get("ok").and_then(Json::as_bool),
        Some(true),
        "storm warm-up scan must succeed"
    );

    let mut state = config.seed | 1;
    let mut toggled = vec![false; app.sources.len()];
    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let t0 = Instant::now();
    for seq in 1..=config.requests.max(1) as u64 {
        let i = (xorshift(&mut state) % app.sources.len() as u64) as usize;
        let (path, base) = &app.sources[i];
        toggled[i] = !toggled[i];
        let content = if toggled[i] {
            format!("{base}\nint vc_storm_probe_{i}(void) {{ return 1; }}\n")
        } else {
            base.clone()
        };
        std::fs::write(dir.join(path), content).expect("storm edit");
        let t = Instant::now();
        injected_delay();
        let (reply, _) = engine.handle_line("{\"op\":\"scan\"}", seq);
        latencies.push(t.elapsed().as_nanos() as u64);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "storm request {seq} must succeed"
        );
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_unstable();
    let case = |name: &str, q: f64| PerfCase {
        name: format!("serve/sustained_{name}"),
        median_ns: exact_percentile(&latencies, q),
        runs: latencies.len(),
    };
    ServeBenchResult {
        report: PerfReport {
            name: "serve".to_string(),
            cases: vec![case("p50", 0.50), case("p95", 0.95), case("p99", 0.99)],
            env: env_fingerprint(),
        },
        throughput_rps: if elapsed > 0.0 {
            latencies.len() as f64 / elapsed
        } else {
            0.0
        },
    }
}

impl PerfReport {
    /// The report as JSON (the `BENCH_*.json` shape plus `env`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("env".into(), Json::Str(self.env.clone())),
            (
                "benches".into(),
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(c.name.clone())),
                                ("median_ns".into(), Json::Int(c.median_ns as i64)),
                                ("samples".into(), Json::Int(c.runs as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report written by [`PerfReport::to_json`]. Also accepts the
    /// plain `Harness` output shape (no `env` key).
    pub fn from_json(json: &Json) -> Option<PerfReport> {
        let name = json.get("name")?.as_str()?.to_string();
        let env = json
            .get("env")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let benches = match json.get("benches")? {
            Json::Arr(items) => items,
            _ => return None,
        };
        let mut cases = Vec::with_capacity(benches.len());
        for b in benches {
            cases.push(PerfCase {
                name: b.get("name")?.as_str()?.to_string(),
                median_ns: b.get("median_ns")?.as_i64()?.max(0) as u64,
                runs: b.get("samples").and_then(Json::as_i64).unwrap_or(1).max(0) as usize,
            });
        }
        Some(PerfReport { name, cases, env })
    }

    /// Loads and parses a report file.
    pub fn load(path: &Path) -> Result<PerfReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = vc_obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        PerfReport::from_json(&json).ok_or_else(|| format!("{}: not a perf report", path.display()))
    }

    /// Writes the report to `path` (pretty JSON).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_string_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Merges several reports into one named `name` (case names must
    /// already be namespaced `group/case`, so collisions don't occur).
    pub fn merged(name: &str, parts: &[PerfReport]) -> PerfReport {
        PerfReport {
            name: name.to_string(),
            cases: parts.iter().flat_map(|p| p.cases.clone()).collect(),
            env: parts
                .first()
                .map(|p| p.env.clone())
                .unwrap_or_else(env_fingerprint),
        }
    }

    /// Looks up a case's median by name.
    pub fn median_ns(&self, case: &str) -> Option<u64> {
        self.cases
            .iter()
            .find(|c| c.name == case)
            .map(|c| c.median_ns)
    }
}

/// Gate thresholds. A case regresses only when it exceeds **both**: the
/// relative ratio (noise on small cases) and the absolute floor (creep on
/// large ones is still caught because big absolute deltas clear the floor).
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Maximum allowed `current / baseline` ratio (e.g. 1.6 = +60 %).
    pub max_ratio: f64,
    /// Minimum absolute slowdown, nanoseconds, before a case can regress.
    pub floor_ns: u64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            max_ratio: 1.6,
            floor_ns: 10_000_000, // 10 ms
        }
    }
}

/// One gate verdict: a regressed or vanished case.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The case that regressed.
    pub case: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median (0 when the case vanished).
    pub current_ns: u64,
    /// Human-readable reason.
    pub reason: String,
}

/// Compares `current` against `baseline`, returning every regression. An
/// empty result means the gate passes.
pub fn compare(baseline: &PerfReport, current: &PerfReport, t: &Thresholds) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in &baseline.cases {
        let Some(cur) = current.median_ns(&base.name) else {
            out.push(Regression {
                case: base.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: 0,
                reason: "case missing from current report".to_string(),
            });
            continue;
        };
        let over_floor = cur.saturating_sub(base.median_ns) >= t.floor_ns;
        let ratio = if base.median_ns == 0 {
            // A zero baseline can't support a ratio; the floor decides.
            f64::INFINITY
        } else {
            cur as f64 / base.median_ns as f64
        };
        if over_floor && ratio > t.max_ratio {
            out.push(Regression {
                case: base.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur,
                reason: format!(
                    "{:.2}x over baseline (+{} ms)",
                    ratio,
                    (cur - base.median_ns) / 1_000_000
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cases: &[(&str, u64)]) -> PerfReport {
        PerfReport {
            name: "t".into(),
            cases: cases
                .iter()
                .map(|(n, v)| PerfCase {
                    name: n.to_string(),
                    median_ns: *v,
                    runs: 3,
                })
                .collect(),
            env: "test".into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[("scan/total", 123), ("stages/stage.detect", 45)]);
        let back = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.cases, r.cases);
        assert_eq!(back.env, "test");
    }

    #[test]
    fn gate_needs_both_ratio_and_floor() {
        let t = Thresholds {
            max_ratio: 1.5,
            floor_ns: 10_000_000,
        };
        let base = report(&[("small", 1_000), ("big", 100_000_000)]);
        // Small case 100x slower but under the absolute floor: noise.
        let noisy = report(&[("small", 100_000), ("big", 100_000_000)]);
        assert!(compare(&base, &noisy, &t).is_empty());
        // Big case over both thresholds: regression.
        let slow = report(&[("small", 1_000), ("big", 200_000_000)]);
        let regs = compare(&base, &slow, &t);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].case, "big");
        // Big case +50ms but only 1.5x (not > ratio): passes.
        let creep = report(&[("small", 1_000), ("big", 150_000_000)]);
        assert!(compare(&base, &creep, &t).is_empty());
    }

    #[test]
    fn missing_case_is_a_regression() {
        let t = Thresholds::default();
        let base = report(&[("scan/total", 5)]);
        let cur = report(&[]);
        let regs = compare(&base, &cur, &t);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].reason.contains("missing"));
    }

    #[test]
    fn exact_percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&samples, 0.50), 50);
        assert_eq!(exact_percentile(&samples, 0.95), 95);
        assert_eq!(exact_percentile(&samples, 0.99), 99);
        assert_eq!(exact_percentile(&samples, 1.0), 100);
        assert_eq!(exact_percentile(&[], 0.5), 0);
        assert_eq!(exact_percentile(&[7], 0.99), 7);
    }

    #[test]
    fn serve_bench_json_gates_like_a_report() {
        let result = ServeBenchResult {
            report: report(&[
                ("serve/sustained_p50", 1_000_000),
                ("serve/sustained_p99", 9_000_000),
            ]),
            throughput_rps: 41.237,
        };
        let json = result.to_json();
        assert_eq!(
            json.get("throughput_rps").and_then(Json::as_f64),
            Some(41.24)
        );
        // The gate's loader reads the same file, extra key and all.
        let back = PerfReport::from_json(&json).unwrap();
        assert_eq!(back.median_ns("serve/sustained_p50"), Some(1_000_000));
        assert_eq!(back.median_ns("serve/sustained_p99"), Some(9_000_000));
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = 7 | 1;
        let mut b = 7 | 1;
        for _ in 0..100 {
            let x = xorshift(&mut a);
            assert_eq!(x, xorshift(&mut b));
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn merged_concatenates_cases() {
        let m = PerfReport::merged("baseline", &[report(&[("a/x", 1)]), report(&[("b/y", 2)])]);
        assert_eq!(m.median_ns("a/x"), Some(1));
        assert_eq!(m.median_ns("b/y"), Some(2));
        assert_eq!(m.name, "baseline");
    }
}
