//! The perf observatory: deterministic scaled benchmark runs and the
//! regression gate that keeps CI honest about them.
//!
//! [`run_perf`] generates a fixed workload (same seed every run), scans it
//! `runs` times through the paper pipeline, and reduces each measured case
//! to its **median** — the noise-robust statistic the gate compares. Two
//! files come out, in the existing `BENCH_*.json` shape plus an environment
//! fingerprint:
//!
//! - `BENCH_scan.json` — end-to-end wall time of the full pipeline run,
//!   plus the whole-history lifecycle replay (`scan/history_replay`, the
//!   `vcheck history` path over a generated multi-commit workload);
//! - `BENCH_stages.json` — per-stage self-time breakdown (detect,
//!   authorship, prune, rank) extracted from the span profiler
//!   ([`vc_obs::profile`]), so a regression names the stage that caused it.
//!
//! [`compare`] checks a current report against a committed baseline
//! (`bench/baseline.json`) with *noise-tolerant* thresholds: a case only
//! regresses when it is both `ratio`× slower **and** at least `floor_ns`
//! absolutely slower — tiny cases can double in the noise without tripping
//! the gate, big cases can't creep. A case that disappears from the current
//! report also fails (coverage loss reads as a perf win otherwise).
//!
//! For testing the gate end-to-end there is a failpoint-style hook,
//! [`set_injected_slowdown_ms`]: the runner sleeps that long inside every
//! timed region, so a test can fabricate a real measured regression without
//! depending on machine speed.

use std::{
    path::Path,
    sync::atomic::{AtomicU64, Ordering::Relaxed},
    time::Instant,
};

use valuecheck::{
    history::history_scan,
    pipeline::{run_with_obs, Options},
    sentinel::SentinelConfig,
    serve::{ServeConfig, ServeEngine},
    suppress::SuppressStore,
};
use vc_ir::Program;
use vc_obs::{FoldedProfile, Json, ObsSession};
use vc_workload::{generate, generate_life, AppProfile, LifeProfile};

/// Injected extra latency per timed region, milliseconds. Test-only hook
/// (failpoint-style): proves the gate trips on a real measured slowdown.
static SLOWDOWN_MS: AtomicU64 = AtomicU64::new(0);

/// Arms the injected slowdown; 0 disarms.
pub fn set_injected_slowdown_ms(ms: u64) {
    SLOWDOWN_MS.store(ms, Relaxed);
}

fn injected_delay() {
    let ms = SLOWDOWN_MS.load(Relaxed);
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Configuration for one observatory run.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Workload scale (1.0 = the paper's published sizes).
    pub scale: f64,
    /// Timed runs per case; the reported statistic is their median.
    pub runs: usize,
}

impl Default for PerfConfig {
    fn default() -> PerfConfig {
        PerfConfig {
            scale: 1.0,
            runs: 5,
        }
    }
}

/// One measured case: a name and its median over the configured runs.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfCase {
    /// Case label (`scan/total`, `stages/stage.detect`, ...).
    pub name: String,
    /// Median wall time across runs, nanoseconds.
    pub median_ns: u64,
    /// Number of runs the median was taken over.
    pub runs: usize,
}

/// A full report: measured cases plus the environment fingerprint.
#[derive(Clone, Debug, Default)]
pub struct PerfReport {
    /// Report name (`scan`, `stages`, or `baseline` for the merged file).
    pub name: String,
    /// Measured cases.
    pub cases: Vec<PerfCase>,
    /// Environment fingerprint (`os/arch/ncpu/profile`).
    pub env: String,
}

/// The machine/profile fingerprint recorded into every report. Compared
/// advisorily by the gate: a mismatch is reported but never fails the run.
/// The same string [`vc_obs::env_fingerprint`] stamps into the
/// `--metrics-json` export, so bench reports and metric dumps join on it.
pub fn env_fingerprint() -> String {
    vc_obs::env_fingerprint()
}

fn median(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the deterministic scaled workload `config.runs` times and returns
/// the `(scan, stages)` reports.
pub fn run_perf(config: &PerfConfig) -> (PerfReport, PerfReport) {
    // A fixed workload: every paper profile, same seeds, every invocation —
    // the measured work is identical across runs and machines.
    let apps: Vec<_> = AppProfile::all()
        .into_iter()
        .map(|p| {
            let profile = if (config.scale - 1.0).abs() < 1e-9 {
                p
            } else {
                p.scaled(config.scale)
            };
            let app = generate(&profile);
            let prog = Program::build(&app.source_refs(), &app.defines)
                .unwrap_or_else(|e| panic!("perf workload failed to build: {e}"));
            (app, prog)
        })
        .collect();
    let opts = Options::paper();

    // The lifecycle workload behind `scan/history_replay`: a scripted
    // multi-commit history (live / fixed / suppressed / churned fates),
    // replayed end to end through `history_scan` each run.
    let scale_n = |n: usize| ((n as f64 * config.scale).round() as usize).max(1);
    let life = generate_life(&LifeProfile {
        seed: 5,
        commits: scale_n(8),
        live: scale_n(20),
        fixed: scale_n(12),
        suppressed: scale_n(8),
        churned: scale_n(4),
        files: scale_n(4),
        drift_lines: 6,
    });

    // The warm-daemon workload behind `scan/serve_warm`: the nfs-ganesha
    // tree on disk, a warmed ServeEngine, and a one-file edit per run —
    // the editor-loop case the daemon exists for. The engine carries its
    // parse and unit caches across runs; only the edited file's dirty
    // closure re-analyzes.
    let serve_app = &apps[1].0; // AppProfile::all() Table 2 order: nfs-ganesha
    let serve_dir = std::env::temp_dir().join(format!("vc-perf-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_dir);
    for (path, content) in &serve_app.sources {
        let full = serve_dir.join(path);
        std::fs::create_dir_all(full.parent().unwrap()).expect("perf serve tree dir");
        std::fs::write(full, content).expect("perf serve tree write");
    }
    // Probe the smallest file: the editor-loop case is a small edit, and
    // the warm cost of an edit scales with the edited file's size (it is
    // the only file that re-parses).
    let probe_src = serve_app
        .sources
        .iter()
        .min_by_key(|(_, content)| content.len())
        .expect("serve app has sources");
    let probe_path = serve_dir.join(&probe_src.0);
    let probe_base = probe_src.1.clone();
    let probe_edited = format!("{probe_base}\nint vc_warm_probe(void) {{ return 1; }}\n");
    let mut engine = ServeEngine::new(
        &serve_dir,
        ServeConfig {
            opts,
            defines: serve_app.defines.clone(),
            ..ServeConfig::default()
        },
    )
    .expect("perf serve engine starts");
    engine.scan(None).expect("perf serve warmup scan");

    let stage_names = [
        "stage.detect",
        "stage.authorship",
        "stage.prune",
        "stage.rank",
    ];
    let mut total: Vec<u64> = Vec::with_capacity(config.runs);
    let mut history: Vec<u64> = Vec::with_capacity(config.runs);
    let mut recovery: Vec<u64> = Vec::with_capacity(config.runs);
    let mut serve_warm: Vec<u64> = Vec::with_capacity(config.runs);
    let mut summary: Vec<u64> = Vec::with_capacity(config.runs);
    let mut stages: Vec<Vec<u64>> = vec![Vec::with_capacity(config.runs); stage_names.len()];
    for run in 0..config.runs.max(1) {
        let mut stage_ns = [0u64; 4];
        let t0 = Instant::now();
        injected_delay();
        for (app, prog) in &apps {
            let obs = ObsSession::new();
            let analysis = run_with_obs(prog, &app.repo, &opts, obs.clone());
            std::hint::black_box(&analysis);
            // Per-stage self time from the folded profile. The sequential
            // pipeline puts each stage on the main lane with no sub-spans,
            // so self time here is the stage's full wall time.
            let folded = FoldedProfile::from_records(&obs.tracer.records());
            for (i, stage) in stage_names.iter().enumerate() {
                stage_ns[i] += folded
                    .top_self(usize::MAX)
                    .iter()
                    .filter(|(name, _)| name == stage)
                    .map(|(_, stat)| stat.self_us * 1_000)
                    .sum::<u64>();
            }
        }
        total.push(t0.elapsed().as_nanos() as u64);
        for (i, ns) in stage_ns.into_iter().enumerate() {
            stages[i].push(ns);
        }

        let t1 = Instant::now();
        injected_delay();
        let outcome = history_scan(
            &life.repo,
            &[],
            &opts,
            &SentinelConfig::default(),
            SuppressStore::default(),
            ObsSession::new(),
        )
        .unwrap_or_else(|e| panic!("perf history workload failed to build: {e}"));
        std::hint::black_box(&outcome);
        history.push(t1.elapsed().as_nanos() as u64);

        // The error-recovering front end over the same (clean) sources:
        // gates the overhead recovery bookkeeping adds to the common case
        // where nothing is corrupted.
        let t2 = Instant::now();
        injected_delay();
        for (app, _) in &apps {
            let (prog, errors, stats) = Program::build_recovering(&app.source_refs(), &app.defines);
            assert!(
                errors.is_empty() && stats == vc_ir::program::RecoverStats::default(),
                "recovery must be a no-op on the clean perf workload"
            );
            std::hint::black_box(&prog);
        }
        recovery.push(t2.elapsed().as_nanos() as u64);

        // Warm rescan after a one-file edit: flip the probe function in
        // and out so every run re-analyzes exactly one file's closure
        // against warm caches.
        let edited = if run % 2 == 0 {
            &probe_edited
        } else {
            &probe_base
        };
        std::fs::write(&probe_path, edited).expect("perf serve probe edit");
        let t3 = Instant::now();
        injected_delay();
        let resp = engine.scan(None).expect("perf serve warm scan");
        assert!(
            resp.unit_hits > 0,
            "warm rescan must hit the unit cache (got {} hits / {} misses)",
            resp.unit_hits,
            resp.unit_misses
        );
        std::hint::black_box(&resp);
        serve_warm.push(t3.elapsed().as_nanos() as u64);

        // Summary construction in isolation (not nested inside
        // stage.detect): one pass building every function's dataflow
        // summary — the unit of work detect and prune now share.
        let t4 = Instant::now();
        injected_delay();
        for (_, prog) in &apps {
            let interner = vc_dataflow::summary::SigInterner::new(prog);
            for (fi, f) in prog.funcs.iter().enumerate() {
                let s = vc_dataflow::summary::build_summary(
                    f,
                    interner.sig_of(vc_ir::FuncId(fi as u32)),
                    vc_obs::Budget::UNLIMITED,
                );
                std::hint::black_box(&s);
            }
        }
        summary.push(t4.elapsed().as_nanos() as u64);
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&serve_dir);

    let env = env_fingerprint();
    let scan = PerfReport {
        name: "scan".to_string(),
        cases: vec![
            PerfCase {
                name: "scan/total".to_string(),
                median_ns: median(total),
                runs: config.runs,
            },
            PerfCase {
                name: "scan/history_replay".to_string(),
                median_ns: median(history),
                runs: config.runs,
            },
            PerfCase {
                name: "scan/parse_recovery".to_string(),
                median_ns: median(recovery),
                runs: config.runs,
            },
            PerfCase {
                name: "scan/serve_warm".to_string(),
                median_ns: median(serve_warm),
                runs: config.runs,
            },
        ],
        env: env.clone(),
    };
    let stages_report = PerfReport {
        name: "stages".to_string(),
        cases: stage_names
            .iter()
            .zip(stages)
            .map(|(name, samples)| PerfCase {
                name: format!("stages/{name}"),
                median_ns: median(samples),
                runs: config.runs,
            })
            .chain(std::iter::once(PerfCase {
                name: "stages/stage.summary".to_string(),
                median_ns: median(summary),
                runs: config.runs,
            }))
            .collect(),
        env,
    };
    (scan, stages_report)
}

impl PerfReport {
    /// The report as JSON (the `BENCH_*.json` shape plus `env`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("env".into(), Json::Str(self.env.clone())),
            (
                "benches".into(),
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(c.name.clone())),
                                ("median_ns".into(), Json::Int(c.median_ns as i64)),
                                ("samples".into(), Json::Int(c.runs as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report written by [`PerfReport::to_json`]. Also accepts the
    /// plain `Harness` output shape (no `env` key).
    pub fn from_json(json: &Json) -> Option<PerfReport> {
        let name = json.get("name")?.as_str()?.to_string();
        let env = json
            .get("env")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let benches = match json.get("benches")? {
            Json::Arr(items) => items,
            _ => return None,
        };
        let mut cases = Vec::with_capacity(benches.len());
        for b in benches {
            cases.push(PerfCase {
                name: b.get("name")?.as_str()?.to_string(),
                median_ns: b.get("median_ns")?.as_i64()?.max(0) as u64,
                runs: b.get("samples").and_then(Json::as_i64).unwrap_or(1).max(0) as usize,
            });
        }
        Some(PerfReport { name, cases, env })
    }

    /// Loads and parses a report file.
    pub fn load(path: &Path) -> Result<PerfReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = vc_obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        PerfReport::from_json(&json).ok_or_else(|| format!("{}: not a perf report", path.display()))
    }

    /// Writes the report to `path` (pretty JSON).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_string_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Merges several reports into one named `name` (case names must
    /// already be namespaced `group/case`, so collisions don't occur).
    pub fn merged(name: &str, parts: &[PerfReport]) -> PerfReport {
        PerfReport {
            name: name.to_string(),
            cases: parts.iter().flat_map(|p| p.cases.clone()).collect(),
            env: parts
                .first()
                .map(|p| p.env.clone())
                .unwrap_or_else(env_fingerprint),
        }
    }

    /// Looks up a case's median by name.
    pub fn median_ns(&self, case: &str) -> Option<u64> {
        self.cases
            .iter()
            .find(|c| c.name == case)
            .map(|c| c.median_ns)
    }
}

/// Gate thresholds. A case regresses only when it exceeds **both**: the
/// relative ratio (noise on small cases) and the absolute floor (creep on
/// large ones is still caught because big absolute deltas clear the floor).
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Maximum allowed `current / baseline` ratio (e.g. 1.6 = +60 %).
    pub max_ratio: f64,
    /// Minimum absolute slowdown, nanoseconds, before a case can regress.
    pub floor_ns: u64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            max_ratio: 1.6,
            floor_ns: 10_000_000, // 10 ms
        }
    }
}

/// One gate verdict: a regressed or vanished case.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The case that regressed.
    pub case: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median (0 when the case vanished).
    pub current_ns: u64,
    /// Human-readable reason.
    pub reason: String,
}

/// Compares `current` against `baseline`, returning every regression. An
/// empty result means the gate passes.
pub fn compare(baseline: &PerfReport, current: &PerfReport, t: &Thresholds) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in &baseline.cases {
        let Some(cur) = current.median_ns(&base.name) else {
            out.push(Regression {
                case: base.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: 0,
                reason: "case missing from current report".to_string(),
            });
            continue;
        };
        let over_floor = cur.saturating_sub(base.median_ns) >= t.floor_ns;
        let ratio = if base.median_ns == 0 {
            // A zero baseline can't support a ratio; the floor decides.
            f64::INFINITY
        } else {
            cur as f64 / base.median_ns as f64
        };
        if over_floor && ratio > t.max_ratio {
            out.push(Regression {
                case: base.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur,
                reason: format!(
                    "{:.2}x over baseline (+{} ms)",
                    ratio,
                    (cur - base.median_ns) / 1_000_000
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cases: &[(&str, u64)]) -> PerfReport {
        PerfReport {
            name: "t".into(),
            cases: cases
                .iter()
                .map(|(n, v)| PerfCase {
                    name: n.to_string(),
                    median_ns: *v,
                    runs: 3,
                })
                .collect(),
            env: "test".into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[("scan/total", 123), ("stages/stage.detect", 45)]);
        let back = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.cases, r.cases);
        assert_eq!(back.env, "test");
    }

    #[test]
    fn gate_needs_both_ratio_and_floor() {
        let t = Thresholds {
            max_ratio: 1.5,
            floor_ns: 10_000_000,
        };
        let base = report(&[("small", 1_000), ("big", 100_000_000)]);
        // Small case 100x slower but under the absolute floor: noise.
        let noisy = report(&[("small", 100_000), ("big", 100_000_000)]);
        assert!(compare(&base, &noisy, &t).is_empty());
        // Big case over both thresholds: regression.
        let slow = report(&[("small", 1_000), ("big", 200_000_000)]);
        let regs = compare(&base, &slow, &t);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].case, "big");
        // Big case +50ms but only 1.5x (not > ratio): passes.
        let creep = report(&[("small", 1_000), ("big", 150_000_000)]);
        assert!(compare(&base, &creep, &t).is_empty());
    }

    #[test]
    fn missing_case_is_a_regression() {
        let t = Thresholds::default();
        let base = report(&[("scan/total", 5)]);
        let cur = report(&[]);
        let regs = compare(&base, &cur, &t);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].reason.contains("missing"));
    }

    #[test]
    fn merged_concatenates_cases() {
        let m = PerfReport::merged("baseline", &[report(&[("a/x", 1)]), report(&[("b/y", 2)])]);
        assert_eq!(m.median_ns("a/x"), Some(1));
        assert_eq!(m.median_ns("b/y"), Some(2));
        assert_eq!(m.name, "baseline");
    }
}
