//! # vc-bench — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§8) from
//! the synthetic workloads: Tables 2–7, Figures 7 and 9, the §3.1
//! preliminary experiment, and the §8.3.2 recall measurement. The `tables`
//! binary renders them as text plus CSV files under `result/`.

pub mod experiments;
pub mod harness;
pub mod perf;
pub mod runs;

pub use runs::{
    prepare,
    AppRun, //
};
