//! Shared experiment state: generated applications with their programs and
//! pipeline analyses, plus small text-table rendering helpers.

use std::time::{
    Duration,
    Instant, //
};

use valuecheck::pipeline::{
    run,
    Analysis,
    Options, //
};
use vc_ir::Program;
use vc_workload::{
    generate,
    AppProfile,
    GeneratedApp, //
};

/// One evaluated application: workload, compiled program, pipeline analysis.
pub struct AppRun {
    /// The generated workload.
    pub app: GeneratedApp,
    /// The compiled program at head.
    pub prog: Program,
    /// The paper-configuration pipeline result.
    pub analysis: Analysis,
    /// Wall-clock duration of the full pipeline run.
    pub full_time: Duration,
}

impl AppRun {
    /// Application name.
    pub fn name(&self) -> &str {
        &self.app.profile.name
    }

    /// Confirmed (ground-truth) bugs among the pipeline's report.
    pub fn confirmed_detected(&self) -> usize {
        self.analysis
            .report
            .rows
            .iter()
            .filter(|r| self.app.truth.is_confirmed_bug(&r.function))
            .count()
    }

    /// Confirmed bugs among the top `k` ranked findings.
    pub fn confirmed_in_top(&self, k: usize) -> usize {
        self.analysis
            .report
            .rows
            .iter()
            .take(k)
            .filter(|r| self.app.truth.is_confirmed_bug(&r.function))
            .count()
    }
}

/// Generates, compiles and analyses every paper profile at `scale`
/// (1.0 = the full published sizes).
pub fn prepare(scale: f64) -> Vec<AppRun> {
    AppProfile::all()
        .into_iter()
        .map(|p| {
            let profile = if (scale - 1.0).abs() < 1e-9 {
                p
            } else {
                p.scaled(scale)
            };
            prepare_one(&profile)
        })
        .collect()
}

/// Generates and analyses a single profile.
pub fn prepare_one(profile: &AppProfile) -> AppRun {
    let app = generate(profile);
    let prog = Program::build(&app.source_refs(), &app.defines)
        .unwrap_or_else(|e| panic!("{}: generated sources fail to build: {e}", profile.name));
    let t0 = Instant::now();
    let analysis = run(&prog, &app.repo, &Options::paper());
    let full_time = t0.elapsed();
    AppRun {
        app,
        prog,
        analysis,
        full_time,
    }
}

/// Renders rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV with the given header.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// A deterministic xorshift sampler for the paper's random-sampling steps.
pub struct Sampler(u64);

impl Sampler {
    /// Creates a sampler with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    /// Next value in `[0, bound)`.
    pub fn next(&mut self, bound: usize) -> usize {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x % bound.max(1) as u64) as usize
    }

    /// Samples `k` distinct indices from `0..n` (all of them if `k >= n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates.
        let take = k.min(n);
        for i in 0..take {
            let j = i + self.next(n - i);
            idx.swap(i, j);
        }
        idx.truncate(take);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
    }

    #[test]
    fn sampler_yields_distinct_indices() {
        let mut s = Sampler::new(42);
        let picks = s.sample_indices(100, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn sampler_caps_at_population() {
        let mut s = Sampler::new(7);
        assert_eq!(s.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn prepare_one_runs_scaled_profile() {
        let run = prepare_one(&AppProfile::openssl().scaled(0.1));
        assert!(run.analysis.detected() > 0);
        assert!(run.confirmed_detected() <= run.analysis.detected());
    }
}
