//! A minimal wall-clock micro-benchmark harness.
//!
//! The bench files under `benches/` are plain `harness = false` binaries:
//! each builds a [`Harness`], registers closures with [`Harness::bench`],
//! and calls [`Harness::finish`], which prints a summary table and writes
//! `BENCH_<name>.json` (via the in-tree JSON writer) next to the working
//! directory for machine consumption.
//!
//! Measurement model: a few warmup calls, then `sample_size` timed calls,
//! each through [`std::hint::black_box`] so results are not optimised away.
//! Reported statistics are min / median / mean / p95 / max in nanoseconds.

use std::{
    hint::black_box,
    time::Instant, //
};

use vc_obs::Json;

/// Per-case timings and derived statistics.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// `group/name` label for the case.
    pub name: String,
    /// One wall-clock duration per timed call, nanoseconds, sorted.
    pub samples_ns: Vec<u64>,
}

impl CaseResult {
    fn min(&self) -> u64 {
        self.samples_ns.first().copied().unwrap_or(0)
    }

    fn max(&self) -> u64 {
        self.samples_ns.last().copied().unwrap_or(0)
    }

    fn mean(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        (self.samples_ns.iter().sum::<u64>() as f64 / self.samples_ns.len() as f64) as u64
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let rank = (p * (self.samples_ns.len() - 1) as f64).round() as usize;
        self.samples_ns[rank.min(self.samples_ns.len() - 1)]
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("samples".into(), Json::Int(self.samples_ns.len() as i64)),
            ("min_ns".into(), Json::Int(self.min() as i64)),
            ("median_ns".into(), Json::Int(self.percentile(0.5) as i64)),
            ("mean_ns".into(), Json::Int(self.mean() as i64)),
            ("p95_ns".into(), Json::Int(self.percentile(0.95) as i64)),
            ("max_ns".into(), Json::Int(self.max() as i64)),
        ])
    }
}

/// Collects benchmark cases and renders the report.
pub struct Harness {
    name: String,
    group: String,
    sample_size: usize,
    warmup: usize,
    results: Vec<CaseResult>,
}

impl Harness {
    /// A harness named after the bench binary; the name also names the
    /// output file `BENCH_<name>.json`.
    pub fn new(name: &str) -> Harness {
        Harness {
            name: name.to_string(),
            group: String::new(),
            sample_size: 20,
            warmup: 2,
            results: Vec::new(),
        }
    }

    /// Starts a new logical group; subsequent cases are labelled
    /// `group/name`.
    pub fn group(&mut self, group: &str) -> &mut Harness {
        self.group = group.to_string();
        self
    }

    /// Timed calls per case (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Harness {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and records the case.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &mut Harness {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        let label = if self.group.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.group)
        };
        eprintln!("bench {label}: {}", render_ns(samples[samples.len() / 2]));
        self.results.push(CaseResult {
            name: label,
            samples_ns: samples,
        });
        self
    }

    /// Prints the summary table and writes `BENCH_<name>.json`.
    pub fn finish(&mut self) {
        println!(
            "\n{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "median", "mean", "p95"
        );
        for r in &self.results {
            println!(
                "{:<44} {:>12} {:>12} {:>12}",
                r.name,
                render_ns(r.percentile(0.5)),
                render_ns(r.mean()),
                render_ns(r.percentile(0.95)),
            );
        }
        let json = Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "benches".into(),
                Json::Arr(self.results.iter().map(CaseResult::to_json).collect()),
            ),
        ]);
        let path = format!("BENCH_{}.json", self.name);
        match std::fs::write(&path, json.to_string_pretty()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// `1234567` → `"1.235ms"`, keeping the table readable across scales.
fn render_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let r = CaseResult {
            name: "t".into(),
            samples_ns: (1..=100).collect(),
        };
        assert_eq!(r.min(), 1);
        assert_eq!(r.max(), 100);
        assert_eq!(r.percentile(0.5), 51);
        assert_eq!(r.percentile(0.95), 95);
        assert_eq!(r.mean(), 50);
    }

    #[test]
    fn bench_records_labels_and_sample_counts() {
        let mut h = Harness::new("unit");
        h.group("g").sample_size(3).bench("case", || 1 + 1);
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].name, "g/case");
        assert_eq!(h.results[0].samples_ns.len(), 3);
        assert!(h.results[0].samples_ns.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn render_scales_units() {
        assert_eq!(render_ns(999), "999ns");
        assert_eq!(render_ns(1_500), "1.500us");
        assert_eq!(render_ns(2_000_000), "2.000ms");
        assert_eq!(render_ns(3_500_000_000), "3.500s");
    }
}
