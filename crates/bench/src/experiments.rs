//! The evaluation experiments, one function per table/figure of the paper.
//!
//! Every function returns the rendered text block plus `(file name, CSV)`
//! pairs for the `result/` directory, mirroring the paper artifact's
//! outputs (`table_2_detected_bugs.csv`, ...).

use std::collections::{
    BTreeMap,
    BTreeSet,
    HashSet, //
};
use std::time::Instant;

use valuecheck::{
    authorship::AuthorshipCtx,
    detect::{
        detect_program,
        DetectConfig, //
    },
    incremental::analyze_commit_in,
    pipeline::{
        run,
        Options, //
    },
    prune::{
        PruneConfig,
        PruneReason, //
    },
    rank::RankConfig,
};
use vc_baselines::{
    clang_unused,
    coverity_unused,
    infer_unused,
    smatch_unused, //
};
use vc_familiarity::{
    fit_dok,
    DokModel,
    FactorMask,
    Metrics, //
};
use vc_ir::{
    parser::parse,
    Program, //
};
use vc_workload::{
    BugCategory,
    PlantKind,
    Severity, //
};

use crate::runs::{
    render_csv,
    render_table,
    AppRun,
    Sampler, //
};

/// An experiment's rendered output.
pub struct Output {
    /// Human-readable block (title + table).
    pub text: String,
    /// CSV files to write under `result/`.
    pub csv: Vec<(String, String)>,
}

fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }
}

// ---------------------------------------------------------------------------
// Table 2 — newly detected and confirmed bugs.
// ---------------------------------------------------------------------------

/// Table 2: the number of bugs newly detected, per application.
pub fn table2(runs: &[AppRun]) -> Output {
    let mut rows = Vec::new();
    let (mut td, mut tc) = (0, 0);
    for r in runs {
        let detected = r.analysis.detected();
        let confirmed = r.confirmed_detected();
        td += detected;
        tc += confirmed;
        rows.push(vec![
            r.name().to_string(),
            detected.to_string(),
            confirmed.to_string(),
        ]);
    }
    rows.push(vec!["Total".into(), td.to_string(), tc.to_string()]);
    let headers = ["Application", "#Detected Bugs", "#Confirmed Bugs"];
    let text = format!(
        "== Table 2: bugs newly detected by ValueCheck ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![(
            "table_2_detected_bugs.csv".into(),
            render_csv(&headers, &rows),
        )],
    }
}

// ---------------------------------------------------------------------------
// Table 3 — bug categories.
// ---------------------------------------------------------------------------

/// Table 3: detected confirmed bugs by category.
pub fn table3(runs: &[AppRun]) -> Output {
    let mut missing = 0;
    let mut semantic = 0;
    let mut examples: Vec<Vec<String>> = Vec::new();
    for r in runs {
        for row in &r.analysis.report.rows {
            if let Some(p) = r.app.truth.lookup(&row.function) {
                if let PlantKind::ConfirmedBug { category, .. } = &p.kind {
                    let (cat, desc) = match category {
                        BugCategory::MissingCheck => {
                            missing += 1;
                            ("Missing Check", describe_shape(&row.function))
                        }
                        BugCategory::Semantic => {
                            semantic += 1;
                            ("Semantic", describe_shape(&row.function))
                        }
                    };
                    if examples.len() < 8 {
                        examples.push(vec![
                            cat.to_string(),
                            r.name().to_string(),
                            desc.to_string(),
                        ]);
                    }
                }
            }
        }
    }
    let headers = ["Bug Type", "App.", "Bug Description"];
    let text = format!(
        "== Table 3: bug categories ==\nMissing Check: {missing}   Semantic: {semantic}\n{}",
        render_table(&headers, &examples)
    );
    let mut rows = examples;
    rows.push(vec![
        "totals".into(),
        format!("missing-check={missing}"),
        format!("semantic={semantic}"),
    ]);
    Output {
        text,
        csv: vec![("table_3_categories.csv".into(), render_csv(&headers, &rows))],
    }
}

fn describe_shape(func: &str) -> &'static str {
    if func.starts_with("acl_") {
        "Unhandled error code (check destroyed by overwrite)"
    } else if func.starts_with("init_") {
        "Missing check on initialization result"
    } else if func.starts_with("seq_") {
        "Unchecked status of a commonly-checked call"
    } else if func.starts_with("open_buf_") {
        "Configuration value overwritten inside callee"
    } else if func.starts_with("host_") {
        "Meaningful value replaced by constant"
    } else {
        "Unused definition indicates lost value"
    }
}

// ---------------------------------------------------------------------------
// Table 4 — prune-rate breakdown and sampled pruning false negatives.
// ---------------------------------------------------------------------------

/// Table 4: prune rates per strategy plus the sampled prune-FN rate.
pub fn table4(runs: &[AppRun]) -> Output {
    let mut rows = Vec::new();
    for r in runs {
        let orig = r.analysis.cross_scope_candidates;
        let counts = [
            r.analysis.pruned_by(PruneReason::ConfigDependency),
            r.analysis.pruned_by(PruneReason::Cursor),
            r.analysis.pruned_by(PruneReason::UnusedHint),
            r.analysis.pruned_by(PruneReason::PeerDefinition),
        ];
        let total: usize = counts.iter().sum();
        // Sample 100 pruned cases and look up ground truth (§8.3.4).
        let pruned = &r.analysis.prune_outcome.pruned;
        let mut sampler = Sampler::new(0x5eed ^ r.app.profile.seed);
        let picks = sampler.sample_indices(pruned.len(), 100);
        let fn_count = picks
            .iter()
            .filter(|&&i| {
                r.app
                    .truth
                    .is_confirmed_bug(&pruned[i].0.candidate.func_name)
            })
            .count();
        rows.push(vec![
            r.name().to_string(),
            orig.to_string(),
            format!("{} ({})", counts[0], pct(counts[0], orig)),
            format!("{} ({})", counts[1], pct(counts[1], orig)),
            format!("{} ({})", counts[2], pct(counts[2], orig)),
            format!("{} ({})", counts[3], pct(counts[3], orig)),
            format!("{} ({})", total, pct(total, orig)),
            r.analysis.detected().to_string(),
            pct(fn_count, picks.len()),
        ]);
    }
    let headers = [
        "App.",
        "#Original",
        "Config Dep.",
        "Cursor",
        "Unused Hints",
        "Peer Def.",
        "Total Pruned",
        "#Detected",
        "%PruneFN(sampled)",
    ];
    let text = format!(
        "== Table 4: prune-rate breakdown ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![(
            "table_4_prune_rates.csv".into(),
            render_csv(&headers, &rows),
        )],
    }
}

// ---------------------------------------------------------------------------
// Table 5 — comparison with Clang, Infer, Smatch, Coverity.
// ---------------------------------------------------------------------------

/// Table 5: unused-definition bugs found by each tool.
pub fn table5(runs: &[AppRun]) -> Output {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut totals: BTreeMap<&str, (usize, usize)> = BTreeMap::new();

    let mut per_tool: Vec<(String, Vec<String>)> = vec![
        ("Clang".into(), Vec::new()),
        ("Infer-unused".into(), Vec::new()),
        ("Smatch-unused".into(), Vec::new()),
        ("Coverity-unused".into(), Vec::new()),
        ("ValueCheck".into(), Vec::new()),
    ];

    for r in runs {
        // Clang.
        let modules: Vec<(String, vc_ir::ast::Module)> = r
            .app
            .sources
            .iter()
            .enumerate()
            .map(|(i, (p, s))| {
                (
                    p.clone(),
                    parse(vc_ir::FileId(i as u32), s).expect("generated source parses"),
                )
            })
            .collect();
        let clang = clang_unused(&modules);
        let (cf, cr) = count_real(r, clang.iter().map(|f| f.function.as_str()));
        per_tool[0].1.push(cell(cf, cr));
        let e = totals.entry("Clang").or_default();
        *e = add(*e, (cf, cr));

        // Infer (partial coverage; errors out at 0 coverage — Linux).
        if r.app.profile.infer_coverage > 0.0 {
            let subset: Vec<(&str, &str)> = r
                .app
                .sources
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    // Deterministic per-file inclusion at the coverage rate.
                    let h = (*i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
                    ((h % 1000) as f64) / 1000.0 < r.app.profile.infer_coverage
                })
                .map(|(_, (p, s))| (p.as_str(), s.as_str()))
                .collect();
            let sub = Program::build(&subset, &r.app.defines).expect("subset builds");
            let infer = infer_unused(&sub);
            let (f, real) = count_real(r, infer.iter().map(|x| x.function.as_str()));
            per_tool[1].1.push(cell(f, real));
            *totals.entry("Infer").or_default() =
                add(*totals.entry("Infer").or_default(), (f, real));
        } else {
            per_tool[1].1.push("-*".into());
        }

        // Smatch (builds only Linux).
        if r.app.profile.smatch_builds {
            let sm = smatch_unused(&modules);
            let (f, real) = count_real(r, sm.iter().map(|x| x.function.as_str()));
            per_tool[2].1.push(cell(f, real));
            *totals.entry("Smatch").or_default() =
                add(*totals.entry("Smatch").or_default(), (f, real));
        } else {
            per_tool[2].1.push("-*".into());
        }

        // Coverity with historical-warning suppression.
        let mut cov = coverity_unused(&r.prog, &HashSet::new());
        if let Some(last_run) = r.app.coverity_last_run {
            cov.retain(|f| {
                r.app
                    .repo
                    .blame(&f.file, f.line)
                    .map(|b| b.timestamp >= last_run)
                    .unwrap_or(true)
            });
        }
        let (f, real) = count_real(r, cov.iter().map(|x| x.function.as_str()));
        per_tool[3].1.push(cell(f, real));
        *totals.entry("Coverity").or_default() =
            add(*totals.entry("Coverity").or_default(), (f, real));

        // ValueCheck.
        let vf = r.analysis.detected();
        let vr = r.confirmed_detected();
        per_tool[4].1.push(cell(vf, vr));
        *totals.entry("ValueCheck").or_default() =
            add(*totals.entry("ValueCheck").or_default(), (vf, vr));
    }

    let tool_keys = ["Clang", "Infer", "Smatch", "Coverity", "ValueCheck"];
    for (ti, (tool, cells)) in per_tool.iter().enumerate() {
        let (tf, tr) = totals.get(tool_keys[ti]).copied().unwrap_or((0, 0));
        let mut row = vec![tool.clone()];
        row.extend(cells.iter().cloned());
        row.push(cell(tf, tr));
        csv_rows.push(row.clone());
        rows.push(row);
    }

    let mut headers = vec!["Tool"];
    for r in runs {
        headers.push(r.name());
    }
    headers.push("Total");
    let text = format!(
        "== Table 5: found/real/%FP per tool ==  (-* = tool errors on this application)\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![(
            "table_5_tool_comparison.csv".into(),
            render_csv(&headers, &csv_rows),
        )],
    }
}

fn cell(found: usize, real: usize) -> String {
    if found == 0 {
        "0".to_string()
    } else {
        format!("{}/{}/{}", found, real, pct(found - real, found))
    }
}

fn add(a: (usize, usize), b: (usize, usize)) -> (usize, usize) {
    (a.0 + b.0, a.1 + b.1)
}

fn count_real<'a>(r: &AppRun, funcs: impl Iterator<Item = &'a str>) -> (usize, usize) {
    let mut found = 0;
    let mut real = 0;
    for f in funcs {
        found += 1;
        if r.app.truth.is_confirmed_bug(f) {
            real += 1;
        }
    }
    (found, real)
}

// ---------------------------------------------------------------------------
// Table 6 — effect of authorship and the DOK model.
// ---------------------------------------------------------------------------

/// Table 6: confirmed bugs among the top-20 findings under ablations.
pub fn table6(runs: &[AppRun]) -> Output {
    let configs: Vec<(&str, Options)> = vec![
        ("ValueCheck", Options::paper()),
        (
            "w/o Authorship",
            Options {
                cross_scope_only: false,
                ..Options::paper()
            },
        ),
        (
            "w/o Familiarity",
            Options {
                rank: RankConfig {
                    enabled: false,
                    ..RankConfig::default()
                },
                ..Options::paper()
            },
        ),
        ("w/o AC", mask_options("ac")),
        ("w/o DL", mask_options("dl")),
        ("w/o FA", mask_options("fa")),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_config_totals = vec![0usize; configs.len()];
    let mut per_app_cells: Vec<Vec<String>> = vec![Vec::new(); runs.len()];
    for (ci, (_, opts)) in configs.iter().enumerate() {
        for (ai, r) in runs.iter().enumerate() {
            let analysis = run(&r.prog, &r.app.repo, opts);
            let top20 = analysis
                .report
                .rows
                .iter()
                .take(20)
                .filter(|row| r.app.truth.is_confirmed_bug(&row.function))
                .count();
            per_config_totals[ci] += top20;
            per_app_cells[ai].push(top20.to_string());
        }
    }
    for (ai, r) in runs.iter().enumerate() {
        let mut row = vec![r.name().to_string()];
        row.extend(per_app_cells[ai].iter().cloned());
        rows.push(row);
    }
    let mut total_row = vec!["Total".to_string()];
    total_row.extend(per_config_totals.iter().map(|t| t.to_string()));
    rows.push(total_row);

    let headers: Vec<&str> = std::iter::once("App.")
        .chain(configs.iter().map(|(n, _)| *n))
        .collect();
    let text = format!(
        "== Table 6: bugs within the top-20 findings, per ablation ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![("table_6_dok_effect.csv".into(), render_csv(&headers, &rows))],
    }
}

fn mask_options(factor: &str) -> Options {
    Options {
        rank: RankConfig {
            mask: FactorMask::without(factor),
            ..RankConfig::default()
        },
        ..Options::paper()
    }
}

// ---------------------------------------------------------------------------
// Table 7 — scalability.
// ---------------------------------------------------------------------------

/// Table 7: LOC, whole-application analysis time, and per-commit
/// incremental time over the most recent commits.
pub fn table7(runs: &[AppRun]) -> Output {
    let mut rows = Vec::new();
    let mut total_loc = 0usize;
    let mut total_full = 0.0f64;
    let mut total_inc = 0.0f64;
    for r in runs {
        let loc = r.app.loc();
        total_loc += loc;
        let full = r.full_time.as_secs_f64();
        total_full += full;

        // Incremental: the last up-to-20 commits (the paper uses the first
        // 20 commits of 2022; our histories end mid-2022). Snapshot
        // programs are built outside the timed region — the paper measures
        // analysis over pre-compiled bitcode, not compilation.
        let commits = r.app.repo.commits();
        let recent: Vec<_> = commits.iter().rev().take(20).map(|c| c.id).collect();
        let mut programs = Vec::new();
        for &c in &recent {
            let tree = r.app.repo.snapshot_at(c);
            let mut sources: Vec<(&str, &str)> =
                tree.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
            sources.sort_by_key(|(p, _)| p.to_string());
            programs.push(Program::build(&sources, &r.app.defines).expect("snapshot builds"));
        }
        let t0 = Instant::now();
        for (&c, prog) in recent.iter().zip(&programs) {
            let _ = analyze_commit_in(
                prog,
                &r.app.repo,
                c,
                &PruneConfig::default(),
                &RankConfig::default(),
            );
        }
        let inc = if recent.is_empty() {
            0.0
        } else {
            t0.elapsed().as_secs_f64() / recent.len() as f64
        };
        total_inc += inc;

        rows.push(vec![
            r.name().to_string(),
            loc.to_string(),
            format!("{full:.2}s"),
            format!("{inc:.3}s"),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        total_loc.to_string(),
        format!("{total_full:.2}s"),
        format!("{total_inc:.3}s"),
    ]);
    let headers = ["Application", "#LOC", "Time", "Incremental Time"];
    let text = format!(
        "== Table 7: scalability (synthetic workloads; absolute numbers are \
         not comparable to the paper's testbed) ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![(
            "table_7_time_analysis.csv".into(),
            render_csv(&headers, &rows),
        )],
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — bug distribution, severity, and age.
// ---------------------------------------------------------------------------

/// Figure 7: confirmed detected bugs by component, severity, and age.
pub fn figure7(runs: &[AppRun]) -> Output {
    let mut components: BTreeMap<String, usize> = BTreeMap::new();
    let mut severities: BTreeMap<&str, usize> = BTreeMap::new();
    let mut ages = [0usize; 3]; // <100, 100-1000, >1000 days
    let mut total = 0usize;
    for r in runs {
        for row in &r.analysis.report.rows {
            if let Some(p) = r.app.truth.lookup(&row.function) {
                if let PlantKind::ConfirmedBug {
                    component,
                    severity,
                    introduced,
                    ..
                } = &p.kind
                {
                    total += 1;
                    *components.entry(component.clone()).or_default() += 1;
                    let sev = match severity {
                        Severity::High => "high",
                        Severity::Medium => "medium",
                        Severity::Low => "low",
                    };
                    *severities.entry(sev).or_default() += 1;
                    let days = (r.app.truth.now - introduced) / 86_400;
                    if days > 1000 {
                        ages[2] += 1;
                    } else if days >= 100 {
                        ages[1] += 1;
                    } else {
                        ages[0] += 1;
                    }
                }
            }
        }
    }
    let mut rows = Vec::new();
    for (c, n) in &components {
        rows.push(vec![
            "component".into(),
            c.clone(),
            n.to_string(),
            pct(*n, total),
        ]);
    }
    for (s, n) in &severities {
        rows.push(vec![
            "severity".into(),
            s.to_string(),
            n.to_string(),
            pct(*n, total),
        ]);
    }
    for (label, n) in [
        ("<100d", ages[0]),
        ("100-1000d", ages[1]),
        (">1000d", ages[2]),
    ] {
        rows.push(vec![
            "age".into(),
            label.into(),
            n.to_string(),
            pct(n, total),
        ]);
    }
    let headers = ["Facet", "Bucket", "Count", "Share"];
    let text = format!(
        "== Figure 7: confirmed bugs by component / severity / days-before-detected ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![("figure_7_dist.csv".into(), render_csv(&headers, &rows))],
    }
}

// ---------------------------------------------------------------------------
// Figure 9 — precision at ranking cutoffs.
// ---------------------------------------------------------------------------

/// Figure 9: precision of the top-N findings per application.
pub fn figure9(runs: &[AppRun]) -> Output {
    let cutoffs = [10usize, 20, 30, 40, 50, 60, 70, 80, 90];
    let mut rows = Vec::new();
    for k in cutoffs {
        let mut reported = 0usize;
        let mut confirmed = 0usize;
        for r in runs {
            let take = k.min(r.analysis.report.rows.len());
            reported += take;
            confirmed += r.confirmed_in_top(k);
        }
        rows.push(vec![
            k.to_string(),
            reported.to_string(),
            confirmed.to_string(),
            format!("{:.1}%", 100.0 * confirmed as f64 / reported.max(1) as f64),
        ]);
    }
    let headers = ["Cutoff/app", "Reported", "Confirmed", "Precision"];
    let text = format!(
        "== Figure 9: precision vs. report cutoff (after familiarity ranking) ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![(
            "figure_9_detected_bug_dok.csv".into(),
            render_csv(&headers, &rows),
        )],
    }
}

// ---------------------------------------------------------------------------
// §3.1 preliminary experiment + §8.3.2 recall.
// ---------------------------------------------------------------------------

/// The §3.1 differential study plus the §8.3.2 recall measurement.
///
/// Mirrors the paper's procedure: collect unused definitions present in the
/// 2019 snapshot but gone by 2021 (differential liveness), randomly sample
/// 60 of them **across all applications**, check whether the removing commit
/// is a bug fix, and whether the definition crossed author scopes in the
/// 2019 tree. Recall then re-runs the full pipeline on the 2019 snapshots
/// against the sampled (and all planted) cross-scope existing bugs.
pub fn prelim_and_recall(runs: &[AppRun]) -> Output {
    struct Removed {
        app: usize,
        func: String,
    }
    let mut removed_all: Vec<Removed> = Vec::new();
    let mut per_app_removed = vec![0usize; runs.len()];

    // Per-app context reused across phases.
    let mut progs_2019 = Vec::new();
    let mut repos_2019 = Vec::new();
    for (ai, r) in runs.iter().enumerate() {
        let (Some(s2019), Some(s2021)) = (r.app.snapshot_2019, r.app.snapshot_2021) else {
            progs_2019.push(None);
            repos_2019.push(None);
            continue;
        };
        let prog_2019 = build_tree(&r.app.repo.snapshot_at(s2019), &r.app.defines);
        let prog_2021 = build_tree(&r.app.repo.snapshot_at(s2021), &r.app.defines);
        let ids_2019 = candidate_identities(&prog_2019);
        let ids_2021 = candidate_identities(&prog_2021);
        for (func, _var) in ids_2019.iter().filter(|id| !ids_2021.contains(*id)) {
            removed_all.push(Removed {
                app: ai,
                func: func.clone(),
            });
            per_app_removed[ai] += 1;
        }
        progs_2019.push(Some(prog_2019));
        repos_2019.push(Some(r.app.repo.checkout(s2019)));
    }

    // Global sample of 60 (the paper's sampling step).
    let mut sampler = Sampler::new(0x31a1);
    let picks = sampler.sample_indices(removed_all.len(), 60);
    let mut bugfix = 0usize;
    let mut cross = 0usize;
    let mut sampled_cross: Vec<(usize, String)> = Vec::new();
    for &i in &picks {
        let item = &removed_all[i];
        let r = &runs[item.app];
        let (s2019, s2021) = (
            r.app.snapshot_2019.expect("checked"),
            r.app.snapshot_2021.expect("checked"),
        );
        let is_fix = r
            .app
            .repo
            .commits()
            .iter()
            .filter(|c| c.id > s2019 && c.id <= s2021)
            .find(|c| c.message.contains(item.func.as_str()))
            .map(|c| c.message.starts_with("fix"))
            .unwrap_or(false);
        if !is_fix {
            continue;
        }
        bugfix += 1;
        let prog = progs_2019[item.app].as_ref().expect("checked");
        let repo = repos_2019[item.app].as_ref().expect("checked");
        let auth = AuthorshipCtx::new(prog, repo);
        let cands = candidates_of_function(prog, &item.func);
        if cands.iter().any(|c| auth.attribute(c).cross_scope) {
            cross += 1;
            sampled_cross.push((item.app, item.func.clone()));
        }
    }

    let mut rows: Vec<Vec<String>> = runs
        .iter()
        .enumerate()
        .map(|(ai, r)| vec![r.name().to_string(), per_app_removed[ai].to_string()])
        .collect();
    rows.push(vec!["Total".into(), removed_all.len().to_string()]);
    let headers = ["App.", "Removed 2019→2021"];
    let sample_line = format!(
        "Sampled {} of {} removed definitions: {} removed by bug-fix commits, \
         {} of those crossed author scopes.",
        picks.len(),
        removed_all.len(),
        bugfix,
        cross
    );

    // §8.3.2 recall: pipeline on the 2019 snapshots.
    let mut detected_per_app: Vec<BTreeSet<String>> = Vec::new();
    for (ai, r) in runs.iter().enumerate() {
        let (Some(prog), Some(repo)) = (&progs_2019[ai], &repos_2019[ai]) else {
            detected_per_app.push(BTreeSet::new());
            continue;
        };
        let analysis = run(prog, repo, &Options::paper());
        detected_per_app.push(
            analysis
                .report
                .rows
                .iter()
                .map(|x| x.function.clone())
                .collect(),
        );
        let _ = r;
    }
    let sampled_found = sampled_cross
        .iter()
        .filter(|(ai, func)| detected_per_app[*ai].contains(func))
        .count();
    let mut planted_cross = 0usize;
    let mut planted_found = 0usize;
    let mut recall_rows = Vec::new();
    for (ai, r) in runs.iter().enumerate() {
        let mut app_cross = 0usize;
        let mut app_found = 0usize;
        for p in &r.app.truth.planted {
            if let PlantKind::PrelimRemoved {
                cross_scope: true, ..
            } = p.kind
            {
                app_cross += 1;
                if detected_per_app[ai].contains(&p.func) {
                    app_found += 1;
                }
            }
        }
        planted_cross += app_cross;
        planted_found += app_found;
        recall_rows.push(vec![
            r.name().to_string(),
            app_cross.to_string(),
            app_found.to_string(),
            pct(app_found, app_cross),
        ]);
    }
    recall_rows.push(vec![
        "Total".into(),
        planted_cross.to_string(),
        planted_found.to_string(),
        pct(planted_found, planted_cross),
    ]);
    let recall_headers = ["App.", "Existing bugs", "Detected", "Recall"];
    let recall_line = format!(
        "Recall on the {} sampled cross-scope existing bugs: {}/{} ({}); \
         misses are peer-definition prunes (§8.3.2).",
        sampled_cross.len(),
        sampled_found,
        sampled_cross.len(),
        pct(sampled_found, sampled_cross.len().max(1))
    );

    let text = format!(
        "== §3.1 preliminary study: unused definitions removed between the \
         2019 and 2021 snapshots ==\n{}{sample_line}\n\n== §8.3.2 recall on \
         planted cross-scope existing bugs ==\n{}{recall_line}\n",
        render_table(&headers, &rows),
        render_table(&recall_headers, &recall_rows)
    );
    let mut csv_rows = rows;
    csv_rows.push(vec![
        format!("sampled={}", picks.len()),
        format!("bugfix={bugfix};cross={cross}"),
    ]);
    Output {
        text,
        csv: vec![
            ("prelim_study.csv".into(), render_csv(&headers, &csv_rows)),
            (
                "recall_existing_bugs.csv".into(),
                render_csv(&recall_headers, &recall_rows),
            ),
        ],
    }
}

// ---------------------------------------------------------------------------
// §6 — DOK weight calibration.
// ---------------------------------------------------------------------------

/// Replicates the paper's §6 calibration: sample 40 source lines per
/// application, obtain (simulated) developer self-ratings on a 1–5 scale,
/// and fit the DOK weights by OLS. The paper's fit produced
/// `α₀=3.1, α_FA=1.2, α_DL=0.2, α_AC=0.5`.
pub fn dok_calibration(runs: &[AppRun]) -> Output {
    let mut samples: Vec<(Metrics, f64)> = Vec::new();
    let mut sampler = Sampler::new(0xd0f1);
    for r in runs {
        let paths: Vec<String> = r.app.repo.paths().iter().map(|p| p.to_string()).collect();
        let mut taken = 0usize;
        let mut guard = 0usize;
        while taken < 40 && guard < 4000 {
            guard += 1;
            let path = &paths[sampler.next(paths.len())];
            let nlines = r.app.repo.line_count(path);
            if nlines == 0 {
                continue;
            }
            let line = 1 + sampler.next(nlines) as u32;
            let Some(author) = r.app.repo.blame_author(path, line) else {
                continue;
            };
            let m = Metrics::compute(&r.app.repo, path, author);
            // Simulated self-rating: the latent DOK familiarity plus
            // developer-judgement noise, clamped to the 1–5 survey scale.
            let noise = ((samples.len() as f64 * 0.817).sin()) * 0.3;
            let rating = (DokModel::PAPER.score(&m) + noise).clamp(1.0, 5.0);
            samples.push((m, rating));
            taken += 1;
        }
    }
    let fitted = fit_dok(&samples);
    let rows = match &fitted {
        Ok(model) => vec![
            vec![
                "alpha0".into(),
                "3.1".into(),
                format!("{:.2}", model.alpha0),
            ],
            vec![
                "alpha_FA".into(),
                "1.2".into(),
                format!("{:.2}", model.alpha_fa),
            ],
            vec![
                "alpha_DL".into(),
                "0.2".into(),
                format!("{:.2}", model.alpha_dl),
            ],
            vec![
                "alpha_AC".into(),
                "0.5".into(),
                format!("{:.2}", model.alpha_ac),
            ],
        ],
        Err(e) => vec![vec!["error".into(), e.to_string(), String::new()]],
    };
    let headers = ["Weight", "Paper", "Refitted"];
    let text = format!(
        "== §6 DOK calibration: OLS fit over {} sampled self-ratings ==\n{}",
        samples.len(),
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![("dok_calibration.csv".into(), render_csv(&headers, &rows))],
    }
}

// ---------------------------------------------------------------------------
// §9.2 — the EA alternative familiarity model.
// ---------------------------------------------------------------------------

/// Compares DOK ranking against the §9.2 EA alternative: confirmed bugs in
/// the top-20 findings under each model.
pub fn ea_alternative(runs: &[AppRun]) -> Output {
    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize);
    for r in runs {
        let dok_top = r.confirmed_in_top(20);
        let ea_analysis = run(
            &r.prog,
            &r.app.repo,
            &Options {
                rank: RankConfig::ea(),
                ..Options::paper()
            },
        );
        let ea_top = ea_analysis
            .report
            .rows
            .iter()
            .take(20)
            .filter(|row| r.app.truth.is_confirmed_bug(&row.function))
            .count();
        totals = (totals.0 + dok_top, totals.1 + ea_top);
        rows.push(vec![
            r.name().to_string(),
            dok_top.to_string(),
            ea_top.to_string(),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        totals.0.to_string(),
        totals.1.to_string(),
    ]);
    let headers = ["App.", "DOK top-20 bugs", "EA top-20 bugs"];
    let text = format!(
        "== §9.2 alternative familiarity model: DOK vs EA (bugs in top-20) ==\n{}",
        render_table(&headers, &rows)
    );
    Output {
        text,
        csv: vec![("ea_alternative.csv".into(), render_csv(&headers, &rows))],
    }
}

fn build_tree(tree: &std::collections::HashMap<String, String>, defines: &[String]) -> Program {
    let mut sources: Vec<(&str, &str)> =
        tree.iter().map(|(p, c)| (p.as_str(), c.as_str())).collect();
    sources.sort_by_key(|(p, _)| p.to_string());
    Program::build(&sources, defines).expect("snapshot builds")
}

/// `(function, variable)` identities of all raw unused definitions.
///
/// Synthetic ignored-result slots are named `$ret_<callee>_<line>`; the line
/// component shifts whenever code above moves, so it is stripped for the
/// differential comparison.
fn candidate_identities(prog: &Program) -> BTreeSet<(String, String)> {
    detect_program(prog, DetectConfig::default())
        .into_iter()
        .map(|c| (c.func_name, normalize_var(&c.var_name)))
        .collect()
}

fn normalize_var(var: &str) -> String {
    if let Some(rest) = var.strip_prefix("$ret_") {
        if let Some(pos) = rest.rfind('_') {
            if rest[pos + 1..].chars().all(|c| c.is_ascii_digit()) {
                return format!("$ret_{}", &rest[..pos]);
            }
        }
    }
    var.to_string()
}

fn candidates_of_function(prog: &Program, func: &str) -> Vec<valuecheck::Candidate> {
    detect_program(prog, DetectConfig::default())
        .into_iter()
        .filter(|c| c.func_name == func)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::prepare;

    fn quick_runs() -> Vec<AppRun> {
        prepare(0.08)
    }

    #[test]
    fn all_experiments_render() {
        let runs = quick_runs();
        for out in [
            table2(&runs),
            table3(&runs),
            table4(&runs),
            table6(&runs),
            figure7(&runs),
            figure9(&runs),
        ] {
            assert!(out.text.contains("=="), "missing title: {}", out.text);
            assert!(!out.csv.is_empty());
        }
    }

    #[test]
    fn table5_marks_tool_errors() {
        let runs = quick_runs();
        let out = table5(&runs);
        // Smatch only builds Linux; other columns must carry the -* marker.
        assert!(out.text.contains("-*"), "{}", out.text);
        // Clang finds nothing on cleaned-up projects.
        let clang_line = out
            .text
            .lines()
            .find(|l| l.starts_with("Clang"))
            .expect("clang row");
        assert!(
            clang_line.split_whitespace().skip(1).all(|c| c == "0"),
            "{clang_line}"
        );
    }

    #[test]
    fn figure9_precision_is_monotone_decreasing_ish() {
        let runs = quick_runs();
        let out = figure9(&runs);
        let precisions: Vec<f64> = out
            .text
            .lines()
            .filter(|l| l.contains('%') && !l.contains("=="))
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .and_then(|p| p.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert!(precisions.len() >= 3);
        // First cutoff at least as precise as the last.
        assert!(
            precisions.first().unwrap() >= precisions.last().unwrap(),
            "{precisions:?}"
        );
    }
}
