//! End-to-end proof that the perf gate actually gates: a fresh run passes
//! against its own baseline, and an injected (failpoint-style) slowdown
//! makes the `perfgate` binary exit nonzero.

use std::{
    path::PathBuf,
    process::Command, //
};

use vc_bench::perf::{
    run_perf,
    run_serve_bench,
    set_injected_slowdown_ms,
    PerfConfig,
    ServeBenchConfig, //
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vc-perfgate-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_reports(dir: &PathBuf, config: &PerfConfig) {
    let (scan, stages) = run_perf(config);
    scan.save(&dir.join("BENCH_scan.json")).unwrap();
    stages.save(&dir.join("BENCH_stages.json")).unwrap();
    // A small storm keeps the e2e test fast; the gate treats the serve
    // report (percentiles + throughput_rps extra key) like any other.
    let storm = run_serve_bench(&ServeBenchConfig {
        scale: config.scale,
        requests: 8,
        seed: 7,
    });
    assert!(storm.throughput_rps > 0.0, "storm measured a request rate");
    storm.save(&dir.join("BENCH_serve.json")).unwrap();
}

fn gate(args: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_perfgate"))
        .args(args)
        .status()
        .expect("spawn perfgate")
}

#[test]
fn gate_passes_on_own_baseline_and_trips_under_injected_slowdown() {
    let config = PerfConfig {
        scale: 0.05,
        runs: 1,
    };
    let dir = temp_dir("e2e");
    let dir_s = dir.to_str().unwrap();
    let baseline = dir.join("baseline.json");
    let baseline_s = baseline.to_str().unwrap();

    // Record the baseline from an honest run.
    write_reports(&dir, &config);
    let status = gate(&[
        "--current-dir",
        dir_s,
        "--baseline",
        baseline_s,
        "--write-baseline",
    ]);
    assert!(status.success(), "writing the baseline must exit 0");
    assert!(baseline.exists());

    // The same measurements gate cleanly against themselves.
    let status = gate(&["--current-dir", dir_s, "--baseline", baseline_s]);
    assert!(status.success(), "identical run must pass the gate");

    // Inject a 300 ms slowdown into every timed region and re-measure: with
    // a 50 ms floor and 1.2x ratio the regression is unambiguous.
    set_injected_slowdown_ms(300);
    write_reports(&dir, &config);
    set_injected_slowdown_ms(0);
    let status = gate(&[
        "--current-dir",
        dir_s,
        "--baseline",
        baseline_s,
        "--ratio",
        "1.2",
        "--floor-ms",
        "50",
    ]);
    assert!(
        !status.success(),
        "injected slowdown must trip the gate (exit nonzero)"
    );
    assert_eq!(status.code(), Some(1), "regression exit code is 1");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_errors_cleanly_without_reports() {
    let dir = temp_dir("empty");
    let status = gate(&["--current-dir", dir.to_str().unwrap()]);
    assert_eq!(status.code(), Some(2), "missing inputs are a usage error");
    let _ = std::fs::remove_dir_all(&dir);
}
