//! Table 7 as a Criterion bench: whole-application analysis time and
//! per-commit incremental time, per application profile.

use criterion::{
    criterion_group,
    criterion_main,
    BenchmarkId,
    Criterion, //
};
use valuecheck::{
    incremental::analyze_commit,
    pipeline::{
        run,
        Options, //
    },
    prune::PruneConfig,
    rank::RankConfig,
};
use vc_ir::Program;
use vc_workload::{
    generate,
    AppProfile, //
};

/// Bench scale: small enough for Criterion's repeated sampling.
const SCALE: f64 = 0.1;

fn full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_full_analysis");
    group.sample_size(10);
    for profile in AppProfile::all() {
        let profile = profile.scaled(SCALE);
        let app = generate(&profile);
        let sources = app.source_refs();
        let prog = Program::build(&sources, &app.defines).expect("workload builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &(),
            |b, _| {
                b.iter(|| run(&prog, &app.repo, &Options::paper()));
            },
        );
    }
    group.finish();
}

fn incremental_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_incremental");
    group.sample_size(10);
    for profile in AppProfile::all() {
        let profile = profile.scaled(SCALE);
        let app = generate(&profile);
        let head = app.repo.head().expect("non-empty history");
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &(),
            |b, _| {
                b.iter(|| {
                    analyze_commit(
                        &app.repo,
                        head,
                        &app.defines,
                        &PruneConfig::default(),
                        &RankConfig::default(),
                    )
                    .expect("incremental analysis succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, full_analysis, incremental_analysis);
criterion_main!(benches);
