//! Table 7 as a bench: whole-application analysis time and per-commit
//! incremental time, per application profile.
//!
//! Run with `cargo bench -p vc-bench --bench table7_scalability`; results
//! print as a table and land in `BENCH_table7_scalability.json`.

use valuecheck::{
    incremental::analyze_commit,
    pipeline::{
        run,
        Options, //
    },
    prune::PruneConfig,
    rank::RankConfig,
};
use vc_bench::harness::Harness;
use vc_ir::Program;
use vc_workload::{
    generate,
    AppProfile, //
};

/// Bench scale: small enough for repeated sampling.
const SCALE: f64 = 0.1;

fn main() {
    let mut h = Harness::new("table7_scalability");

    h.group("table7_full_analysis").sample_size(10);
    for profile in AppProfile::all() {
        let profile = profile.scaled(SCALE);
        let app = generate(&profile);
        let sources = app.source_refs();
        let prog = Program::build(&sources, &app.defines).expect("workload builds");
        h.bench(&profile.name, || run(&prog, &app.repo, &Options::paper()));
    }

    h.group("table7_incremental").sample_size(10);
    for profile in AppProfile::all() {
        let profile = profile.scaled(SCALE);
        let app = generate(&profile);
        let head = app.repo.head().expect("non-empty history");
        h.bench(&profile.name, || {
            analyze_commit(
                &app.repo,
                head,
                &app.defines,
                &PruneConfig::default(),
                &RankConfig::default(),
            )
            .expect("incremental analysis succeeds")
        });
    }

    h.finish();
}
