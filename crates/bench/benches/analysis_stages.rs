//! Per-stage costs of the pipeline on one workload: parsing+lowering,
//! liveness, pointer analysis, detection, authorship, pruning, ranking.
//! Backs the Table 7 discussion of where the time goes.

use criterion::{
    criterion_group,
    criterion_main,
    Criterion, //
};
use valuecheck::{
    authorship::AuthorshipCtx,
    detect::{
        detect_program,
        DetectConfig, //
    },
    prune::{
        prune,
        PeerStats,
        PruneConfig, //
    },
    rank::{
        rank,
        RankConfig, //
    },
};
use vc_dataflow::liveness::live_variables;
use vc_ir::{
    cfg::Cfg,
    Program, //
};
use vc_pointer::PointsTo;
use vc_workload::{
    generate,
    AppProfile, //
};

fn stages(c: &mut Criterion) {
    let profile = AppProfile::openssl().scaled(0.15);
    let app = generate(&profile);
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");

    let mut group = c.benchmark_group("analysis_stages");
    group.sample_size(20);

    group.bench_function("parse_and_lower", |b| {
        b.iter(|| Program::build(&sources, &app.defines).expect("builds"));
    });

    group.bench_function("liveness_all_functions", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for f in &prog.funcs {
                let cfg = Cfg::new(f);
                total += live_variables(f, &cfg).iterations;
            }
            total
        });
    });

    group.bench_function("pointer_analysis", |b| {
        b.iter(|| PointsTo::solve(&prog).fact_count());
    });

    group.bench_function("detection", |b| {
        b.iter(|| detect_program(&prog, DetectConfig::default()).len());
    });

    let candidates = detect_program(&prog, DetectConfig::default());
    group.bench_function("authorship_lookup", |b| {
        b.iter(|| {
            let ctx = AuthorshipCtx::new(&prog, &app.repo);
            ctx.attribute_all(&candidates).len()
        });
    });

    let ctx = AuthorshipCtx::new(&prog, &app.repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    group.bench_function("pruning", |b| {
        b.iter(|| {
            let peers = PeerStats::compute(&prog);
            prune(&prog, &PruneConfig::default(), &peers, attributed.clone())
                .kept
                .len()
        });
    });

    let peers = PeerStats::compute(&prog);
    let kept = prune(&prog, &PruneConfig::default(), &peers, attributed).kept;
    group.bench_function("familiarity_ranking", |b| {
        b.iter(|| rank(&prog, &app.repo, &RankConfig::default(), kept.clone()).len());
    });

    group.finish();
}

criterion_group!(benches, stages);
criterion_main!(benches);
