//! Per-stage costs of the pipeline on one workload: parsing+lowering,
//! liveness, pointer analysis, detection, authorship, pruning, ranking.
//! Backs the Table 7 discussion of where the time goes.
//!
//! Run with `cargo bench -p vc-bench --bench analysis_stages`; results
//! print as a table and land in `BENCH_analysis_stages.json`.

use valuecheck::{
    authorship::AuthorshipCtx,
    detect::{
        detect_program,
        DetectConfig, //
    },
    prune::{
        prune,
        PeerStats,
        PruneConfig, //
    },
    rank::{
        rank,
        RankConfig, //
    },
};
use vc_bench::harness::Harness;
use vc_dataflow::liveness::live_variables;
use vc_ir::{
    cfg::Cfg,
    Program, //
};
use vc_pointer::PointsTo;
use vc_workload::{
    generate,
    AppProfile, //
};

fn main() {
    let profile = AppProfile::openssl().scaled(0.15);
    let app = generate(&profile);
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");

    let mut h = Harness::new("analysis_stages");
    h.group("analysis_stages").sample_size(20);

    h.bench("parse_and_lower", || {
        Program::build(&sources, &app.defines).expect("builds")
    });

    h.bench("liveness_all_functions", || {
        let mut total = 0usize;
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            total += live_variables(f, &cfg).iterations;
        }
        total
    });

    h.bench("pointer_analysis", || PointsTo::solve(&prog).fact_count());

    h.bench("detection", || {
        detect_program(&prog, DetectConfig::default()).len()
    });

    let candidates = detect_program(&prog, DetectConfig::default());
    h.bench("authorship_lookup", || {
        let ctx = AuthorshipCtx::new(&prog, &app.repo);
        ctx.attribute_all(&candidates).len()
    });

    let ctx = AuthorshipCtx::new(&prog, &app.repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    h.bench("pruning", || {
        let peers = PeerStats::compute(&prog);
        prune(&prog, &PruneConfig::default(), &peers, attributed.clone())
            .kept
            .len()
    });

    let peers = PeerStats::compute(&prog);
    let kept = prune(&prog, &PruneConfig::default(), &peers, attributed).kept;
    h.bench("familiarity_ranking", || {
        rank(&prog, &app.repo, &RankConfig::default(), kept.clone()).len()
    });

    h.finish();
}
