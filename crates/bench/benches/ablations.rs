//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - field-sensitive vs field-insensitive pointer analysis (§4.1 cites
//!   Andersen's field-sensitive variant for scalability);
//! - alias analysis on/off in detection;
//! - pruning-pipeline order sensitivity (Fig. 2 applies Config → Cursor →
//!   Hints → Peer);
//! - the peer-definition thresholds (">10 occurrences", ">50% unused").

use criterion::{
    criterion_group,
    criterion_main,
    BenchmarkId,
    Criterion, //
};
use valuecheck::{
    authorship::AuthorshipCtx,
    detect::{
        detect_program,
        DetectConfig, //
    },
    prune::{
        prune,
        PeerStats,
        PruneConfig, //
    },
};
use vc_ir::Program;
use vc_pointer::{
    Config as PtConfig,
    PointsTo, //
};
use vc_workload::{
    generate,
    AppProfile, //
};

fn pointer_field_sensitivity(c: &mut Criterion) {
    let app = generate(&AppProfile::mysql().scaled(0.05));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    let mut group = c.benchmark_group("andersen_field_sensitivity");
    group.sample_size(20);
    for (label, fs) in [("field_sensitive", true), ("field_insensitive", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &fs, |b, &fs| {
            b.iter(|| {
                PointsTo::solve_with(&prog, PtConfig { field_sensitive: fs }).fact_count()
            });
        });
    }
    group.finish();
}

fn detection_alias_ablation(c: &mut Criterion) {
    let app = generate(&AppProfile::openssl().scaled(0.1));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    let mut group = c.benchmark_group("detection_alias_analysis");
    group.sample_size(20);
    for (label, alias) in [("with_alias", true), ("without_alias", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &alias, |b, &alias| {
            b.iter(|| {
                detect_program(&prog, DetectConfig {
                    use_alias_analysis: alias,
                    field_sensitive_pointers: true,
                })
                .len()
            });
        });
    }
    group.finish();
}

fn peer_thresholds(c: &mut Criterion) {
    let app = generate(&AppProfile::nfs_ganesha().scaled(0.3));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    let candidates = detect_program(&prog, DetectConfig::default());
    let ctx = AuthorshipCtx::new(&prog, &app.repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    let peers = PeerStats::compute(&prog);

    let mut group = c.benchmark_group("peer_threshold_sweep");
    group.sample_size(20);
    for min_occ in [2usize, 5, 10, 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(min_occ),
            &min_occ,
            |b, &min_occ| {
                let config = PruneConfig {
                    peer_min_occurrences: min_occ,
                    ..PruneConfig::default()
                };
                b.iter(|| prune(&prog, &config, &peers, attributed.clone()).kept.len());
            },
        );
    }
    group.finish();
}

fn prune_order(c: &mut Criterion) {
    // The pipeline order affects attribution, not the surviving set; this
    // bench measures the cost of each single-pruner configuration.
    let app = generate(&AppProfile::linux().scaled(0.2));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    let candidates = detect_program(&prog, DetectConfig::default());
    let ctx = AuthorshipCtx::new(&prog, &app.repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    let peers = PeerStats::compute(&prog);

    let configs: [(&str, PruneConfig); 5] = [
        ("all", PruneConfig::default()),
        ("only_config", only(|c| c.config_dependency = true)),
        ("only_cursor", only(|c| c.cursor = true)),
        ("only_hints", only(|c| c.unused_hints = true)),
        ("only_peer", only(|c| c.peer_definitions = true)),
    ];
    let mut group = c.benchmark_group("prune_single_pattern");
    group.sample_size(20);
    for (label, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| prune(&prog, config, &peers, attributed.clone()).kept.len());
        });
    }
    group.finish();
}

fn only(enable: impl Fn(&mut PruneConfig)) -> PruneConfig {
    let mut c = PruneConfig {
        config_dependency: false,
        cursor: false,
        unused_hints: false,
        peer_definitions: false,
        ..PruneConfig::default()
    };
    enable(&mut c);
    c
}

criterion_group!(
    benches,
    pointer_field_sensitivity,
    detection_alias_ablation,
    peer_thresholds,
    prune_order
);
criterion_main!(benches);
