//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - field-sensitive vs field-insensitive pointer analysis (§4.1 cites
//!   Andersen's field-sensitive variant for scalability);
//! - alias analysis on/off in detection;
//! - pruning-pipeline order sensitivity (Fig. 2 applies Config → Cursor →
//!   Hints → Peer);
//! - the peer-definition thresholds (">10 occurrences", ">50% unused").
//!
//! Run with `cargo bench -p vc-bench --bench ablations`; results print as
//! a table and land in `BENCH_ablations.json`.

use valuecheck::{
    authorship::AuthorshipCtx,
    detect::{
        detect_program,
        DetectConfig, //
    },
    prune::{
        prune,
        PeerStats,
        PruneConfig, //
    },
};
use vc_bench::harness::Harness;
use vc_ir::Program;
use vc_pointer::{
    Config as PtConfig,
    PointsTo, //
};
use vc_workload::{
    generate,
    AppProfile, //
};

fn pointer_field_sensitivity(h: &mut Harness) {
    let app = generate(&AppProfile::mysql().scaled(0.05));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    h.group("andersen_field_sensitivity").sample_size(20);
    for (label, fs) in [("field_sensitive", true), ("field_insensitive", false)] {
        h.bench(label, || {
            PointsTo::solve_with(
                &prog,
                PtConfig {
                    field_sensitive: fs,
                    ..PtConfig::default()
                },
            )
            .fact_count()
        });
    }
}

fn detection_alias_ablation(h: &mut Harness) {
    let app = generate(&AppProfile::openssl().scaled(0.1));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    h.group("detection_alias_analysis").sample_size(20);
    for (label, alias) in [("with_alias", true), ("without_alias", false)] {
        h.bench(label, || {
            detect_program(
                &prog,
                DetectConfig {
                    use_alias_analysis: alias,
                    field_sensitive_pointers: true,
                },
            )
            .len()
        });
    }
}

fn peer_thresholds(h: &mut Harness) {
    let app = generate(&AppProfile::nfs_ganesha().scaled(0.3));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    let candidates = detect_program(&prog, DetectConfig::default());
    let ctx = AuthorshipCtx::new(&prog, &app.repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    let peers = PeerStats::compute(&prog);

    h.group("peer_threshold_sweep").sample_size(20);
    for min_occ in [2usize, 5, 10, 20] {
        let config = PruneConfig {
            peer_min_occurrences: min_occ,
            ..PruneConfig::default()
        };
        h.bench(&min_occ.to_string(), || {
            prune(&prog, &config, &peers, attributed.clone()).kept.len()
        });
    }
}

fn prune_order(h: &mut Harness) {
    // The pipeline order affects attribution, not the surviving set; this
    // bench measures the cost of each single-pruner configuration.
    let app = generate(&AppProfile::linux().scaled(0.2));
    let sources = app.source_refs();
    let prog = Program::build(&sources, &app.defines).expect("workload builds");
    let candidates = detect_program(&prog, DetectConfig::default());
    let ctx = AuthorshipCtx::new(&prog, &app.repo);
    let attributed: Vec<_> = ctx
        .attribute_all(&candidates)
        .into_iter()
        .filter(|a| a.cross_scope)
        .collect();
    let peers = PeerStats::compute(&prog);

    let configs: [(&str, PruneConfig); 5] = [
        ("all", PruneConfig::default()),
        ("only_config", only(|c| c.config_dependency = true)),
        ("only_cursor", only(|c| c.cursor = true)),
        ("only_hints", only(|c| c.unused_hints = true)),
        ("only_peer", only(|c| c.peer_definitions = true)),
    ];
    h.group("prune_single_pattern").sample_size(20);
    for (label, config) in configs {
        h.bench(label, || {
            prune(&prog, &config, &peers, attributed.clone()).kept.len()
        });
    }
}

fn only(enable: impl Fn(&mut PruneConfig)) -> PruneConfig {
    let mut c = PruneConfig {
        config_dependency: false,
        cursor: false,
        unused_hints: false,
        peer_definitions: false,
        ..PruneConfig::default()
    };
    enable(&mut c);
    c
}

fn main() {
    let mut h = Harness::new("ablations");
    pointer_field_sensitivity(&mut h);
    detection_alias_ablation(&mut h);
    peer_thresholds(&mut h);
    prune_order(&mut h);
    h.finish();
}
