//! Clang `-Wunused`-style detection: recursive AST walking.
//!
//! Per §8.4.1 of the paper, Clang "does not perform a precise analysis to
//! detect unused definitions but just depends on recursive AST walking. It
//! follows gcc as the specification and only detects a variable as unused
//! when it never gets referred to on the right-hand side." So a variable
//! that is read *anywhere* — even only in a condition guarding nothing — is
//! never reported, which is exactly why Fig. 8's bug escapes it.

use std::collections::HashMap;

use vc_ir::ast::{
    Block,
    Expr,
    ExprKind,
    FuncDef,
    Item,
    Module,
    Stmt,
    StmtKind, //
};

use crate::finding::{
    Finding,
    Tool, //
};

/// Runs the Clang-style check over parsed modules.
pub fn clang_unused(modules: &[(String, Module)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (file, module) in modules {
        for item in &module.items {
            if let Item::Func(f) = item {
                check_function(file, f, &mut out);
            }
        }
    }
    out
}

#[derive(Default)]
struct VarStats {
    /// Read occurrences (any RHS / use position).
    reads: usize,
    /// Write occurrences beyond the declaration.
    writes: usize,
    /// Declaration line.
    line: u32,
    /// Whether the declaration carries an unused attribute.
    unused_attr: bool,
    /// Whether this is a parameter.
    is_param: bool,
}

fn check_function(file: &str, f: &FuncDef, out: &mut Vec<Finding>) {
    let mut vars: HashMap<String, VarStats> = HashMap::new();
    for p in &f.params {
        vars.insert(
            p.name.clone(),
            VarStats {
                line: p.span.line(),
                unused_attr: p.unused_attr,
                is_param: true,
                ..Default::default()
            },
        );
    }
    collect_block(&f.body, &mut vars);

    for (name, st) in &vars {
        if st.unused_attr || st.reads > 0 {
            continue;
        }
        // -Wunused-variable: never referenced at all.
        // -Wunused-but-set-variable / -parameter: written but never read.
        let kind = if st.writes == 0 && !st.is_param {
            "unused-variable"
        } else if st.writes > 0 {
            "unused-but-set-variable"
        } else {
            "unused-parameter"
        };
        out.push(Finding {
            tool: Tool::Clang,
            file: file.to_string(),
            line: st.line,
            function: f.name.clone(),
            variable: name.clone(),
            kind: kind.to_string(),
        });
    }
}

fn collect_block(b: &Block, vars: &mut HashMap<String, VarStats>) {
    for s in &b.stmts {
        collect_stmt(s, vars);
    }
}

fn collect_stmt(s: &Stmt, vars: &mut HashMap<String, VarStats>) {
    match &s.kind {
        StmtKind::Decl {
            name,
            init,
            unused_attr,
            ..
        } => {
            vars.insert(
                name.clone(),
                VarStats {
                    line: s.span.line(),
                    unused_attr: *unused_attr,
                    ..Default::default()
                },
            );
            if let Some(e) = init {
                collect_expr(e, true, vars);
            }
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => collect_expr(e, true, vars),
        StmtKind::If { cond, then, els } => {
            collect_expr(cond, true, vars);
            collect_block(then, vars);
            if let Some(e) = els {
                collect_block(e, vars);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            collect_expr(cond, true, vars);
            collect_block(body, vars);
        }
        StmtKind::Switch {
            scrutinee,
            cases,
            default,
        } => {
            collect_expr(scrutinee, true, vars);
            for c in cases {
                collect_block(&c.body, vars);
            }
            if let Some(d) = default {
                collect_block(d, vars);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_stmt(i, vars);
            }
            if let Some(c) = cond {
                collect_expr(c, true, vars);
            }
            if let Some(st) = step {
                collect_expr(st, true, vars);
            }
            collect_block(body, vars);
        }
        StmtKind::Block(b) => collect_block(b, vars),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Error => {}
    }
}

/// Walks an expression; `read_pos` is false only for the direct target of a
/// simple assignment (its subexpressions are still reads).
fn collect_expr(e: &Expr, read_pos: bool, vars: &mut HashMap<String, VarStats>) {
    match &e.kind {
        ExprKind::Var(n) => {
            if let Some(st) = vars.get_mut(n) {
                if read_pos {
                    st.reads += 1;
                } else {
                    st.writes += 1;
                }
            }
        }
        ExprKind::Assign { op, lhs, rhs } => {
            // Compound assignment reads the target too.
            collect_expr(lhs, op.is_some(), vars);
            collect_expr(rhs, true, vars);
        }
        ExprKind::IncDec { target, .. } => {
            // `x++` both reads and writes; gcc counts it as a use.
            collect_expr(target, true, vars);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => {
            collect_expr(expr, true, vars)
        }
        ExprKind::Deref(inner) | ExprKind::AddrOf(inner) => collect_expr(inner, true, vars),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, true, vars);
            collect_expr(rhs, true, vars);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_expr(a, true, vars);
            }
        }
        ExprKind::Member { base, .. } => collect_expr(base, true, vars),
        ExprKind::Index { base, index } => {
            collect_expr(base, true, vars);
            collect_expr(index, true, vars);
        }
        ExprKind::Ternary { cond, then, els } => {
            collect_expr(cond, true, vars);
            collect_expr(then, true, vars);
            collect_expr(els, true, vars);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::{
        parser::parse,
        span::FileId, //
    };

    fn run(src: &str) -> Vec<Finding> {
        let m = parse(FileId(0), src).unwrap();
        clang_unused(&[("a.c".to_string(), m)])
    }

    #[test]
    fn reports_never_referenced_variable() {
        let f = run("void f(void) { int dead = 3; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].variable, "dead");
        assert_eq!(f[0].kind, "unused-variable");
        // Set *after* declaration: the -Wunused-but-set-variable case.
        let f = run("void f(void) { int dead; dead = 3; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "unused-but-set-variable");
    }

    #[test]
    fn reports_never_declared_read_variable() {
        let f = run("void f(void) { int x; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "unused-variable");
    }

    #[test]
    fn misses_flow_sensitive_dead_store() {
        // The Figure 8 shape: `ret` IS referenced, Clang stays silent.
        let f = run("void f(void) { int ret = a(); ret = b(); if (ret) { c(); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn misses_overwritten_param() {
        // bufsz is read after the overwrite: referenced => silent.
        let f = run("int open(char *p, int bufsz) { bufsz = 1400; return bufsz; }");
        assert!(f.iter().all(|x| x.variable != "bufsz"));
    }

    #[test]
    fn reports_unused_parameter() {
        let f = run("int f(int used, int ignored) { return used; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].variable, "ignored");
        assert_eq!(f[0].kind, "unused-parameter");
    }

    #[test]
    fn respects_unused_attribute() {
        let f = run("int f(int force [[maybe_unused]]) { return 0; }");
        assert!(f.is_empty());
    }
}
