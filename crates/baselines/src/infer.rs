//! fb-infer's "Dead Store" check.
//!
//! Per §8.4.2, Infer-unused finds flow-sensitive dead stores but is
//! "incomplete in detecting all types of unused definitions in programs like
//! overwritten/ignored arguments and field unused definitions", does not
//! filter by authorship, and "cursor assignments ... are not excluded from
//! fb-infer results". We reproduce exactly that surface: `vc-dataflow`'s
//! dead-store finder restricted to whole-local, non-parameter, non-synthetic
//! stores, with no pruning at all — except Infer's own whitelist of
//! variables whose name contains `unused` (mirroring its dead-store check's
//! suppression list).

use vc_dataflow::dead_stores;
use vc_ir::{
    cfg::Cfg,
    ir::{
        Inst,
        LocalKind,
        Operand,
        StoreInfo, //
    },
    Program,
    VarKey, //
};

use crate::finding::{
    Finding,
    Tool, //
};

/// Runs the Infer-style dead-store check over a program.
pub fn infer_unused(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &prog.funcs {
        let cfg = Cfg::new(f);
        for d in dead_stores(f, &cfg) {
            // No field sensitivity: field dead stores are invisible.
            let VarKey::Local(l) = d.key else { continue };
            // No argument analysis: parameter entry definitions are skipped.
            if matches!(d.info, StoreInfo::ParamInit { .. }) {
                continue;
            }
            // An ignored call result is not a "store" in Infer's sense.
            if f.local(l).kind == LocalKind::Synthetic {
                continue;
            }
            // Infer's own suppression: `unused`-named variables.
            if f.local(l).name.to_ascii_lowercase().contains("unused") {
                continue;
            }
            // Infer's own suppression: defensive initialization with a
            // constant (`int t = 0;` before a reassignment is idiomatic C).
            let stored = &f.block(d.block).insts[d.inst_idx];
            if let Inst::Store {
                value: Operand::Const(_) | Operand::Null | Operand::Str(_),
                ..
            } = stored
            {
                continue;
            }
            out.push(Finding {
                tool: Tool::InferUnused,
                file: prog.source.name(d.span.file).to_string(),
                line: d.span.line(),
                function: f.name.clone(),
                variable: f.var_key_name(d.key),
                kind: "dead-store".to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        infer_unused(&prog)
    }

    #[test]
    fn detects_flow_sensitive_dead_store() {
        let f = run("void f(int a) { int x = a + 1; x = 2; use(x); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].variable, "x");
    }

    #[test]
    fn suppresses_constant_defensive_initialization() {
        let f = run("void f(int a) { int x = 0; x = a; use(x); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn misses_overwritten_argument() {
        let f = run("int open(char *p, int bufsz) { bufsz = 1400; return bufsz; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn misses_field_dead_store() {
        let f = run("struct s { int a; int b; };\n\
             void f(void) { struct s v; v.a = 1; v.a = 2; use(v.a); use(v.b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn misses_ignored_return_value() {
        let f = run("int g(void);\nvoid f(void) { g(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppresses_unused_named_variables() {
        let f = run("void f(void) { int rc_unused = g(); rc_unused = 0; use(rc_unused); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reports_cursors_as_false_positives() {
        // The trailing increment is a dead store; Infer has no cursor
        // pruning, so it warns (a documented false-positive source).
        let f = run("void f(char *o) { *o++ = 'a'; *o++ = '\\0'; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].variable, "o");
    }
}
