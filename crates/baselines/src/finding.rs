//! Common finding type shared by all baseline tools.

/// Which baseline produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tool {
    /// Clang `-Wunused`-style AST walking.
    Clang,
    /// fb-infer's dead-store check.
    InferUnused,
    /// Smatch's unchecked-return-value checks.
    SmatchUnused,
    /// Coverity Scan's unused-value / unchecked-return checks.
    CoverityUnused,
}

impl Tool {
    /// Display name matching Table 5's rows.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::Clang => "Clang",
            Tool::InferUnused => "Infer-unused",
            Tool::SmatchUnused => "Smatch-unused",
            Tool::CoverityUnused => "Coverity-unused",
        }
    }
}

/// One warning from a baseline tool.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The reporting tool.
    pub tool: Tool,
    /// File of the warning.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Containing function.
    pub function: String,
    /// The variable concerned (empty for bare ignored-call warnings).
    pub variable: String,
    /// Short warning category, e.g. `dead-store`, `unchecked-return`.
    pub kind: String,
}

impl Finding {
    /// Stable identity for cross-tool comparison: `(function, variable,
    /// line)`, the same key ValueCheck's `Candidate::identity` uses.
    pub fn identity(&self) -> (String, String, u32) {
        (self.function.clone(), self.variable.clone(), self.line)
    }
}
