//! Coverity Scan's unused-value and unchecked-return-value checks.
//!
//! Per §8.4.4, Coverity-unused "only detects unused assignment and unused
//! return value, excluding other types of unused definitions (e.g. assigned
//! but unused arguments)", and "infers whether function return values need
//! be used based on the percentage of used return values. If the function is
//! only used once, it cannot correctly infer whether the return value should
//! be used." It also prunes nothing that was intentionally left in the code
//! (no authorship, no semantics).
//!
//! Coverity's `UNUSED_VALUE` checker concerns *values received from a
//! function call* that are never used — a plain arithmetic redundancy like
//! `t = a * 2; t = a + 3;` is below its reporting bar — so the unused-value
//! arm here only fires on call-result stores.
//!
//! The paper further notes that several evaluated projects had previously
//! run Coverity and addressed its warnings; the harness models that with the
//! `suppress` set of historically-fixed finding identities.

use std::collections::{
    HashMap,
    HashSet, //
};

use vc_dataflow::dead_stores;
use vc_ir::{
    cfg::Cfg,
    ir::{
        LocalKind,
        StoreInfo, //
    },
    Program,
    VarKey, //
};

use crate::finding::{
    Finding,
    Tool, //
};

/// Runs the Coverity-style checks.
///
/// `suppress` holds identities `(function, variable, line)` of findings the
/// project already addressed in the past (the tool was run before, §8.4.4);
/// those are not re-reported.
pub fn coverity_unused(prog: &Program, suppress: &HashSet<(String, String, u32)>) -> Vec<Finding> {
    // Return-value usage ratios for the unchecked-return inference.
    let call_index = prog.call_index();
    let mut ignored_stores: HashMap<String, usize> = HashMap::new();

    let mut raw: Vec<Finding> = Vec::new();
    for f in &prog.funcs {
        let cfg = Cfg::new(f);
        for d in dead_stores(f, &cfg) {
            let VarKey::Local(l) = d.key else {
                continue; // No field-granular unused values.
            };
            if matches!(d.info, StoreInfo::ParamInit { .. }) {
                continue; // "excluding ... assigned but unused arguments".
            }
            let synthetic = f.local(l).kind == LocalKind::Synthetic;
            if synthetic {
                // Ignored call result: defer to the usage-ratio inference.
                if let StoreInfo::RetVal { callee, .. } = &d.info {
                    *ignored_stores.entry(callee.clone()).or_default() += 1;
                    raw.push(Finding {
                        tool: Tool::CoverityUnused,
                        file: prog.source.name(d.span.file).to_string(),
                        line: d.span.line(),
                        function: f.name.clone(),
                        variable: f.var_key_name(d.key),
                        kind: format!("unchecked-return:{callee}"),
                    });
                }
                continue;
            }
            // UNUSED_VALUE only concerns values received from calls.
            if !matches!(d.info, StoreInfo::RetVal { .. }) {
                continue;
            }
            raw.push(Finding {
                tool: Tool::CoverityUnused,
                file: prog.source.name(d.span.file).to_string(),
                line: d.span.line(),
                function: f.name.clone(),
                variable: f.var_key_name(d.key),
                kind: "unused-value".to_string(),
            });
        }
    }

    // Apply the usage-ratio inference to unchecked-return findings: only
    // report when the callee has >= 2 call sites and most of them use the
    // result. A single call site is uninferable and dropped (Fig. 8's
    // `get_permset` case).
    raw.retain(|f| {
        let Some(callee) = f.kind.strip_prefix("unchecked-return:") else {
            return true;
        };
        let total = call_index.get(callee).map(Vec::len).unwrap_or(0);
        let ignored = ignored_stores.get(callee).copied().unwrap_or(0);
        let used = total.saturating_sub(ignored);
        total >= 2 && used * 2 > total
    });
    for f in &mut raw {
        if f.kind.starts_with("unchecked-return:") {
            f.kind = "unchecked-return".to_string();
        }
    }

    raw.retain(|f| !suppress.contains(&f.identity()));
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        coverity_unused(&prog, &HashSet::new())
    }

    #[test]
    fn reports_unused_call_value() {
        let f = run("void f(void) { int x = g(); x = 2; use(x); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "unused-value");
    }

    #[test]
    fn plain_arithmetic_redundancy_is_below_the_bar() {
        let f = run("void f(int a) { int x = a * 2; x = 2; use(x); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn single_call_site_is_uninferable() {
        // `get_permset` is called once; Coverity cannot infer the result
        // must be checked (the Fig. 8 miss).
        let f = run("int get_permset(void);\nvoid f(void) { get_permset(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn majority_checked_function_is_flagged_when_ignored() {
        let src = "int check(void);\n\
                   void a(void) { int v = check(); use(v); }\n\
                   void b(void) { int w = check(); use(w); }\n\
                   void c(void) { check(); }\n";
        let f = run(src);
        let unchecked: Vec<_> = f.iter().filter(|x| x.kind == "unchecked-return").collect();
        assert_eq!(unchecked.len(), 1);
        assert_eq!(unchecked[0].function, "c");
    }

    #[test]
    fn overwritten_argument_is_excluded() {
        let f = run("int open(char *p, int bufsz) { bufsz = 1400; return bufsz; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_removes_historically_fixed_findings() {
        let src = "void f(void) { int x = g(); x = 2; use(x); }";
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let all = coverity_unused(&prog, &HashSet::new());
        assert_eq!(all.len(), 1);
        let mut suppress = HashSet::new();
        suppress.insert(all[0].identity());
        let after = coverity_unused(&prog, &suppress);
        assert!(after.is_empty());
    }
}
