//! # vc-baselines — the comparison tools of Table 5
//!
//! Re-implementations of the four baseline detectors exactly as §8.4 of the
//! paper characterizes them, so the comparison experiment exercises the same
//! mechanisms the paper describes:
//!
//! - [`clang::clang_unused`] — AST walking; silent whenever a variable is
//!   referenced anywhere;
//! - [`infer::infer_unused`] — flow-sensitive dead stores, but blind to
//!   arguments, fields and ignored call results, with no pruning;
//! - [`smatch::smatch_unused`] — syntactic unused/unchecked return values
//!   (and, in the harness, Linux-only, as it fails to build elsewhere);
//! - [`coverity::coverity_unused`] — unused values plus usage-ratio-inferred
//!   unchecked returns, with historic-warning suppression.

pub mod clang;
pub mod coverity;
pub mod finding;
pub mod infer;
pub mod smatch;

pub use clang::clang_unused;
pub use coverity::coverity_unused;
pub use finding::{
    Finding,
    Tool, //
};
pub use infer::infer_unused;
pub use smatch::smatch_unused;
