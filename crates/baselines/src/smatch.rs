//! Smatch's unused-return-value checks.
//!
//! Per §8.4.3, Smatch-unused "detects one type of unused definitions: the
//! return value of a function is unused", and "conducts analysis based on
//! the AST parser instead of control flow analysis, so the analysis is not
//! precise and has high false positives". Two AST-level patterns are
//! implemented:
//!
//! - a variable assigned from a call and never *syntactically* read anywhere
//!   in the function (flow-insensitive, so Fig. 8's `if (ret)` hides the
//!   dead first assignment);
//! - a bare call statement ignoring the result of a function whose result
//!   the majority of other call sites consume (Smatch's
//!   `check_unchecked_return_value` heuristic).
//!
//! Smatch also fails to build everything but Linux in the paper's evaluation
//! (§8.4.3); the harness models that by invoking it on the Linux profile
//! only.

use std::collections::HashMap;

use vc_ir::ast::{
    Block,
    Expr,
    ExprKind,
    FuncDef,
    Item,
    Module,
    Stmt,
    StmtKind, //
};

use crate::finding::{
    Finding,
    Tool, //
};

/// Runs the Smatch-style checks over parsed modules.
pub fn smatch_unused(modules: &[(String, Module)]) -> Vec<Finding> {
    // Program-wide: how often each callee's result is consumed vs. ignored.
    let mut usage: HashMap<String, (usize, usize)> = HashMap::new(); // (consumed, ignored)
    for (_, module) in modules {
        for item in &module.items {
            if let Item::Func(f) = item {
                scan_usage(&f.body, &mut usage);
            }
        }
    }

    let mut out = Vec::new();
    for (file, module) in modules {
        for item in &module.items {
            if let Item::Func(f) = item {
                check_function(file, f, &usage, &mut out);
            }
        }
    }
    out
}

fn scan_usage(b: &Block, usage: &mut HashMap<String, (usize, usize)>) {
    walk_stmts(b, &mut |s| {
        if let StmtKind::Expr(Expr {
            kind: ExprKind::Call { callee, .. },
            ..
        }) = &s.kind
        {
            usage.entry(callee.clone()).or_default().1 += 1;
        } else {
            // Any call nested inside a larger expression/statement consumes
            // its result.
            for_each_call(s, &mut |callee| {
                usage.entry(callee.to_string()).or_default().0 += 1;
            });
        }
    });
}

fn check_function(
    file: &str,
    f: &FuncDef,
    usage: &HashMap<String, (usize, usize)>,
    out: &mut Vec<Finding>,
) {
    // Pattern 1: `v = call(...)` where v is never syntactically read.
    let mut assigned_from_call: Vec<(String, u32, String)> = Vec::new(); // (var, line, callee)
    let mut reads: HashMap<String, usize> = HashMap::new();
    walk_stmts(&f.body, &mut |s| {
        match &s.kind {
            StmtKind::Decl {
                name,
                init:
                    Some(Expr {
                        kind: ExprKind::Call { callee, .. },
                        ..
                    }),
                ..
            } => assigned_from_call.push((name.clone(), s.span.line(), callee.clone())),
            StmtKind::Expr(Expr {
                kind: ExprKind::Assign { op: None, lhs, rhs },
                ..
            }) => {
                if let (ExprKind::Var(v), ExprKind::Call { callee, .. }) = (&lhs.kind, &rhs.kind) {
                    assigned_from_call.push((v.clone(), s.span.line(), callee.clone()));
                }
            }
            _ => {}
        }
        count_reads(s, &mut reads);
    });
    for (var, line, _callee) in assigned_from_call {
        if reads.get(&var).copied().unwrap_or(0) == 0 {
            out.push(Finding {
                tool: Tool::SmatchUnused,
                file: file.to_string(),
                line,
                function: f.name.clone(),
                variable: var,
                kind: "unused-return".to_string(),
            });
        }
    }

    // Pattern 2: ignored result of a mostly-checked function.
    walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Expr(Expr {
            kind: ExprKind::Call { callee, .. },
            span,
        }) = &s.kind
        {
            if let Some((consumed, ignored)) = usage.get(callee) {
                let total = consumed + ignored;
                if total >= 2 && *consumed * 2 > total {
                    out.push(Finding {
                        tool: Tool::SmatchUnused,
                        file: file.to_string(),
                        line: span.line(),
                        function: f.name.clone(),
                        variable: format!("$ret_{}_{}", callee, span.line()),
                        kind: "unchecked-return".to_string(),
                    });
                }
            }
        }
    });
}

/// Calls `f` on every statement, recursively.
fn walk_stmts(b: &Block, f: &mut impl FnMut(&Stmt)) {
    for s in &b.stmts {
        f(s);
        match &s.kind {
            StmtKind::If { then, els, .. } => {
                walk_stmts(then, f);
                if let Some(e) = els {
                    walk_stmts(e, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => walk_stmts(body, f),
            StmtKind::Switch { cases, default, .. } => {
                for c in cases {
                    walk_stmts(&c.body, f);
                }
                if let Some(d) = default {
                    walk_stmts(d, f);
                }
            }
            StmtKind::For { body, init, .. } => {
                if let Some(i) = init {
                    f(i);
                }
                walk_stmts(body, f);
            }
            StmtKind::Block(inner) => walk_stmts(inner, f),
            _ => {}
        }
    }
}

/// Counts syntactic reads of each variable in one statement (assignment
/// targets of simple `=` excluded).
fn count_reads(s: &Stmt, reads: &mut HashMap<String, usize>) {
    fn expr(e: &Expr, read_pos: bool, reads: &mut HashMap<String, usize>) {
        match &e.kind {
            ExprKind::Var(n) if read_pos => {
                *reads.entry(n.clone()).or_default() += 1;
            }
            ExprKind::Assign { op, lhs, rhs } => {
                expr(lhs, op.is_some(), reads);
                expr(rhs, true, reads);
            }
            ExprKind::IncDec { target, .. } => expr(target, true, reads),
            ExprKind::Unary { expr: e2, .. }
            | ExprKind::Cast { expr: e2, .. }
            | ExprKind::Deref(e2)
            | ExprKind::AddrOf(e2) => expr(e2, true, reads),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, true, reads);
                expr(rhs, true, reads);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    expr(a, true, reads);
                }
            }
            ExprKind::Member { base, .. } => expr(base, true, reads),
            ExprKind::Index { base, index } => {
                expr(base, true, reads);
                expr(index, true, reads);
            }
            ExprKind::Ternary { cond, then, els } => {
                expr(cond, true, reads);
                expr(then, true, reads);
                expr(els, true, reads);
            }
            _ => {}
        }
    }
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
            expr(e, true, reads)
        }
        StmtKind::If { cond, .. } => expr(cond, true, reads),
        StmtKind::While { cond, .. } | StmtKind::DoWhile { cond, .. } => expr(cond, true, reads),
        StmtKind::Switch { scrutinee, .. } => expr(scrutinee, true, reads),
        StmtKind::For { cond, step, .. } => {
            if let Some(c) = cond {
                expr(c, true, reads);
            }
            if let Some(st) = step {
                expr(st, true, reads);
            }
        }
        _ => {}
    }
}

/// Calls `f` with each callee name of calls nested in (non-bare) positions.
fn for_each_call(s: &Stmt, f: &mut impl FnMut(&str)) {
    fn expr(e: &Expr, f: &mut impl FnMut(&str)) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                f(callee);
                for a in args {
                    expr(a, f);
                }
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            ExprKind::Unary { expr: e2, .. }
            | ExprKind::Cast { expr: e2, .. }
            | ExprKind::Deref(e2)
            | ExprKind::AddrOf(e2)
            | ExprKind::IncDec { target: e2, .. } => expr(e2, f),
            ExprKind::Member { base, .. } => expr(base, f),
            ExprKind::Index { base, index } => {
                expr(base, f);
                expr(index, f);
            }
            ExprKind::Ternary { cond, then, els } => {
                expr(cond, f);
                expr(then, f);
                expr(els, f);
            }
            _ => {}
        }
    }
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
            expr(e, f)
        }
        StmtKind::If { cond, .. } => expr(cond, f),
        StmtKind::While { cond, .. } | StmtKind::DoWhile { cond, .. } => expr(cond, f),
        StmtKind::Switch { scrutinee, .. } => expr(scrutinee, f),
        StmtKind::For { cond, step, .. } => {
            if let Some(c) = cond {
                expr(c, f);
            }
            if let Some(st) = step {
                expr(st, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_ir::{
        parser::parse,
        span::FileId, //
    };

    fn run(src: &str) -> Vec<Finding> {
        let m = parse(FileId(0), src).unwrap();
        smatch_unused(&[("a.c".to_string(), m)])
    }

    #[test]
    fn reports_never_read_retval_var() {
        let f = run("void f(void) { int r = getv(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].variable, "r");
        assert_eq!(f[0].kind, "unused-return");
    }

    #[test]
    fn figure_8_pattern_is_missed() {
        // `ret` is read in `if (ret)`: the syntactic check stays silent on
        // the dead first assignment — the paper's Fig. 8.
        let f =
            run("void f(void) { int ret = get_permset(); ret = calc_mask(); if (ret) { h(); } }");
        assert!(f.iter().all(|x| x.kind != "unused-return"), "{f:?}");
    }

    #[test]
    fn unchecked_return_uses_majority_heuristic() {
        // check_status's result is consumed at 2 sites and ignored at 1:
        // the ignoring site is flagged.
        let src = "void a(void) { if (check_status()) { h(); } }\n\
                   void b(void) { int v = check_status(); use(v); }\n\
                   void c(void) { check_status(); }\n";
        let f = run(src);
        let unchecked: Vec<_> = f.iter().filter(|x| x.kind == "unchecked-return").collect();
        assert_eq!(unchecked.len(), 1);
        assert_eq!(unchecked[0].function, "c");
    }

    #[test]
    fn mostly_ignored_function_is_not_flagged() {
        let src = "void a(void) { log_msg(\"x\"); }\n\
                   void b(void) { log_msg(\"y\"); }\n\
                   void c(void) { log_msg(\"z\"); }\n";
        let f = run(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn overwritten_argument_is_invisible() {
        let f = run("int open(char *p, int bufsz) { bufsz = 1400; return bufsz; }");
        assert!(f.is_empty(), "{f:?}");
    }
}
