//! Ambient observability sessions.
//!
//! Deep analysis code (the dataflow fixpoint, the Andersen solver) should
//! not need a `&Registry` threaded through every signature just to bump a
//! counter. Instead, an [`ObsSession`] — a registry plus a tracer — can be
//! *installed* on the current thread; the free functions in this module
//! ([`counter_add`], [`observe`], [`span`], ...) write to the innermost
//! installed session and no-op when none is installed.
//!
//! Sessions stack per thread, so parallel tests each install their own
//! session without seeing each other's metrics.

use std::{cell::RefCell, sync::Arc};

use crate::{
    metrics::Registry,
    trace::{Span, Tracer},
};

thread_local! {
    static STACK: RefCell<Vec<ObsSession>> = const { RefCell::new(Vec::new()) };
}

/// A metrics registry paired with a tracer; cheap to clone (two `Arc`s).
#[derive(Clone, Debug, Default)]
pub struct ObsSession {
    /// Counter/gauge/histogram storage.
    pub registry: Arc<Registry>,
    /// Span recording.
    pub tracer: Arc<Tracer>,
}

impl ObsSession {
    /// A fresh session with empty registry and tracer.
    pub fn new() -> ObsSession {
        ObsSession::default()
    }

    /// Installs this session on the current thread until the returned guard
    /// drops. Nested installs shadow outer ones.
    pub fn install(&self) -> ScopeGuard {
        STACK.with(|s| s.borrow_mut().push(self.clone()));
        ScopeGuard { _priv: () }
    }

    /// The innermost session installed on this thread, if any.
    pub fn current() -> Option<ObsSession> {
        STACK.with(|s| s.borrow().last().cloned())
    }

    /// The innermost installed session, or a fresh detached one.
    pub fn current_or_new() -> ObsSession {
        ObsSession::current().unwrap_or_default()
    }

    /// Opens a span directly on this session's tracer.
    pub fn span(&self, name: &str, cat: &str) -> Span {
        self.tracer.span(name, cat)
    }
}

/// Uninstalls the session pushed by [`ObsSession::install`] when dropped.
#[must_use = "dropping the guard immediately uninstalls the session"]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Adds `delta` to counter `name` on the installed session, if any.
pub fn counter_add(name: &str, delta: u64) {
    if let Some(s) = ObsSession::current() {
        s.registry.add(name, delta);
    }
}

/// Increments counter `name` by one on the installed session, if any.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets gauge `name` on the installed session, if any.
pub fn gauge_set(name: &str, v: f64) {
    if let Some(s) = ObsSession::current() {
        s.registry.set_gauge(name, v);
    }
}

/// Records `v` into histogram `name` on the installed session, if any.
pub fn observe(name: &str, v: u64) {
    if let Some(s) = ObsSession::current() {
        s.registry.observe(name, v);
    }
}

/// Opens a span on the installed session's tracer, or an inert span when no
/// session is installed.
pub fn span(name: &str, cat: &str) -> Span {
    match ObsSession::current() {
        Some(s) => s.tracer.span(name, cat),
        None => Span::disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_no_op_without_session() {
        counter_inc("ghost");
        observe("ghost", 1);
        gauge_set("ghost", 1.0);
        span("ghost", "test").end();
        let s = ObsSession::new();
        assert_eq!(s.registry.counter("ghost"), 0);
    }

    #[test]
    fn installed_session_receives_writes() {
        let s = ObsSession::new();
        {
            let _g = s.install();
            counter_inc("hits");
            counter_add("hits", 2);
            gauge_set("level", 0.5);
            observe("sizes", 10);
            span("work", "test").end();
        }
        // Uninstalled again: further writes are dropped.
        counter_inc("hits");
        assert_eq!(s.registry.counter("hits"), 3);
        assert_eq!(s.registry.gauge("level"), Some(0.5));
        assert_eq!(s.registry.histogram("sizes").count, 1);
        assert_eq!(s.tracer.records().len(), 1);
    }

    #[test]
    fn nested_installs_shadow() {
        let outer = ObsSession::new();
        let inner = ObsSession::new();
        let _go = outer.install();
        {
            let _gi = inner.install();
            counter_inc("n");
        }
        counter_inc("n");
        assert_eq!(inner.registry.counter("n"), 1);
        assert_eq!(outer.registry.counter("n"), 1);
    }

    #[test]
    fn sessions_are_per_thread() {
        let s = ObsSession::new();
        let _g = s.install();
        let handle = std::thread::spawn(|| {
            // No session installed on this thread.
            counter_inc("cross-thread");
            ObsSession::current().is_none()
        });
        assert!(handle.join().unwrap());
        assert_eq!(s.registry.counter("cross-thread"), 0);
    }
}
