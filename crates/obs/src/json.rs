//! Minimal JSON: a value model, a writer and a recursive-descent parser.
//!
//! This is the single serialization substrate of the workspace (the repo has
//! a no-crates-io-dependencies policy, so there is no serde). Object key
//! order is preserved on both read and write, integers survive round trips
//! exactly, and the writer escapes every control character, so the output is
//! loadable by any conforming parser — including `chrome://tracing` for the
//! trace exporter.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integral number (no decimal point or exponent in the source).
    Int(i64),
    /// Non-integral number.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (exact ints only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Any numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value parses back as Float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf.
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

/// Writes `s` as a quoted JSON string with all mandatory escapes.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte sequence is valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let s =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab\rand\u{0001}control",
            "unicode: żółć 💡",
            "",
        ] {
            let j = Json::Str(s.to_string());
            let text = j.to_string();
            assert_eq!(parse(&text).unwrap(), j, "via {text}");
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        for v in [0i64, -1, 42, i64::MAX, i64::MIN, 1_546_300_800] {
            let text = Json::Int(v).to_string();
            assert_eq!(parse(&text).unwrap(), Json::Int(v));
        }
    }

    #[test]
    fn structures_round_trip() {
        let doc = Json::Obj(vec![
            (
                "a".into(),
                Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(true)]),
            ),
            (
                "b".into(),
                Json::Obj(vec![("nested".into(), Json::Float(1.5))]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn pretty_formatting_is_indented() {
        let doc = Json::Obj(vec![("k".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(doc.to_string_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
        assert_eq!(doc.to_string(), "{\"k\":[1]}");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"\\x\"",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\udca1\"").unwrap(),
            Json::Str("💡".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn numbers_parse_by_shape() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }
}
