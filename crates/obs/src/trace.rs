//! A span-based tracer.
//!
//! A [`Tracer`] hands out [`Span`] guards; each finished span becomes a
//! [`SpanRecord`] with microsecond start/duration offsets from the tracer's
//! epoch. The whole recording exports as Chrome `trace_event` JSON —
//! complete (`"ph": "X"`) events that `chrome://tracing` and Perfetto load
//! directly, nesting inferred from timestamp containment.

use std::{
    sync::{Arc, Mutex},
    time::{Duration, Instant},
};

use crate::json::Json;

/// The Chrome-trace thread lane the main pipeline records into; executor
/// workers use `MAIN_TID + 1 + worker_index`.
pub const MAIN_TID: u32 = 1;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `stage.detect`.
    pub name: String,
    /// Category, e.g. `pipeline`.
    pub cat: String,
    /// Microseconds from the tracer's epoch to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: u32,
    /// Chrome-trace thread lane ([`MAIN_TID`] for the pipeline thread; one
    /// lane per executor worker).
    pub tid: u32,
    /// Whether the span was flushed while its thread was unwinding from a
    /// panic (i.e. it closed via drop glue inside a `catch_unwind`
    /// isolation boundary). Panicked spans are partial frames: the work
    /// they cover was cut short, but their time is real and must not be
    /// silently dropped from traces or profiles.
    pub panicked: bool,
}

impl SpanRecord {
    /// Whether `self` fully contains `other` on the timeline.
    pub fn contains(&self, other: &SpanRecord) -> bool {
        self.start_us <= other.start_us
            && other.start_us + other.dur_us <= self.start_us + self.dur_us
    }
}

/// One sampled counter value (a Chrome `"ph": "C"` counter event), e.g. the
/// process-wide live heap bytes sampled at a stage boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Counter track name, e.g. `mem.live_bytes`.
    pub name: String,
    /// Microseconds from the tracer's epoch.
    pub ts_us: u64,
    /// Sampled value.
    pub value: i64,
}

#[derive(Debug, Default)]
struct Inner {
    records: Vec<SpanRecord>,
    counters: Vec<CounterSample>,
    depth: u32,
}

/// Locks a tracer mutex even when a panicking thread poisoned it: span
/// flushing happens in drop glue during unwinding, and a poisoned-lock
/// panic inside a drop would abort the process instead of letting the
/// harden boundary catch the original fault.
fn lock(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Records nested timed spans relative to a fixed epoch.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }
}

impl Tracer {
    /// A fresh tracer whose epoch is "now".
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Opens a span on a shared tracer. Ends when the guard is dropped or
    /// [`Span::end`] is called.
    pub fn span(self: &Arc<Tracer>, name: &str, cat: &str) -> Span {
        self.span_on(name, cat, MAIN_TID)
    }

    /// Opens a span on an explicit Chrome-trace thread lane. The sentinel
    /// executor gives each worker its own lane so worker activity renders
    /// side by side in `chrome://tracing` / Perfetto.
    pub fn span_on(self: &Arc<Tracer>, name: &str, cat: &str, tid: u32) -> Span {
        let depth = {
            let mut g = lock(&self.inner);
            let d = g.depth;
            g.depth += 1;
            d
        };
        Span {
            tracer: Some(self.clone()),
            name: name.to_string(),
            cat: cat.to_string(),
            start: Instant::now(),
            depth,
            tid,
            done: false,
        }
    }

    fn finish(&self, span: &mut Span) -> Duration {
        let elapsed = span.start.elapsed();
        let start_us = span
            .start
            .saturating_duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        // Derive the duration from a truncated *end* timestamp rather than
        // truncating `elapsed` directly: truncation is then monotone in real
        // time, so a child's recorded interval can never poke out of its
        // parent's by a sub-microsecond rounding artefact.
        let end_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut g = lock(&self.inner);
        g.depth = g.depth.saturating_sub(1);
        g.records.push(SpanRecord {
            name: std::mem::take(&mut span.name),
            cat: std::mem::take(&mut span.cat),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            depth: span.depth,
            tid: span.tid,
            panicked: std::thread::panicking(),
        });
        elapsed
    }

    /// All finished spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        lock(&self.inner).records.clone()
    }

    /// Records a counter sample (exported as a Chrome `"ph": "C"` counter
    /// event), timestamped "now" against the tracer's epoch.
    pub fn counter(&self, name: &str, value: i64) {
        let ts_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        lock(&self.inner).counters.push(CounterSample {
            name: name.to_string(),
            ts_us,
            value,
        });
    }

    /// All recorded counter samples, in recording order.
    pub fn counters(&self) -> Vec<CounterSample> {
        lock(&self.inner).counters.clone()
    }

    /// The recording as a Chrome `trace_event` document.
    pub fn to_chrome_json(&self) -> Json {
        let mut records = self.records();
        // Lanes first, then time; depth breaks the tie when a parent and
        // child share the same microsecond start and duration — the parent
        // must still precede.
        records.sort_by_key(|r| (r.tid, r.start_us, std::cmp::Reverse(r.dur_us), r.depth));
        let mut events: Vec<Json> = records
            .into_iter()
            .map(|r| {
                let mut fields = vec![
                    ("name".into(), Json::Str(r.name)),
                    ("cat".into(), Json::Str(r.cat)),
                    ("ph".into(), Json::Str("X".into())),
                    ("ts".into(), Json::Int(r.start_us as i64)),
                    ("dur".into(), Json::Int(r.dur_us as i64)),
                    ("pid".into(), Json::Int(1)),
                    ("tid".into(), Json::Int(r.tid as i64)),
                ];
                if r.panicked {
                    fields.push((
                        "args".into(),
                        Json::Obj(vec![("panicked".into(), Json::Bool(true))]),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        // Counter tracks render under the span lanes in chrome://tracing /
        // Perfetto; samples stay in recording (time) order per track.
        let mut counters = self.counters();
        counters.sort_by(|a, b| (&a.name, a.ts_us).cmp(&(&b.name, b.ts_us)));
        events.extend(counters.into_iter().map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.clone())),
                ("cat".into(), Json::Str("counter".into())),
                ("ph".into(), Json::Str("C".into())),
                ("ts".into(), Json::Int(c.ts_us as i64)),
                ("pid".into(), Json::Int(1)),
                ("args".into(), Json::Obj(vec![(c.name, Json::Int(c.value))])),
            ])
        }));
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
    }
}

/// An open span; records itself into its tracer when dropped or ended.
///
/// A span with no tracer (from [`crate::scope::span`] when no session is
/// installed) is inert: it still measures elapsed time but records nothing.
#[derive(Debug)]
pub struct Span {
    tracer: Option<Arc<Tracer>>,
    name: String,
    cat: String,
    start: Instant,
    depth: u32,
    tid: u32,
    done: bool,
}

impl Span {
    /// An inert span that measures time but records nowhere.
    pub fn disabled() -> Span {
        Span {
            tracer: None,
            name: String::new(),
            cat: String::new(),
            start: Instant::now(),
            depth: 0,
            tid: MAIN_TID,
            done: false,
        }
    }

    /// Ends the span now and returns its exact measured duration.
    pub fn end(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        if self.done {
            return Duration::ZERO;
        }
        self.done = true;
        match self.tracer.take() {
            Some(t) => t.finish(self),
            None => self.start.elapsed(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_with_nesting_depth() {
        let t = Arc::new(Tracer::new());
        let outer = t.span("outer", "test");
        {
            let _inner = t.span("inner", "test");
        }
        outer.end();
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        // Completion order: inner first.
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].depth, 0);
        assert!(recs[1].contains(&recs[0]), "outer must contain inner");
    }

    #[test]
    fn end_returns_elapsed_and_prevents_double_record() {
        let t = Arc::new(Tracer::new());
        let s = t.span("once", "test");
        std::thread::sleep(Duration::from_millis(2));
        let d = s.end();
        assert!(d >= Duration::from_millis(2));
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::disabled();
        let d = s.end();
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn chrome_export_shape() {
        let t = Arc::new(Tracer::new());
        t.span("a", "cat").end();
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("pid").and_then(Json::as_i64), Some(1));
        assert!(e.get("ts").and_then(Json::as_i64).is_some());
        assert!(e.get("dur").and_then(Json::as_i64).is_some());
        // Round trips through the parser.
        let text = doc.to_string_pretty();
        assert!(crate::json::parse(&text).is_ok());
    }

    #[test]
    fn worker_lane_spans_export_their_tid() {
        let t = Arc::new(Tracer::new());
        t.span_on("unit", "sentinel", MAIN_TID + 3).end();
        t.span("main", "pipeline").end();
        let recs = t.records();
        assert_eq!(recs[0].tid, MAIN_TID + 3);
        assert_eq!(recs[1].tid, MAIN_TID);
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Export groups by lane: the main lane precedes the worker lane.
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("main"));
        assert_eq!(events[0].get("tid").and_then(Json::as_i64), Some(1));
        assert_eq!(events[1].get("tid").and_then(Json::as_i64), Some(4));
    }

    #[test]
    fn span_dropped_during_unwind_is_flushed_with_panicked_tag() {
        let t = Arc::new(Tracer::new());
        let tc = t.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _open = tc.span("doomed", "test");
            panic!("boom");
        }));
        assert!(caught.is_err());
        let recs = t.records();
        assert_eq!(recs.len(), 1, "open span must be flushed, not dropped");
        assert_eq!(recs[0].name, "doomed");
        assert!(recs[0].panicked, "unwound span must carry panicked: true");
        // A clean span on the same (recovered) thread is not tagged.
        t.span("fine", "test").end();
        assert!(!t.records()[1].panicked);
        // The tag round-trips into the Chrome export as args.panicked.
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let doomed = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("doomed"))
            .unwrap();
        assert_eq!(
            doomed
                .get("args")
                .and_then(|a| a.get("panicked"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let fine = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("fine"))
            .unwrap();
        assert!(fine.get("args").is_none());
    }

    #[test]
    fn tracer_survives_lock_poisoning_by_a_panicked_holder() {
        // A thread that panics between span open and close must not poison
        // the tracer for everyone else (flushing happens in drop glue where
        // a second panic would abort the process).
        let t = Arc::new(Tracer::new());
        let tc = t.clone();
        let _ = std::thread::spawn(move || {
            let _open = tc.span("worker", "test");
            panic!("worker died");
        })
        .join();
        t.span("after", "test").end();
        let names: Vec<_> = t.records().into_iter().map(|r| r.name).collect();
        assert!(names.contains(&"worker".to_string()));
        assert!(names.contains(&"after".to_string()));
    }

    #[test]
    fn counter_samples_export_as_chrome_counter_events() {
        let t = Arc::new(Tracer::new());
        t.counter("mem.live_bytes", 1024);
        t.counter("mem.live_bytes", 2048);
        t.span("work", "test").end();
        assert_eq!(t.counters().len(), 2);
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let cs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0]
                .get("args")
                .and_then(|a| a.get("mem.live_bytes"))
                .and_then(Json::as_i64),
            Some(1024)
        );
        assert!(crate::json::parse(&doc.to_string_pretty()).is_ok());
    }

    #[test]
    fn export_orders_parents_before_children() {
        let t = Arc::new(Tracer::new());
        let outer = t.span("outer", "test");
        t.span("inner", "test").end();
        outer.end();
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("outer"));
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("inner"));
    }
}
