//! Folded-stack profiles from completed span recordings.
//!
//! A [`crate::trace::Tracer`] records flat [`SpanRecord`]s; this module
//! rebuilds the span trees (per Chrome-trace lane, by timestamp
//! containment) and aggregates them into flamegraph-compatible *folded
//! stacks*: one line per distinct call path, `a;b;c <weight>`, loadable by
//! `flamegraph.pl`, speedscope, and every folded-stack viewer.
//!
//! Two weights are exported:
//!
//! - **self-time** (microseconds): the span's duration minus its direct
//!   children's — wall-clock attributed to exactly one frame, so within a
//!   lane the self-times of a root's subtree sum to the root's duration
//!   *exactly* (the tracer truncates child timestamps monotonically, so a
//!   child never pokes out of its parent);
//! - **samples**: how many spans folded into the stack — independent of
//!   wall clock, and therefore byte-identical across runs and `--jobs`
//!   values for a deterministic scan.
//!
//! [`FoldedProfile::logical`] additionally canonicalizes the executor
//! topology: `sentinel.worker.N` frames (one per worker lane, covering idle
//! wait as well as work) are dropped, and the per-unit spans beneath them
//! are grafted under the main lane's `pipeline.run;stage.detect` path. The
//! logical view therefore names *pipeline structure*, not scheduling: it is
//! identical for `--jobs 1` and `--jobs 4`. Note that under parallelism the
//! logical view sums CPU time across workers, so its total can legitimately
//! exceed the root span's wall time; the per-lane (raw) view is the one
//! whose per-root sums match root durations.
//!
//! Spans flushed during a panic unwind ([`SpanRecord::panicked`]) are kept
//! as partial frames with a `_[panicked]` name suffix (the flamegraph
//! annotation convention), so time spent in poisoned units stays visible.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{
    SpanRecord,
    MAIN_TID, //
};

/// Name suffix marking a frame whose span was flushed during a panic
/// unwind (flamegraph `_[annotation]` convention).
pub const PANICKED_SUFFIX: &str = "_[panicked]";

/// Aggregated weight of one folded stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameStat {
    /// Self time: duration minus direct children's durations, microseconds.
    pub self_us: u64,
    /// Number of spans that folded into this stack.
    pub samples: u64,
}

/// One root span occurrence with its subtree's aggregate self time — the
/// profiler's conservation check: `self_sum_us == dur_us` per root (up to
/// the tracer's 1 µs truncation per span boundary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootStat {
    /// Root frame name (e.g. `pipeline.run`).
    pub name: String,
    /// The root span's recorded duration.
    pub dur_us: u64,
    /// Sum of self-times over the root's whole subtree.
    pub self_sum_us: u64,
}

/// Which weight column [`FoldedProfile::render`] emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weight {
    /// Self time in microseconds (the flamegraph default).
    SelfMicros,
    /// Folded span count (deterministic for a deterministic scan).
    Samples,
}

/// An aggregated folded-stack profile.
#[derive(Clone, Debug, Default)]
pub struct FoldedProfile {
    stacks: BTreeMap<String, FrameStat>,
    roots: Vec<RootStat>,
}

/// A frame being folded: its identity plus accounting for children seen so
/// far.
struct OpenFrame {
    path: String,
    dur_us: u64,
    end_us: u64,
    start_us: u64,
    child_dur_us: u64,
}

impl FoldedProfile {
    /// Folds records lane by lane, keeping every frame (the raw scheduling
    /// view: worker lanes appear under their `sentinel.worker.N` roots).
    pub fn from_records(records: &[SpanRecord]) -> FoldedProfile {
        let mut p = FoldedProfile::default();
        for (_, lane) in lanes(records) {
            p.fold_lane(&lane, None, |r| Some(frame_name(r)));
        }
        p
    }

    /// Folds records into the canonical *logical* pipeline view:
    /// `sentinel.worker.N` frames are dropped and worker-lane stacks are
    /// grafted under `pipeline.run;stage.detect` (when the main lane
    /// recorded those spans), so the profile is identical for any worker
    /// count.
    pub fn logical(records: &[SpanRecord]) -> FoldedProfile {
        let mut p = FoldedProfile::default();
        let lanes = lanes(records);
        let graft = lanes
            .get(&MAIN_TID)
            .map(|main| {
                let has = |n: &str| main.iter().any(|r| r.name == n);
                let mut prefix = Vec::new();
                if has("pipeline.run") {
                    prefix.push("pipeline.run");
                }
                if has("stage.detect") {
                    prefix.push("stage.detect");
                }
                prefix.join(";")
            })
            .filter(|s| !s.is_empty());
        for (tid, lane) in &lanes {
            let prefix = if *tid == MAIN_TID {
                None
            } else {
                graft.as_deref()
            };
            p.fold_lane(lane, prefix, |r| {
                if r.name.starts_with("sentinel.worker.") {
                    None
                } else {
                    Some(frame_name(r))
                }
            });
        }
        p
    }

    /// Folds one lane's records (already filtered to a single tid).
    /// `graft_prefix` is prepended to every stack; `name_of` returns `None`
    /// to splice a frame out (its children reattach to its parent).
    fn fold_lane(
        &mut self,
        lane: &[SpanRecord],
        graft_prefix: Option<&str>,
        name_of: impl Fn(&SpanRecord) -> Option<String>,
    ) {
        let mut sorted: Vec<&SpanRecord> = lane.iter().collect();
        // Parents first: earlier start, then longer duration, then the
        // tracer's open-depth for exact ties.
        sorted.sort_by_key(|r| (r.start_us, std::cmp::Reverse(r.dur_us), r.depth));
        let mut open: Vec<OpenFrame> = Vec::new();
        let mut root_self_sum = 0u64;
        for r in sorted {
            let end = r.start_us + r.dur_us;
            while let Some(top) = open.last() {
                if top.start_us <= r.start_us && end <= top.end_us {
                    break;
                }
                let closed = open.pop().expect("non-empty");
                root_self_sum = self.close(closed, &mut open, root_self_sum);
            }
            let name = match name_of(r) {
                Some(n) => n,
                None => continue, // spliced out; children join the parent
            };
            let path = match (open.last(), graft_prefix) {
                (Some(parent), _) => format!("{};{name}", parent.path),
                (None, Some(prefix)) => format!("{prefix};{name}"),
                (None, None) => name,
            };
            open.push(OpenFrame {
                path,
                dur_us: r.dur_us,
                end_us: end,
                start_us: r.start_us,
                child_dur_us: 0,
            });
        }
        while let Some(closed) = open.pop() {
            root_self_sum = self.close(closed, &mut open, root_self_sum);
        }
    }

    /// Finalizes one frame: accounts its self time, rolls its duration into
    /// its parent, and closes out the root accumulator when it was a root.
    fn close(&mut self, f: OpenFrame, open: &mut [OpenFrame], root_self_sum: u64) -> u64 {
        let self_us = f.dur_us.saturating_sub(f.child_dur_us);
        let stat = self.stacks.entry(f.path.clone()).or_default();
        stat.self_us += self_us;
        stat.samples += 1;
        let sum = root_self_sum + self_us;
        match open.last_mut() {
            Some(parent) => {
                parent.child_dur_us += f.dur_us;
                sum
            }
            None => {
                let name = f.path.rsplit(';').next().unwrap_or(&f.path).to_string();
                self.roots.push(RootStat {
                    name,
                    dur_us: f.dur_us,
                    self_sum_us: sum,
                });
                0
            }
        }
    }

    /// The folded stacks, keyed by `;`-joined frame path.
    pub fn stacks(&self) -> &BTreeMap<String, FrameStat> {
        &self.stacks
    }

    /// Every root span occurrence, in fold order.
    pub fn roots(&self) -> &[RootStat] {
        &self.roots
    }

    /// Total self time across all stacks.
    pub fn total_self_us(&self) -> u64 {
        self.stacks.values().map(|s| s.self_us).sum()
    }

    /// The profile in folded-stack text form, one `stack weight` line per
    /// stack, sorted by stack path (a canonical order: two profiles over
    /// the same tree render byte-identically).
    pub fn render(&self, weight: Weight) -> String {
        let mut out = String::new();
        for (path, stat) in &self.stacks {
            let w = match weight {
                Weight::SelfMicros => stat.self_us,
                Weight::Samples => stat.samples,
            };
            let _ = writeln!(out, "{path} {w}");
        }
        out
    }

    /// The `n` frames (aggregated by *leaf* frame name across all stacks)
    /// with the highest total self time, descending; name ties break
    /// alphabetically.
    pub fn top_self(&self, n: usize) -> Vec<(String, FrameStat)> {
        let mut by_frame: BTreeMap<&str, FrameStat> = BTreeMap::new();
        for (path, stat) in &self.stacks {
            let leaf = path.rsplit(';').next().unwrap_or(path);
            let e = by_frame.entry(leaf).or_default();
            e.self_us += stat.self_us;
            e.samples += stat.samples;
        }
        let mut v: Vec<(String, FrameStat)> = by_frame
            .into_iter()
            .map(|(k, s)| (k.to_string(), s))
            .collect();
        v.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// A human-readable top-N self-time table (the `--stats` profile
    /// section).
    pub fn render_top(&self, n: usize) -> String {
        let total = self.total_self_us().max(1);
        let mut out = String::from("profile (top self-time frames):\n");
        for (name, stat) in self.top_self(n) {
            let _ = writeln!(
                out,
                "  {name:<42} self={:<10} n={:<6} {:>5.1}%",
                format_us(stat.self_us),
                stat.samples,
                stat.self_us as f64 * 100.0 / total as f64,
            );
        }
        out
    }
}

/// Groups records by Chrome-trace lane.
fn lanes(records: &[SpanRecord]) -> BTreeMap<u32, Vec<SpanRecord>> {
    let mut out: BTreeMap<u32, Vec<SpanRecord>> = BTreeMap::new();
    for r in records {
        out.entry(r.tid).or_default().push(r.clone());
    }
    out
}

/// The frame name of a record: its span name, suffixed when the span was
/// flushed mid-unwind.
fn frame_name(r: &SpanRecord) -> String {
    if r.panicked {
        format!("{}{PANICKED_SUFFIX}", r.name)
    } else {
        r.name.clone()
    }
}

/// `1234567` → `"1.235s"`-style rendering of microseconds.
fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, start: u64, dur: u64, depth: u32, tid: u32) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "test".into(),
            start_us: start,
            dur_us: dur,
            depth,
            tid,
            panicked: false,
        }
    }

    #[test]
    fn self_times_sum_to_root_duration_exactly() {
        // root [0,100) with children a [10,40) and b [50,90); a has child
        // a1 [20,30).
        let records = vec![
            rec("root", 0, 100, 0, 1),
            rec("a", 10, 30, 1, 1),
            rec("a1", 20, 10, 2, 1),
            rec("b", 50, 40, 1, 1),
        ];
        let p = FoldedProfile::from_records(&records);
        let s = p.stacks();
        assert_eq!(s["root"].self_us, 100 - 30 - 40);
        assert_eq!(s["root;a"].self_us, 30 - 10);
        assert_eq!(s["root;a;a1"].self_us, 10);
        assert_eq!(s["root;b"].self_us, 40);
        assert_eq!(p.total_self_us(), 100);
        assert_eq!(p.roots().len(), 1);
        assert_eq!(p.roots()[0].dur_us, 100);
        assert_eq!(p.roots()[0].self_sum_us, 100);
    }

    #[test]
    fn repeated_stacks_aggregate_samples() {
        let records = vec![
            rec("root", 0, 100, 0, 1),
            rec("u", 0, 20, 1, 1),
            rec("u", 30, 20, 1, 1),
            rec("u", 60, 20, 1, 1),
        ];
        let p = FoldedProfile::from_records(&records);
        assert_eq!(p.stacks()["root;u"].samples, 3);
        assert_eq!(p.stacks()["root;u"].self_us, 60);
        assert_eq!(p.stacks()["root"].self_us, 40);
    }

    #[test]
    fn equal_interval_parent_child_resolved_by_depth() {
        // Parent and child share [5,15): depth orders the parent first.
        let records = vec![rec("child", 5, 10, 1, 1), rec("parent", 5, 10, 0, 1)];
        let p = FoldedProfile::from_records(&records);
        assert_eq!(p.stacks()["parent;child"].self_us, 10);
        assert_eq!(p.stacks()["parent"].self_us, 0);
        assert_eq!(p.roots().len(), 1);
        assert_eq!(p.roots()[0].name, "parent");
    }

    #[test]
    fn lanes_fold_independently_and_multiple_roots_work() {
        let records = vec![
            rec("main", 0, 50, 0, 1),
            rec("w", 0, 80, 0, 2),
            rec("second_root", 60, 10, 0, 1),
        ];
        let p = FoldedProfile::from_records(&records);
        assert_eq!(p.roots().len(), 3);
        assert_eq!(p.stacks().len(), 3);
        assert_eq!(p.stacks()["w"].self_us, 80);
    }

    #[test]
    fn panicked_spans_become_partial_suffixed_frames() {
        let mut bad = rec("unit.f", 10, 5, 1, 1);
        bad.panicked = true;
        let records = vec![rec("root", 0, 100, 0, 1), bad];
        let p = FoldedProfile::from_records(&records);
        assert_eq!(
            p.stacks()[&format!("root;unit.f{PANICKED_SUFFIX}")].self_us,
            5
        );
        assert_eq!(p.stacks()["root"].self_us, 95);
        assert_eq!(p.roots()[0].self_sum_us, 100);
    }

    #[test]
    fn logical_view_grafts_worker_units_under_detect() {
        let records = vec![
            rec("pipeline.run", 0, 100, 0, 1),
            rec("stage.detect", 5, 50, 1, 1),
            rec("sentinel.worker.0", 6, 40, 0, 2),
            rec("unit.f", 8, 10, 1, 2),
            rec("sentinel.worker.1", 6, 40, 0, 3),
            rec("unit.g", 9, 12, 1, 3),
        ];
        let p = FoldedProfile::logical(&records);
        let keys: Vec<&String> = p.stacks().keys().collect();
        assert!(
            p.stacks().contains_key("pipeline.run;stage.detect;unit.f"),
            "{keys:?}"
        );
        assert!(p.stacks().contains_key("pipeline.run;stage.detect;unit.g"));
        assert!(
            !keys.iter().any(|k| k.contains("sentinel.worker")),
            "worker frames must be spliced out: {keys:?}"
        );
        // Worker-count invariance: the same units on ONE worker lane fold
        // to byte-identical stacks (in samples weight).
        let one_lane = vec![
            rec("pipeline.run", 0, 100, 0, 1),
            rec("stage.detect", 5, 50, 1, 1),
            rec("sentinel.worker.0", 6, 90, 0, 2),
            rec("unit.f", 8, 10, 1, 2),
            rec("unit.g", 20, 12, 1, 2),
        ];
        let q = FoldedProfile::logical(&one_lane);
        assert_eq!(p.render(Weight::Samples), q.render(Weight::Samples));
    }

    #[test]
    fn render_is_sorted_and_parseable() {
        let records = vec![
            rec("root", 0, 100, 0, 1),
            rec("b", 10, 10, 1, 1),
            rec("a", 30, 10, 1, 1),
        ];
        let p = FoldedProfile::from_records(&records);
        let text = p.render(Weight::SelfMicros);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["root 80", "root;a 10", "root;b 10"]);
        for line in lines {
            let (stack, w) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            w.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn top_self_aggregates_by_leaf_frame() {
        let records = vec![
            rec("root", 0, 100, 0, 1),
            rec("u", 0, 30, 1, 1),
            rec("v", 40, 10, 1, 1),
            rec("u", 60, 30, 1, 1),
        ];
        let p = FoldedProfile::from_records(&records);
        let top = p.top_self(2);
        assert_eq!(top[0].0, "u");
        assert_eq!(top[0].1.self_us, 60);
        assert_eq!(top[1].0, "root");
        let table = p.render_top(3);
        assert!(table.contains("profile (top self-time frames)"));
        assert!(table.contains('u'));
    }
}
