//! A thread-safe metrics registry: monotonic counters, gauges and log-scale
//! histograms with p50/p95/p99/max summaries.
//!
//! Metrics are created lazily on first use and keyed by dotted names
//! (`pointer.propagations`, `funnel.raw`, ...). Storage is `BTreeMap` so
//! every export — JSON or human-readable — lists metrics in a stable order.

use std::{collections::BTreeMap, fmt::Write as _, sync::Mutex};

use crate::json::Json;

/// Version of the [`MetricsSnapshot::to_json_export`] shape. v1 was the
/// bare `{counters, gauges, histograms}` object (no version field); v2
/// added the top-level `schema_version` and `env` keys. Bumps are additive
/// only — consumers of the v1 shape keep working against every later
/// version.
pub const METRICS_SCHEMA_VERSION: i64 = 2;

/// The machine/profile fingerprint stamped into exports (`os/arch/ncpu/
/// profile`, e.g. `linux/x86_64/cpus=8/release`). Shared by the metrics
/// export and the perf observatory's `BENCH_*.json` reports so lifecycle
/// dashboards can join runs across machines.
pub fn env_fingerprint() -> String {
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "{}/{}/cpus={}/{}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        ncpu,
        profile
    )
}

/// Log-linear histogram: 64 octaves × 4 sub-buckets covers the full `u64`
/// range with ≤ ~19% relative bucket width, plus an exact zero bucket.
const SUB_BUCKETS: u64 = 4;
const BUCKETS: usize = 64 * SUB_BUCKETS as usize;

/// A recording histogram over non-negative integer samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize; // exact small-value buckets, including zero
    }
    let octave = 63 - v.leading_zeros() as u64;
    let sub = (v >> (octave - 2)) & (SUB_BUCKETS - 1);
    (octave * SUB_BUCKETS + sub) as usize
}

/// The lower bound of a bucket (its representative value in summaries).
fn bucket_floor(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let octave = i / SUB_BUCKETS;
    let sub = i % SUB_BUCKETS;
    (1u64 << octave) | (sub << (octave - 2))
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The quantile `q` in `[0, 1]`, estimated from bucket floors and
    /// clamped into the exact observed `[min, max]` range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Point-in-time summary of the distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// An exported histogram summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The thread-safe metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (created at zero on first use).
    pub fn add(&self, name: &str, delta: u64) {
        let mut g = self.inner.lock().unwrap();
        *ensure(&mut g.counters, name) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        *ensure(&mut g.gauges, name) = v;
    }

    /// Records `v` into the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().unwrap();
        ensure(&mut g.histograms, name).record(v);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    /// Summary of a histogram (all-zero when never touched).
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map(|h| h.summary())
            .unwrap_or_default()
    }

    /// A consistent snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

fn ensure<'m, V: Default>(map: &'m mut BTreeMap<String, V>, name: &str) -> &'m mut V {
    if !map.contains_key(name) {
        map.insert(name.to_string(), V::default());
    }
    map.get_mut(name).expect("just inserted")
}

/// A point-in-time export of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Float(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(h.count as i64)),
                        ("sum".into(), Json::Int(h.sum as i64)),
                        ("min".into(), Json::Int(h.min as i64)),
                        ("max".into(), Json::Int(h.max as i64)),
                        ("p50".into(), Json::Int(h.p50 as i64)),
                        ("p95".into(), Json::Int(h.p95 as i64)),
                        ("p99".into(), Json::Int(h.p99 as i64)),
                        ("mean".into(), Json::Float(h.mean())),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }

    /// The versioned export shape behind `vcheck --metrics-json`: the
    /// [`to_json`](MetricsSnapshot::to_json) object with a top-level
    /// `schema_version` and the environment fingerprint prepended. Strictly
    /// additive over the unversioned shape — old consumers keep reading
    /// `counters`/`gauges`/`histograms` untouched.
    pub fn to_json_export(&self) -> Json {
        let mut fields = vec![
            ("schema_version".into(), Json::Int(METRICS_SCHEMA_VERSION)),
            ("env".into(), Json::Str(env_fingerprint())),
        ];
        if let Json::Obj(inner) = self.to_json() {
            fields.extend(inner);
        }
        Json::Obj(fields)
    }

    /// A human-readable multi-line summary (the `vcheck --stats` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<42} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<42} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<42} n={} mean={:.1} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_lazy() {
        let r = Registry::new();
        assert_eq!(r.counter("a"), 0);
        r.inc("a");
        r.add("a", 4);
        assert_eq!(r.counter("a"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.set_gauge("g", 1.5);
        r.set_gauge("g", -2.0);
        assert_eq!(r.gauge("g"), Some(-2.0));
    }

    #[test]
    fn histogram_summary_tracks_exact_extremes() {
        let r = Registry::new();
        for v in [3u64, 5, 9, 1000, 12] {
            r.observe("h", v);
        }
        let s = r.histogram("h");
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 3 + 5 + 9 + 1000 + 12);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 3 && s.p50 <= 12, "p50 = {}", s.p50);
        assert!(s.p95 <= 1000 && s.p95 >= 12, "p95 = {}", s.p95);
    }

    #[test]
    fn quantiles_are_log_scale_accurate() {
        let r = Registry::new();
        for v in 1..=1000u64 {
            r.observe("h", v);
        }
        let s = r.histogram("h");
        // A log-linear bucket at 500 spans ~12.5% of an octave.
        let p50 = s.p50 as f64;
        assert!((400.0..=600.0).contains(&p50), "p50 = {p50}");
        let p95 = s.p95 as f64;
        assert!((800.0..=1000.0).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1 << 20, u64::MAX] {
            let b = bucket_index(v);
            assert!(b >= last, "index regressed at {v}");
            assert!(bucket_floor(b) <= v.max(1), "floor above value at {v}");
            last = b;
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let r = Registry::new();
        assert_eq!(r.histogram("nope"), HistogramSummary::default());
    }

    #[test]
    fn snapshot_exports_and_orders() {
        let r = Registry::new();
        r.inc("z.second");
        r.inc("a.first");
        r.set_gauge("g", 2.0);
        r.observe("h", 7);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counter("z.second"), 1);
        let json = snap.to_json().to_string();
        let back = crate::json::parse(&json).unwrap();
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("a.first"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            back.get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(snap.render_text().contains("a.first"));
    }

    #[test]
    fn versioned_export_is_additive_over_the_plain_shape() {
        let r = Registry::new();
        r.inc("a.first");
        r.observe("h", 7);
        let snap = r.snapshot();
        let export = crate::json::parse(&snap.to_json_export().to_string()).unwrap();
        assert_eq!(
            export.get("schema_version").and_then(Json::as_i64),
            Some(METRICS_SCHEMA_VERSION)
        );
        assert_eq!(
            export.get("env").and_then(Json::as_str),
            Some(env_fingerprint().as_str())
        );
        // Every key of the unversioned shape survives unchanged, so a v1
        // consumer parses the v2 export without noticing.
        let plain = crate::json::parse(&snap.to_json().to_string()).unwrap();
        for key in ["counters", "gauges", "histograms"] {
            assert_eq!(export.get(key), plain.get(key), "{key} must not drift");
        }
    }

    #[test]
    fn env_fingerprint_has_the_bench_report_shape() {
        let env = env_fingerprint();
        let parts: Vec<&str> = env.split('/').collect();
        assert_eq!(parts.len(), 4, "os/arch/cpus=N/profile: {env}");
        assert!(parts[2].starts_with("cpus="));
        assert!(parts[3] == "debug" || parts[3] == "release");
    }

    #[test]
    fn single_sample_quantiles_collapse_to_the_sample() {
        let mut h = Histogram::default();
        h.record(777);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (777, 777));
        // Every quantile of a one-point distribution is that point: the
        // bucket floor (768) must be clamped up into [min, max].
        assert_eq!(s.p50, 777);
        assert_eq!(s.p95, 777);
        assert_eq!(h.quantile(0.0), 777);
        assert_eq!(h.quantile(1.0), 777);
    }

    #[test]
    fn samples_on_log_linear_bucket_boundaries_map_to_their_own_bucket() {
        // Exact boundaries: sub-bucket floors of a few octaves plus the
        // small-value exact buckets. A boundary value must land in the
        // bucket whose floor it is — never the one below.
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            6,
            7,
            8,
            10,
            12,
            14,
            16,
            1 << 10,
            (1 << 10) + (1 << 8),
        ] {
            let b = bucket_index(v);
            if v < SUB_BUCKETS {
                assert_eq!(bucket_floor(b), v, "exact bucket for small {v}");
            } else {
                assert!(
                    bucket_floor(b) <= v && v < bucket_floor(b + 1),
                    "{v} not in [{}, {})",
                    bucket_floor(b),
                    bucket_floor(b + 1)
                );
            }
        }
        // A boundary sample's quantile is exact (floor == sample == min == max).
        let mut h = Histogram::default();
        h.record(16);
        assert_eq!(h.quantile(0.5), 16);
    }

    #[test]
    fn u64_max_is_recorded_without_overflow() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.min, u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.p50, u64::MAX);
        assert_eq!(s.p95, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentiles_interpolate_across_mixed_magnitudes() {
        // 45 fast samples (~1ms), 4 slow (~100ms), 1 outlier (~10s): the
        // shape of a warm serve daemon with occasional cold rebuilds. The
        // log-linear buckets must keep p50 in the fast band, p95 in the
        // slow band, and p99 at the outlier's octave.
        let mut h = Histogram::default();
        for i in 0..45u64 {
            h.record(1_000 + i); // ~1ms in µs
        }
        for i in 0..4u64 {
            h.record(100_000 + i * 500); // ~100ms
        }
        h.record(10_000_000); // 10s
        let s = h.summary();
        assert_eq!(s.count, 50);
        assert!(
            (1_000..2_000).contains(&s.p50),
            "p50 must sit in the fast band: {}",
            s.p50
        );
        assert!(
            (64_000..128_000).contains(&s.p95),
            "p95 must sit in the slow band's octave: {}",
            s.p95
        );
        assert!(
            s.p99 >= 1_000_000,
            "p99 must reach the outlier's octave: {}",
            s.p99
        );
        // q=1.0 lands in the outlier's bucket; the estimate is its floor
        // (clamped to the observed range), never above the true max.
        assert!((8_388_608..=10_000_000).contains(&h.quantile(1.0)));
        assert_eq!(s.max, 10_000_000, "max is exact, not bucketed");
        // Ordering is invariant regardless of bucket estimation error.
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn empty_histogram_summary_has_no_nan_or_garbage() {
        let s = Histogram::default().summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.mean(), 0.0);
        assert!(!s.mean().is_nan());
        // The exporters must render count=0 rows as zeros, not NaN.
        let r = Registry::new();
        {
            // Force an empty histogram entry into the registry without
            // recording a sample: snapshot a cloned-empty default.
            let mut g = r.inner.lock().unwrap();
            g.histograms.insert("empty".into(), Histogram::default());
        }
        let snap = r.snapshot();
        let json = snap.to_json().to_string();
        assert!(!json.contains("NaN"), "json must not contain NaN: {json}");
        let text = snap.render_text();
        assert!(
            text.contains("n=0 mean=0.0 p50=0 p95=0 p99=0 max=0"),
            "{text}"
        );
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.inc("shared");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("shared"), 4000);
    }
}
