//! # vc-obs — observability substrate for the ValueCheck workspace
//!
//! The repo builds with **zero crates-io dependencies**, so everything the
//! pipeline needs for accounting lives here, hand-rolled on `std`:
//!
//! - [`metrics`] — a thread-safe registry of monotonic counters, gauges and
//!   log-scale histograms (p50/p95/max summaries), the substrate behind the
//!   paper's Tables 4–7 style funnel and timing accounting;
//! - [`trace`] — a span-based tracer recording nested timed spans,
//!   exportable as Chrome `trace_event` JSON (open the file in
//!   `chrome://tracing` or Perfetto);
//! - [`json`] — a minimal JSON value model, writer and parser shared by the
//!   metric and trace exporters and by the `history.json` / `truth.json`
//!   interchange formats;
//! - [`names`] — well-known metric name constants for metrics recorded in
//!   one crate and asserted or documented in another;
//! - [`profile`] — folded-stack (flamegraph) aggregation over completed
//!   span records, with exact self-time accounting and a canonical
//!   "logical" view that is identical regardless of worker count;
//! - [`alloc`] — a counting `#[global_allocator]` wrapper with per-thread
//!   scope attribution feeding `mem.*` histograms and trace counters;
//! - [`scope`] — an ambient per-thread [`ObsSession`] so hot paths deep in
//!   the analysis crates can record metrics without threading a registry
//!   through every signature;
//! - [`rng`] — a deterministic splitmix64 PRNG backing the workload
//!   generator and the seeded property-test loops;
//! - [`budget`] — step/wall-clock budgets ([`Budget`], [`BudgetMeter`])
//!   enforced inside the dataflow and pointer fixpoint loops so pathological
//!   inputs degrade instead of hanging.
//!
//! All instrumentation is cheap when no session is installed: a thread-local
//! lookup and an immediate return.

pub mod alloc;
pub mod budget;
pub mod json;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod rng;
pub mod scope;
pub mod trace;

pub use alloc::{
    CountingAlloc,
    MemScope, //
};
pub use profile::{
    FoldedProfile,
    Weight, //
};

pub use budget::{
    Budget,
    BudgetMeter, //
};
pub use json::Json;
pub use metrics::{
    env_fingerprint,
    HistogramSummary,
    MetricsSnapshot,
    Registry,
    METRICS_SCHEMA_VERSION, //
};
pub use rng::SplitMix64;
pub use scope::{
    counter_add,
    counter_inc,
    gauge_set,
    observe,
    span,
    ObsSession,
    ScopeGuard, //
};
pub use trace::{
    Span,
    SpanRecord,
    Tracer,
    MAIN_TID, //
};
