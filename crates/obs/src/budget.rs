//! Step and wall-clock budgets for analysis fixpoints.
//!
//! A [`Budget`] is a declarative limit — at most `max_steps` units of work
//! and/or `max_time` of wall clock — and a [`BudgetMeter`] is the running
//! enforcement of one: solver loops call [`BudgetMeter::tick`] once per unit
//! of work and stop (degrading gracefully) when it returns `false`. The
//! deadline is only consulted every [`DEADLINE_CHECK_INTERVAL`] steps so the
//! per-iteration cost of an armed budget stays a counter increment.

use std::time::{
    Duration,
    Instant, //
};

/// How many steps pass between wall-clock checks.
const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// A work limit: step cap, wall-clock cap, both, or neither.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of steps (solver iterations, propagations).
    pub max_steps: Option<u64>,
    /// Maximum wall-clock time, measured from [`BudgetMeter::start`].
    pub max_time: Option<Duration>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        max_steps: None,
        max_time: None,
    };

    /// A pure step budget.
    pub fn steps(n: u64) -> Budget {
        Budget {
            max_steps: Some(n),
            max_time: None,
        }
    }

    /// A pure wall-clock budget.
    pub fn millis(ms: u64) -> Budget {
        Budget {
            max_steps: None,
            max_time: Some(Duration::from_millis(ms)),
        }
    }

    /// Adds a step cap.
    pub fn with_steps(mut self, n: u64) -> Budget {
        self.max_steps = Some(n);
        self
    }

    /// Adds a wall-clock cap.
    pub fn with_millis(mut self, ms: u64) -> Budget {
        self.max_time = Some(Duration::from_millis(ms));
        self
    }

    /// Whether the budget imposes no limit.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.max_time.is_none()
    }
}

/// The running enforcement of a [`Budget`].
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: Budget,
    started: Instant,
    steps: u64,
    exhausted: bool,
}

impl BudgetMeter {
    /// Starts metering; the wall clock (if capped) begins now.
    pub fn start(budget: Budget) -> BudgetMeter {
        BudgetMeter {
            budget,
            started: Instant::now(),
            steps: 0,
            exhausted: false,
        }
    }

    /// Charges one step. Returns `true` while within budget; once it
    /// returns `false` it keeps returning `false` (exhaustion is sticky).
    pub fn tick(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.steps += 1;
        if let Some(cap) = self.budget.max_steps {
            if self.steps > cap {
                self.exhausted = true;
                return false;
            }
        }
        if let Some(limit) = self.budget.max_time {
            if self.steps % DEADLINE_CHECK_INTERVAL == 0 && self.started.elapsed() > limit {
                self.exhausted = true;
                return false;
            }
        }
        true
    }

    /// Whether the budget has run out.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut m = BudgetMeter::start(Budget::UNLIMITED);
        for _ in 0..100_000 {
            assert!(m.tick());
        }
        assert!(!m.exhausted());
    }

    #[test]
    fn step_cap_exhausts_and_sticks() {
        let mut m = BudgetMeter::start(Budget::steps(3));
        assert!(m.tick());
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.tick());
        assert!(!m.tick(), "exhaustion must be sticky");
        assert!(m.exhausted());
    }

    #[test]
    fn zero_time_budget_exhausts_within_interval() {
        let mut m = BudgetMeter::start(Budget::millis(0));
        let mut survived = 0u64;
        while m.tick() {
            survived += 1;
            assert!(survived <= 2048, "deadline never enforced");
        }
        assert!(m.exhausted());
    }

    #[test]
    fn builder_combines_caps() {
        let b = Budget::steps(10).with_millis(5);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_steps, Some(10));
        assert_eq!(b.max_time, Some(Duration::from_millis(5)));
    }
}
