//! A deterministic splitmix64 PRNG.
//!
//! Backs the workload generator and the seeded property-test loops; not
//! cryptographic. Same seed → same sequence on every platform, which keeps
//! generated app histories and property-test cases reproducible.

/// Splitmix64 state (Steele, Lea & Flood's mixer; passes BigCrush).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` from the high 53 bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    /// Uses Lemire's multiply-shift with rejection to avoid modulo bias.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in the half-open range `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.bounded((hi - lo) as u64) as usize
    }

    /// A uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_inclusive_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.bounded((hi - lo) as u64 + 1) as usize
    }

    /// A uniform `i64` in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let width = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.bounded(width) as i64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform random element of `slice`.
    pub fn choice<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.range_usize(0, slice.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_inclusive_usize(0, i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output_for_seed_zero() {
        // Reference value from the splitmix64 reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds_and_hit_extremes() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.range_usize(10, 15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = r.range_inclusive_usize(0, 1);
            assert!(w <= 1);
            let n = r.range_i64(-5, 5);
            assert!((-5..5).contains(&n));
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range occur");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
