//! Allocation accounting: a zero-dependency counting [`GlobalAlloc`]
//! wrapper with thread-local *scope attribution*.
//!
//! Binaries opt in by installing the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: vc_obs::alloc::CountingAlloc = vc_obs::alloc::CountingAlloc;
//! ```
//!
//! Every allocation/deallocation then updates (a) process-wide totals
//! (bytes allocated/freed, allocation count, live bytes, live high-water)
//! and (b) per-thread, per-*scope* counters, where the scope is a small
//! integer set by the innermost [`MemScope`] guard on that thread. The
//! pipeline wraps each stage (parse, pointer, detect, authorship, prune,
//! rank, …) and each sentinel worker unit in a scope, so `--stats` and
//! `--metrics-json` can answer "which stage allocates" the same way span
//! self-times answer "which stage burns time".
//!
//! When the guard drops it flushes the scope's deltas into the ambient
//! [`ObsSession`](crate::scope::ObsSession) as `mem.<scope>.*` histograms
//! and samples the global live-byte count into the tracer as a Chrome
//! counter event — but only when the wrapper is actually installed
//! ([`accounting_active`]), so library tests without it see no phantom
//! zero-valued metrics.
//!
//! Caveats, by design: frees are attributed to the scope that frees, not
//! the one that allocated (standard for scope-attributed accounting), and
//! the hot path is a handful of relaxed atomic adds plus `Cell` bumps — no
//! locks, no allocation, safe to run under the allocator itself.

use std::{
    alloc::{
        GlobalAlloc,
        Layout,
        System, //
    },
    cell::Cell,
    sync::atomic::{
        AtomicI64,
        AtomicU64,
        Ordering::Relaxed, //
    },
};

/// Unattributed work (thread default).
pub const SCOPE_OTHER: usize = 0;
/// Source parsing / program building.
pub const SCOPE_PARSE: usize = 1;
/// The whole-program Andersen solve.
pub const SCOPE_POINTER: usize = 2;
/// The detection stage (liveness + define sets), main thread.
pub const SCOPE_DETECT: usize = 3;
/// The authorship stage.
pub const SCOPE_AUTHORSHIP: usize = 4;
/// The pruning stage.
pub const SCOPE_PRUNE: usize = 5;
/// The ranking stage.
pub const SCOPE_RANK: usize = 6;
/// One sentinel worker scan unit (worker threads).
pub const SCOPE_WORKER: usize = 7;
/// Differential (delta) scan orchestration.
pub const SCOPE_DELTA: usize = 8;
/// Lifecycle (history) replay orchestration.
pub const SCOPE_HISTORY: usize = 9;
/// Number of scopes (array sizes below).
pub const N_SCOPES: usize = 10;

/// Stable lowercase label for a scope, used in `mem.<label>.*` metric
/// names.
pub fn scope_label(scope: usize) -> &'static str {
    match scope {
        SCOPE_PARSE => "parse",
        SCOPE_POINTER => "pointer",
        SCOPE_DETECT => "detect",
        SCOPE_AUTHORSHIP => "authorship",
        SCOPE_PRUNE => "prune",
        SCOPE_RANK => "rank",
        SCOPE_WORKER => "worker",
        SCOPE_DELTA => "delta",
        SCOPE_HISTORY => "history",
        _ => "other",
    }
}

// Process-wide totals.
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

/// Per-thread, per-scope accounting. `Cell`s only — no `Drop` impl, so the
/// thread-local is const-initialized and its access never allocates (which
/// would recurse into the allocator).
struct ThreadMem {
    scope: Cell<usize>,
    allocs: [Cell<u64>; N_SCOPES],
    alloc_bytes: [Cell<u64>; N_SCOPES],
    freed_bytes: [Cell<u64>; N_SCOPES],
    live: [Cell<i64>; N_SCOPES],
    peak: [Cell<i64>; N_SCOPES],
}

const ZERO_U: Cell<u64> = Cell::new(0);
const ZERO_I: Cell<i64> = Cell::new(0);

thread_local! {
    static MEM: ThreadMem = const {
        ThreadMem {
            scope: Cell::new(SCOPE_OTHER),
            allocs: [ZERO_U; N_SCOPES],
            alloc_bytes: [ZERO_U; N_SCOPES],
            freed_bytes: [ZERO_U; N_SCOPES],
            live: [ZERO_I; N_SCOPES],
            peak: [ZERO_I; N_SCOPES],
        }
    };
}

fn record_alloc(size: u64) {
    TOTAL_ALLOCS.fetch_add(1, Relaxed);
    TOTAL_ALLOC_BYTES.fetch_add(size, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
    HIGH_WATER_BYTES.fetch_max(live.max(0) as u64, Relaxed);
    // During thread teardown the TLS slot may be gone; totals still count.
    let _ = MEM.try_with(|m| {
        let s = m.scope.get().min(N_SCOPES - 1);
        m.allocs[s].set(m.allocs[s].get() + 1);
        m.alloc_bytes[s].set(m.alloc_bytes[s].get() + size);
        let live = m.live[s].get() + size as i64;
        m.live[s].set(live);
        if live > m.peak[s].get() {
            m.peak[s].set(live);
        }
    });
}

fn record_free(size: u64) {
    TOTAL_FREED_BYTES.fetch_add(size, Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Relaxed);
    let _ = MEM.try_with(|m| {
        let s = m.scope.get().min(N_SCOPES - 1);
        m.freed_bytes[s].set(m.freed_bytes[s].get() + size);
        m.live[s].set(m.live[s].get() - size as i64);
    });
}

/// The counting allocator. Delegates every operation to [`System`] and
/// records sizes on success.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the accounting side effects touch
// only atomics and const-initialized TLS cells and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_free(layout.size() as u64);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_free(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        p
    }
}

/// Whether the counting allocator is installed in this process (true once
/// any allocation has been recorded — which, with the wrapper installed,
/// happens long before `main`).
pub fn accounting_active() -> bool {
    TOTAL_ALLOCS.load(Relaxed) > 0
}

/// Process-wide allocation totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Total bytes allocated.
    pub alloc_bytes: u64,
    /// Total bytes freed.
    pub freed_bytes: u64,
    /// Currently live bytes (allocated minus freed).
    pub live_bytes: i64,
    /// Highest live-byte count ever observed.
    pub high_water_bytes: u64,
}

/// A point-in-time snapshot of the process totals.
pub fn global_stats() -> GlobalStats {
    GlobalStats {
        allocs: TOTAL_ALLOCS.load(Relaxed),
        alloc_bytes: TOTAL_ALLOC_BYTES.load(Relaxed),
        freed_bytes: TOTAL_FREED_BYTES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        high_water_bytes: HIGH_WATER_BYTES.load(Relaxed),
    }
}

/// What one [`MemScope`] window observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeDelta {
    /// Allocations inside the window.
    pub allocs: u64,
    /// Bytes allocated inside the window.
    pub alloc_bytes: u64,
    /// Bytes freed inside the window.
    pub freed_bytes: u64,
    /// High-water of net-new live bytes relative to the window start.
    pub live_peak_bytes: u64,
}

/// Attributes this thread's allocations to `scope` until dropped, then
/// flushes the window's deltas as `mem.<scope>.*` histograms into the
/// ambient session (when the counting allocator is installed) and restores
/// the previous scope. The measured deltas are also available from
/// [`MemScope::finish`] for callers that want the numbers directly.
#[must_use = "dropping the guard immediately ends the attribution window"]
pub struct MemScope {
    scope: usize,
    prev: usize,
    base_allocs: u64,
    base_alloc_bytes: u64,
    base_freed_bytes: u64,
    base_live: i64,
}

impl MemScope {
    /// Opens an attribution window for `scope` on the current thread.
    pub fn enter(scope: usize) -> MemScope {
        let scope = scope.min(N_SCOPES - 1);
        MEM.try_with(|m| {
            let prev = m.scope.replace(scope);
            let base_live = m.live[scope].get();
            // Window-local peak: start the high-water mark at "now".
            m.peak[scope].set(base_live);
            MemScope {
                scope,
                prev,
                base_allocs: m.allocs[scope].get(),
                base_alloc_bytes: m.alloc_bytes[scope].get(),
                base_freed_bytes: m.freed_bytes[scope].get(),
                base_live,
            }
        })
        // `unwrap_or_else`, not `unwrap_or`: an eagerly-built fallback guard
        // would be *dropped* on the success path, and its `Drop` resets the
        // thread scope.
        .unwrap_or_else(|_| MemScope {
            scope,
            prev: SCOPE_OTHER,
            base_allocs: 0,
            base_alloc_bytes: 0,
            base_freed_bytes: 0,
            base_live: 0,
        })
    }

    /// The deltas observed so far in this window.
    pub fn delta(&self) -> ScopeDelta {
        MEM.try_with(|m| ScopeDelta {
            allocs: m.allocs[self.scope].get() - self.base_allocs,
            alloc_bytes: m.alloc_bytes[self.scope].get() - self.base_alloc_bytes,
            freed_bytes: m.freed_bytes[self.scope].get() - self.base_freed_bytes,
            live_peak_bytes: (m.peak[self.scope].get() - self.base_live).max(0) as u64,
        })
        .unwrap_or_default()
    }

    /// Ends the window now, returning its deltas (also flushed to the
    /// ambient session, exactly as the drop path does).
    pub fn finish(self) -> ScopeDelta {
        self.delta()
        // Drop runs here and flushes.
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        let delta = self.delta();
        let _ = MEM.try_with(|m| m.scope.set(self.prev));
        if !accounting_active() {
            return;
        }
        if let Some(session) = crate::scope::ObsSession::current() {
            let label = scope_label(self.scope);
            let reg = &session.registry;
            reg.observe(&crate::names::mem(label, "alloc_bytes"), delta.alloc_bytes);
            reg.observe(&crate::names::mem(label, "allocs"), delta.allocs);
            reg.observe(&crate::names::mem(label, "freed_bytes"), delta.freed_bytes);
            reg.observe(
                &crate::names::mem(label, "live_peak_bytes"),
                delta.live_peak_bytes,
            );
            let g = global_stats();
            reg.set_gauge(
                crate::names::MEM_HIGH_WATER_BYTES,
                g.high_water_bytes as f64,
            );
            reg.set_gauge(crate::names::MEM_LIVE_BYTES, g.live_bytes as f64);
            session
                .tracer
                .counter(crate::names::MEM_LIVE_BYTES, g.live_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary for this crate does NOT install the wrapper (unit
    // tests must not depend on link-time state), so exercise the recording
    // paths directly.

    #[test]
    fn record_paths_update_totals_and_scope_cells() {
        let before = global_stats();
        record_alloc(1000);
        record_free(400);
        let after = global_stats();
        assert_eq!(after.allocs - before.allocs, 1);
        assert_eq!(after.alloc_bytes - before.alloc_bytes, 1000);
        assert_eq!(after.freed_bytes - before.freed_bytes, 400);
        assert_eq!(after.live_bytes - before.live_bytes, 600);
        assert!(after.high_water_bytes >= 1000);
    }

    #[test]
    fn scope_window_measures_only_its_own_scope() {
        let outer = MemScope::enter(SCOPE_DETECT);
        record_alloc(100);
        {
            let inner = MemScope::enter(SCOPE_RANK);
            record_alloc(50);
            let d = inner.delta();
            assert_eq!(d.alloc_bytes, 50);
            assert_eq!(d.allocs, 1);
        }
        record_alloc(7);
        let d = outer.delta();
        assert_eq!(d.alloc_bytes, 107, "rank window bytes must not leak in");
        assert_eq!(d.allocs, 2);
    }

    #[test]
    fn live_peak_is_window_relative() {
        let w = MemScope::enter(SCOPE_PRUNE);
        record_alloc(300);
        record_free(300);
        record_alloc(120);
        let d = w.finish();
        assert_eq!(d.live_peak_bytes, 300);
        // A fresh window starts its peak from the current live level.
        let w2 = MemScope::enter(SCOPE_PRUNE);
        record_alloc(10);
        assert_eq!(w2.delta().live_peak_bytes, 10);
    }

    #[test]
    fn scope_labels_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..N_SCOPES {
            assert!(
                seen.insert(scope_label(s)),
                "duplicate label {}",
                scope_label(s)
            );
        }
        assert_eq!(scope_label(SCOPE_OTHER), "other");
        assert_eq!(scope_label(999), "other", "out-of-range clamps to other");
    }

    #[test]
    fn flush_reaches_installed_session_when_active() {
        // accounting_active() is true here iff some other test (or the
        // harness) already exercised record_alloc; force it.
        record_alloc(1);
        let session = crate::scope::ObsSession::new();
        {
            let _g = session.install();
            let w = MemScope::enter(SCOPE_AUTHORSHIP);
            record_alloc(2048);
            drop(w);
        }
        let snap = session.registry.snapshot();
        let hist = session
            .registry
            .histogram(&crate::names::mem("authorship", "alloc_bytes"));
        assert_eq!(hist.count, 1);
        assert!(hist.max >= 2048);
        assert!(snap
            .gauges
            .iter()
            .any(|(k, _)| k == crate::names::MEM_HIGH_WATER_BYTES));
        assert_eq!(session.tracer.counters().len(), 1);
    }
}
