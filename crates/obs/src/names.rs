//! Well-known metric names shared across crates.
//!
//! Counters are string-keyed, so a typo silently creates a second metric;
//! names referenced from more than one crate (recorded in `valuecheck`,
//! asserted in tests, documented in README) live here instead.

/// Findings present in the new revision but not the old (differential scan).
pub const DELTA_NEW: &str = "delta.new";
/// Findings present in the old revision but gone from the new.
pub const DELTA_FIXED: &str = "delta.fixed";
/// Findings present in both revisions (matched by fingerprint or by
/// diff-mapped location).
pub const DELTA_PERSISTING: &str = "delta.persisting";
/// Would-be-new findings suppressed by a `--baseline` fingerprint set.
pub const DELTA_SUPPRESSED: &str = "delta.suppressed";
/// Persisting findings that needed the edit-script line-map fallback (their
/// fingerprint changed, but the diff maps the old location onto the new).
pub const DELTA_LINE_MAPPED: &str = "delta.line_mapped";
