//! Well-known metric names shared across crates.
//!
//! Counters are string-keyed, so a typo silently creates a second metric;
//! every name the pipeline emits lives here as a constant (or matches one
//! of the [`DYNAMIC_PREFIXES`] for families with a runtime-determined
//! suffix, like `funnel.pruned.<reason>`). The workload test-suite runs a
//! full scan + delta scan and asserts via [`is_known`] that nothing slipped
//! back into a stray string literal.

// ---------------------------------------------------------------------------
// Differential (delta) scanning.

/// Findings present in the new revision but not the old (differential scan).
pub const DELTA_NEW: &str = "delta.new";
/// Findings present in the old revision but gone from the new.
pub const DELTA_FIXED: &str = "delta.fixed";
/// Findings present in both revisions (matched by fingerprint or by
/// diff-mapped location).
pub const DELTA_PERSISTING: &str = "delta.persisting";
/// Would-be-new findings suppressed by a `--baseline` fingerprint set.
pub const DELTA_SUPPRESSED: &str = "delta.suppressed";
/// Persisting findings that needed the edit-script line-map fallback (their
/// fingerprint changed, but the diff maps the old location onto the new).
pub const DELTA_LINE_MAPPED: &str = "delta.line_mapped";
/// Findings present in both revisions whose location moved further than the
/// nearby-line threshold (same fingerprint, relocated definition).
pub const DELTA_CHURNED: &str = "delta.churned";

// ---------------------------------------------------------------------------
// Warning lifecycle (full-history replay, `vcheck history`).

/// Commits replayed by the lifecycle scanner.
pub const LIFE_COMMITS: &str = "life.commits";
/// Lifecycle `born` events (first sighting of a fingerprint).
pub const LIFE_BORN: &str = "life.born";
/// Lifecycle `persisting` events (finding survived a commit in place).
pub const LIFE_PERSISTING: &str = "life.persisting";
/// Lifecycle `churned` events (finding survived but relocated beyond the
/// nearby-line threshold).
pub const LIFE_CHURNED: &str = "life.churned";
/// Findings fixed during the replayed history (disappeared from the code).
pub const LIFE_FIXED: &str = "life.fixed";
/// Findings suppressed at the head revision (annotation or store entry).
pub const LIFE_SUPPRESSED: &str = "life.suppressed";
/// Findings still live (and unsuppressed) at the head revision.
pub const LIFE_LIVE: &str = "life.live";
/// Event records appended to the findings database.
pub const LIFE_DB_EVENTS: &str = "life.db.events";

// ---------------------------------------------------------------------------
// Suppression (inline `// vcheck:allow` annotations + the on-disk store).

/// Findings suppressed by an inline `// vcheck:allow(<scenario>)` annotation.
pub const SUPPRESS_INLINE: &str = "suppress.inline";
/// Findings suppressed by a store entry matched on its fingerprint.
pub const SUPPRESS_STORE: &str = "suppress.store";
/// Store matches that needed the nearby-line fallback (the suppressed
/// definition line was itself edited, moving its fingerprint).
pub const SUPPRESS_LINE_MAPPED: &str = "suppress.line_mapped";
/// Suppression stores recovered as cold (truncated/malformed/version skew).
pub const SUPPRESS_STORE_RECOVERED: &str = "suppress.store_recovered";
/// Suppression stores rejected by their content checksum.
pub const SUPPRESS_STORE_CORRUPT: &str = "suppress.store_corrupt";

// ---------------------------------------------------------------------------
// Detection funnel (paper Table 4 shape).

/// Raw unused-definition candidates out of the detector.
pub const FUNNEL_RAW: &str = "funnel.raw";
/// Candidates whose value crosses a scope boundary.
pub const FUNNEL_CROSS_SCOPE: &str = "funnel.cross_scope";
/// Candidates in functions whose analysis failed (kept, degraded).
pub const FUNNEL_FAILED: &str = "funnel.failed";
/// Findings that survived pruning and were reported.
pub const FUNNEL_REPORTED: &str = "funnel.reported";
/// Per-reason prune counters: `funnel.pruned.<reason>`.
pub const FUNNEL_PRUNED_PREFIX: &str = "funnel.pruned.";

/// Builds a `funnel.pruned.<reason>` counter name.
pub fn funnel_pruned(reason: &str) -> String {
    format!("{FUNNEL_PRUNED_PREFIX}{reason}")
}

// ---------------------------------------------------------------------------
// Detection / analysis stages.

/// Functions run through the unused-definition detector.
pub const DETECT_FUNCTIONS: &str = "detect.functions";

/// Dataflow solves started.
pub const DATAFLOW_SOLVES: &str = "dataflow.solves";
/// Fixpoint iterations across all dataflow solves.
pub const DATAFLOW_FIXPOINT_ITERATIONS: &str = "dataflow.fixpoint_iterations";
/// Worklist pushes across all dataflow solves.
pub const DATAFLOW_WORKLIST_PUSHES: &str = "dataflow.worklist_pushes";
/// Per-solve CFG block-count histogram.
pub const DATAFLOW_BLOCK_COUNT: &str = "dataflow.block_count";
/// Dataflow solves stopped early by the step budget.
pub const DATAFLOW_BUDGET_EXHAUSTED: &str = "dataflow.budget_exhausted";

/// Per-function summaries built from scratch (one dead-store/liveness
/// computation each).
pub const SUMMARY_BUILT: &str = "summary.built";
/// Per-function summaries served from a cache (detect outcome, serve warm
/// cache) instead of being rebuilt.
pub const SUMMARY_REUSED: &str = "summary.reused";
/// Summaries skipped by redundant-summary elimination: neither the callee
/// set nor the signature could reach any candidate's cross-scope question.
pub const SUMMARY_ELIMINATED: &str = "summary.eliminated";

/// Andersen pointer solves started.
pub const POINTER_SOLVES: &str = "pointer.solves";
/// Points-to propagations performed.
pub const POINTER_PROPAGATIONS: &str = "pointer.propagations";
/// Pointer-graph nodes.
pub const POINTER_NODES: &str = "pointer.nodes";
/// Pointer-graph copy edges.
pub const POINTER_COPY_EDGES: &str = "pointer.copy_edges";
/// Base points-to facts seeded into the solver.
pub const POINTER_FACTS: &str = "pointer.facts";
/// Pointer solves stopped early by the step budget.
pub const POINTER_BUDGET_EXHAUSTED: &str = "pointer.budget_exhausted";

// ---------------------------------------------------------------------------
// Ranking / authorship.

/// Familiarity scores that came back NaN and were clamped.
pub const RANK_FAMILIARITY_NAN: &str = "rank.familiarity_nan";
/// Histogram of DoK scores (in millis) over ranked findings.
pub const RANK_DOK_SCORE_MILLI: &str = "rank.dok_score_milli";

// ---------------------------------------------------------------------------
// Hardening (fault isolation, degradation, recovery).

/// Source files that failed to parse and were skipped.
pub const HARDEN_PARSE_FAILURES: &str = "harden.parse_failures";
/// Findings with no authorship attribution (unknown author fallback).
pub const HARDEN_AUTHORSHIP_UNKNOWN: &str = "harden.authorship_unknown";
/// Incremental snapshots recovered from disk.
pub const HARDEN_SNAPSHOT_RECOVERED: &str = "harden.snapshot_recovered";
/// Incremental snapshots rejected as corrupt.
pub const HARDEN_SNAPSHOT_CORRUPT: &str = "harden.snapshot_corrupt";
/// Panics caught at the detect isolation boundary.
pub const HARDEN_POISONED_DETECT: &str = "harden.poisoned.detect";
/// Panics caught at the pointer isolation boundary.
pub const HARDEN_POISONED_POINTER: &str = "harden.poisoned.pointer";
/// Panics caught at the authorship isolation boundary.
pub const HARDEN_POISONED_AUTHORSHIP: &str = "harden.poisoned.authorship";
/// Liveness fell back to the degraded (syntactic) path.
pub const HARDEN_DEGRADED_LIVENESS: &str = "harden.degraded.liveness";
/// Pointer stage degraded to empty points-to facts.
pub const HARDEN_DEGRADED_POINTER: &str = "harden.degraded.pointer";
/// Prune stage degraded to pass-through.
pub const HARDEN_DEGRADED_PRUNE: &str = "harden.degraded.prune";
/// Rank stage degraded to input order.
pub const HARDEN_DEGRADED_RANK: &str = "harden.degraded.rank";
/// Snapshot saves that failed (temp file removed, stale snapshot kept).
pub const HARDEN_SNAPSHOT_SAVE_FAILED: &str = "harden.snapshot_save_failed";

// ---------------------------------------------------------------------------
// Serve (warm scan daemon).

/// Requests accepted off the wire (parsed as JSON objects).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Malformed or unknown requests answered with an error reply.
pub const SERVE_BAD_REQUESTS: &str = "serve.bad_requests";
/// Requests shed by the bounded queue under overload.
pub const SERVE_SHED: &str = "serve.shed";
/// Warm-state quarantines: a panic or checksum mismatch forced the next
/// request onto a cold rebuild.
pub const SERVE_STATE_REBUILDS: &str = "serve.state_rebuilds";
/// Requests whose deadline expired (partial, low-confidence reply).
pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
/// Function analyses served from the warm unit cache.
pub const SERVE_UNIT_HITS: &str = "serve.unit_hits";
/// Function analyses that ran because no warm unit applied.
pub const SERVE_UNIT_MISSES: &str = "serve.unit_misses";
/// Requests answered with an `"ok": true` reply.
pub const SERVE_REPLIES: &str = "serve.replies";
/// Requests answered with an error reply (bad request, shutdown drain, ...).
pub const SERVE_ERRORS: &str = "serve.errors";
/// Requests whose handler panicked and was quarantined behind an error
/// reply (the warm state is rebuilt on the next request).
pub const SERVE_QUARANTINED: &str = "serve.quarantined";
/// Warm cache units evicted by generational sweeps.
pub const SERVE_UNITS_SWEPT: &str = "serve.units_swept";
/// Gauge: the most recently assigned request trace id (monotonic from 1).
pub const SERVE_TRACE_ID: &str = "serve.trace_id";
/// Gauge: warm unit-cache hit rate of the latest scan (hits / lookups).
pub const SERVE_WARM_HIT_RATE: &str = "serve.warm_hit_rate";
/// Gauge: dirty-closure size of the latest scan over total functions.
pub const SERVE_DIRTY_RATIO: &str = "serve.dirty_ratio";
/// Per-op request-latency histograms: `serve.latency.<op>` (µs).
pub const SERVE_LATENCY_PREFIX: &str = "serve.latency.";
/// Per-op request counters: `serve.op.<op>`.
pub const SERVE_OP_PREFIX: &str = "serve.op.";

/// Builds a `serve.latency.<op>` histogram name.
pub fn serve_latency(op: &str) -> String {
    format!("{SERVE_LATENCY_PREFIX}{op}")
}

/// Builds a `serve.op.<op>` counter name.
pub fn serve_op(op: &str) -> String {
    format!("{SERVE_OP_PREFIX}{op}")
}

// ---------------------------------------------------------------------------
// Parse recovery (error-recovering front end).

/// Regions the lexer could not tokenise (one per `Error` token).
pub const RECOVER_LEX_ERRORS: &str = "recover.lex_errors";
/// Parse errors survived by panic-mode recovery.
pub const RECOVER_PARSE_ERRORS: &str = "recover.parse_errors";
/// Statements replaced by poisoned placeholder regions.
pub const RECOVER_POISONED_STMTS: &str = "recover.poisoned_stmts";
/// Functions dropped whole because recovery could not salvage them.
pub const RECOVER_FUNCTIONS_DROPPED: &str = "recover.functions_dropped";
/// Files dropped whole (nothing in them survived recovery).
pub const RECOVER_FILES_DROPPED: &str = "recover.files_dropped";

// ---------------------------------------------------------------------------
// Sentinel (supervised parallel executor).

/// Work units enqueued for this run.
pub const SENTINEL_UNITS: &str = "sentinel.units";
/// Units completed (scanned or replayed) this run.
pub const SENTINEL_UNITS_COMPLETED: &str = "sentinel.units_completed";
/// Units actually scanned by a worker this run.
pub const SENTINEL_UNITS_SCANNED: &str = "sentinel.units_scanned";
/// Units satisfied from the journal without rescanning.
pub const SENTINEL_UNITS_REPLAYED: &str = "sentinel.units_replayed";
/// Unit retries after a worker fault.
pub const SENTINEL_RETRIES: &str = "sentinel.retries";
/// Units that exhausted their retry budget.
pub const SENTINEL_FAILED_PERMANENT: &str = "sentinel.failed_permanent";
/// Units requeued after their lease deadline expired.
pub const SENTINEL_REQUEUES: &str = "sentinel.requeues";
/// Results discarded because the unit was already completed.
pub const SENTINEL_STALE_RESULTS: &str = "sentinel.stale_results";
/// Units whose lease deadline expired at least once.
pub const SENTINEL_DEADLINE_TIMEOUTS: &str = "sentinel.deadline_timeouts";
/// Journal replay passes performed.
pub const SENTINEL_JOURNAL_REPLAYS: &str = "sentinel.journal_replays";
/// Torn (half-written) journal records skipped at replay.
pub const SENTINEL_TORN_RECORD_SKIPS: &str = "sentinel.torn_record_skips";
/// Journal records rejected by checksum/shape validation.
pub const SENTINEL_CORRUPT_RECORDS: &str = "sentinel.corrupt_records";
/// Duplicate journal records ignored at replay.
pub const SENTINEL_DUPLICATE_RECORDS: &str = "sentinel.duplicate_records";
/// Journals discarded wholesale (config/version mismatch).
pub const SENTINEL_JOURNAL_DISCARDED: &str = "sentinel.journal_discarded";
/// Journal files that could not be opened for append.
pub const SENTINEL_JOURNAL_OPEN_FAILURES: &str = "sentinel.journal_open_failures";
/// Workers replaced after a crash.
pub const SENTINEL_WORKER_REPLACED: &str = "sentinel.worker_replaced";

// ---------------------------------------------------------------------------
// Incremental scanning.

/// Incremental cache hits (function skipped, prior result reused).
pub const INCREMENTAL_CACHE_HITS: &str = "incremental.cache.hits";
/// Incremental cache misses (function re-analysed).
pub const INCREMENTAL_CACHE_MISSES: &str = "incremental.cache.misses";
/// Commits walked by the incremental scanner.
pub const INCREMENTAL_COMMITS: &str = "incremental.commits";
/// Functions analysed across all incremental steps.
pub const INCREMENTAL_FUNCTIONS_ANALYSED: &str = "incremental.functions_analysed";

// ---------------------------------------------------------------------------
// Allocation accounting (`vc_obs::alloc`).

/// Gauge: current live heap bytes (process-wide).
pub const MEM_LIVE_BYTES: &str = "mem.live_bytes";
/// Gauge: live-byte high-water mark (process-wide).
pub const MEM_HIGH_WATER_BYTES: &str = "mem.high_water_bytes";
/// Per-scope histogram families: `mem.<scope>.<kind>`.
pub const MEM_PREFIX: &str = "mem.";

/// Builds a `mem.<scope>.<kind>` histogram name (e.g. `mem.detect.alloc_bytes`).
pub fn mem(scope: &str, kind: &str) -> String {
    format!("{MEM_PREFIX}{scope}.{kind}")
}

// ---------------------------------------------------------------------------
// Registry.

/// Every fixed (non-dynamic) metric name the workspace emits.
pub const ALL: &[&str] = &[
    DELTA_NEW,
    DELTA_FIXED,
    DELTA_PERSISTING,
    DELTA_SUPPRESSED,
    DELTA_LINE_MAPPED,
    DELTA_CHURNED,
    LIFE_COMMITS,
    LIFE_BORN,
    LIFE_PERSISTING,
    LIFE_CHURNED,
    LIFE_FIXED,
    LIFE_SUPPRESSED,
    LIFE_LIVE,
    LIFE_DB_EVENTS,
    SUPPRESS_INLINE,
    SUPPRESS_STORE,
    SUPPRESS_LINE_MAPPED,
    SUPPRESS_STORE_RECOVERED,
    SUPPRESS_STORE_CORRUPT,
    FUNNEL_RAW,
    FUNNEL_CROSS_SCOPE,
    FUNNEL_FAILED,
    FUNNEL_REPORTED,
    DETECT_FUNCTIONS,
    DATAFLOW_SOLVES,
    DATAFLOW_FIXPOINT_ITERATIONS,
    DATAFLOW_WORKLIST_PUSHES,
    DATAFLOW_BLOCK_COUNT,
    DATAFLOW_BUDGET_EXHAUSTED,
    SUMMARY_BUILT,
    SUMMARY_REUSED,
    SUMMARY_ELIMINATED,
    POINTER_SOLVES,
    POINTER_PROPAGATIONS,
    POINTER_NODES,
    POINTER_COPY_EDGES,
    POINTER_FACTS,
    POINTER_BUDGET_EXHAUSTED,
    RANK_FAMILIARITY_NAN,
    RANK_DOK_SCORE_MILLI,
    HARDEN_PARSE_FAILURES,
    HARDEN_AUTHORSHIP_UNKNOWN,
    HARDEN_SNAPSHOT_RECOVERED,
    HARDEN_SNAPSHOT_CORRUPT,
    HARDEN_POISONED_DETECT,
    HARDEN_POISONED_POINTER,
    HARDEN_POISONED_AUTHORSHIP,
    HARDEN_DEGRADED_LIVENESS,
    HARDEN_DEGRADED_POINTER,
    HARDEN_DEGRADED_PRUNE,
    HARDEN_DEGRADED_RANK,
    HARDEN_SNAPSHOT_SAVE_FAILED,
    SERVE_REQUESTS,
    SERVE_BAD_REQUESTS,
    SERVE_SHED,
    SERVE_STATE_REBUILDS,
    SERVE_DEADLINE_EXCEEDED,
    SERVE_UNIT_HITS,
    SERVE_UNIT_MISSES,
    SERVE_REPLIES,
    SERVE_ERRORS,
    SERVE_QUARANTINED,
    SERVE_UNITS_SWEPT,
    SERVE_TRACE_ID,
    SERVE_WARM_HIT_RATE,
    SERVE_DIRTY_RATIO,
    RECOVER_LEX_ERRORS,
    RECOVER_PARSE_ERRORS,
    RECOVER_POISONED_STMTS,
    RECOVER_FUNCTIONS_DROPPED,
    RECOVER_FILES_DROPPED,
    SENTINEL_UNITS,
    SENTINEL_UNITS_COMPLETED,
    SENTINEL_UNITS_SCANNED,
    SENTINEL_UNITS_REPLAYED,
    SENTINEL_RETRIES,
    SENTINEL_FAILED_PERMANENT,
    SENTINEL_REQUEUES,
    SENTINEL_STALE_RESULTS,
    SENTINEL_DEADLINE_TIMEOUTS,
    SENTINEL_JOURNAL_REPLAYS,
    SENTINEL_TORN_RECORD_SKIPS,
    SENTINEL_CORRUPT_RECORDS,
    SENTINEL_DUPLICATE_RECORDS,
    SENTINEL_JOURNAL_DISCARDED,
    SENTINEL_JOURNAL_OPEN_FAILURES,
    SENTINEL_WORKER_REPLACED,
    INCREMENTAL_CACHE_HITS,
    INCREMENTAL_CACHE_MISSES,
    INCREMENTAL_COMMITS,
    INCREMENTAL_FUNCTIONS_ANALYSED,
    MEM_LIVE_BYTES,
    MEM_HIGH_WATER_BYTES,
];

/// Name families whose suffix is determined at runtime.
pub const DYNAMIC_PREFIXES: &[&str] = &[
    FUNNEL_PRUNED_PREFIX,
    MEM_PREFIX,
    SERVE_LATENCY_PREFIX,
    SERVE_OP_PREFIX,
];

/// Whether `name` is a registered metric name: either one of the fixed
/// constants in [`ALL`] or an instance of a [`DYNAMIC_PREFIXES`] family.
pub fn is_known(name: &str) -> bool {
    ALL.contains(&name) || DYNAMIC_PREFIXES.iter().any(|p| name.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate name constant: {name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "metric names are lowercase dotted identifiers, got {name:?}"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
    }

    #[test]
    fn dynamic_families_resolve_via_is_known() {
        assert!(is_known(&funnel_pruned("init_store")));
        assert!(is_known(&mem("detect", "alloc_bytes")));
        assert!(is_known(&serve_latency("scan")));
        assert!(is_known(&serve_op("status")));
        assert!(is_known(DELTA_NEW));
        assert!(!is_known("typo.counter"));
        assert!(!is_known("funnel.raw2"));
    }
}
