//! Authorship lookup: deciding whether an unused definition crosses author
//! scopes (§4.2 of the paper).
//!
//! The rules, per scenario:
//!
//! 1. **Unused return value** — compare the call-site author `D` against the
//!    authors `B₁, B₂, …` of every `return` statement in the callee; the
//!    candidate is cross-scope when *all* `Bᵢ` differ from `D`. A library
//!    callee (not defined in the project) counts as a different author.
//! 2. **Overwritten/unused argument** — compare each call-site author `C`
//!    against the author `B` of the parameter declaration, or against the
//!    author `D` of the in-function overwrite when one exists.
//! 3. **Overwritten definition** — compare the definition's author against
//!    the authors of the overwriting definitions on all successor paths; all
//!    must differ.

use std::collections::HashMap;

use vc_ir::{
    program::CallSite,
    Program,
    Span, //
};
use vc_vcs::{
    AuthorId,
    Repository, //
};

use crate::candidate::{
    Candidate,
    Scenario, //
};

/// A candidate with its authorship facts resolved.
#[derive(Clone, Debug)]
pub struct Attributed {
    /// The underlying candidate.
    pub candidate: Candidate,
    /// Author of the defining line, when blame succeeded.
    pub def_author: Option<AuthorId>,
    /// Authors on the other side of the boundary (overwriters, callee
    /// returns, or call sites, depending on scenario).
    pub counterpart_authors: Vec<AuthorId>,
    /// Whether the definition crosses author scopes.
    pub cross_scope: bool,
    /// Whether the blame data needed by the scenario rule was missing or
    /// partial. Unknown authorship degrades to *cross-scope* — the paper's
    /// conservative default for an unresolvable boundary (a library callee
    /// "counts as a different author") — rather than silently dropping the
    /// candidate. Counted as `harden.authorship_unknown`.
    pub authorship_unknown: bool,
}

/// Resolves authorship for candidates of a program against a repository.
pub struct AuthorshipCtx<'a> {
    /// The program under analysis.
    pub prog: &'a Program,
    /// The version-control history.
    pub repo: &'a Repository,
    /// Program-wide call-site index (callee name → sites), borrowed from
    /// the program's lazily-built cache.
    pub call_index: &'a HashMap<String, Vec<CallSite>>,
}

impl<'a> AuthorshipCtx<'a> {
    /// Builds a context over the program's shared call-site index.
    pub fn new(prog: &'a Program, repo: &'a Repository) -> Self {
        Self {
            prog,
            repo,
            call_index: prog.call_index(),
        }
    }

    /// Blames a span against the repository.
    pub fn author_of(&self, span: Span) -> Option<AuthorId> {
        if span.is_synthetic() {
            return None;
        }
        let file = self.prog.source.name(span.file);
        self.repo.blame_author(file, span.line())
    }

    /// Applies the scenario rules to one candidate.
    pub fn attribute(&self, cand: &Candidate) -> Attributed {
        let def_author = self.author_of(cand.span);
        let (counterpart_authors, cross_scope, authorship_unknown) = match &cand.scenario {
            Scenario::RetVal { callees } => self.retval_rule(cand, def_author, callees),
            Scenario::Param { .. } => self.param_rule(cand, def_author),
            Scenario::Overwritten => self.overwritten_rule(cand, def_author),
        };
        if authorship_unknown {
            vc_obs::counter_inc(vc_obs::names::HARDEN_AUTHORSHIP_UNKNOWN);
        }
        Attributed {
            candidate: cand.clone(),
            def_author,
            counterpart_authors,
            cross_scope,
            authorship_unknown,
        }
    }

    /// Scenario 1: call-site author vs. authors of the callee's returns.
    fn retval_rule(
        &self,
        _cand: &Candidate,
        def_author: Option<AuthorId>,
        callees: &[String],
    ) -> (Vec<AuthorId>, bool, bool) {
        let Some(d) = def_author else {
            // No blame for the call site: the boundary is unresolvable, so
            // keep the candidate on the conservative (cross-scope) side.
            return (Vec::new(), true, true);
        };
        let mut counterparts = Vec::new();
        let mut cross = false;
        let mut unknown = false;
        if callees.is_empty() {
            // Unresolvable indirect call: an analysis limitation, not a
            // blame gap — cannot establish the boundary.
            return (counterparts, false, false);
        }
        for callee in callees {
            match self.prog.func_by_name(callee) {
                Some(f) => {
                    let ret_authors: Vec<AuthorId> = f
                        .return_spans
                        .iter()
                        .filter_map(|s| self.author_of(*s))
                        .collect();
                    // All return authors must differ from the call-site
                    // author (checkAuthor of Fig. 4).
                    if !f.return_spans.is_empty() && ret_authors.is_empty() {
                        // The callee has returns but none of them blame:
                        // partial history, degrade to cross-scope.
                        cross = true;
                        unknown = true;
                    } else if !ret_authors.is_empty() && ret_authors.iter().all(|b| *b != d) {
                        cross = true;
                    }
                    counterparts.extend(ret_authors.iter().copied());
                }
                None => {
                    // Library call: "we regard the author is different".
                    cross = true;
                }
            }
        }
        (counterparts, cross, unknown)
    }

    /// Scenario 2: call-site authors vs. the parameter's (or overwriter's)
    /// author.
    fn param_rule(
        &self,
        cand: &Candidate,
        def_author: Option<AuthorId>,
    ) -> (Vec<AuthorId>, bool, bool) {
        // `def_author` is the author of the parameter declaration line (B).
        // When the parameter is overwritten inside the function by D, the
        // paper compares D to the call-site author C instead.
        let inside = match cand
            .overwriters
            .iter()
            .filter_map(|s| self.author_of(*s))
            .next()
        {
            Some(d) => Some(d),
            None => def_author,
        };
        let Some(inside) = inside else {
            // Neither the overwriter nor the declaration blames: degrade to
            // cross-scope rather than dropping the candidate.
            return (Vec::new(), true, true);
        };
        let sites = self
            .call_index
            .get(&cand.func_name)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let site_authors: Vec<AuthorId> = sites
            .iter()
            .filter_map(|cs| self.author_of(cs.span))
            .collect();
        if !sites.is_empty() && site_authors.is_empty() {
            // Callers exist but none of their lines blame.
            return (site_authors, true, true);
        }
        let cross = site_authors.iter().any(|c| *c != inside);
        (site_authors, cross, false)
    }

    /// Scenario 3: definition author vs. authors of all overwriters.
    fn overwritten_rule(
        &self,
        cand: &Candidate,
        def_author: Option<AuthorId>,
    ) -> (Vec<AuthorId>, bool, bool) {
        let over_authors: Vec<AuthorId> = cand
            .overwriters
            .iter()
            .filter_map(|s| self.author_of(*s))
            .collect();
        let Some(a) = def_author else {
            // Unknown definition author: conservative cross-scope.
            return (over_authors, true, true);
        };
        if !cand.overwriters.is_empty() && over_authors.is_empty() {
            // Overwriters exist but their blame is missing.
            return (over_authors, true, true);
        }
        let cross = !over_authors.is_empty() && over_authors.iter().all(|b| *b != a);
        (over_authors, cross, false)
    }

    /// Attributes a batch of candidates.
    pub fn attribute_all(&self, cands: &[Candidate]) -> Vec<Attributed> {
        cands.iter().map(|c| self.attribute(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{
        detect_program,
        DetectConfig, //
    };
    use vc_vcs::FileWrite;

    /// Builds a program plus a history where `lines_by` maps 1-based line
    /// numbers to author indices; everything else belongs to author 0.
    fn setup(src: &str, authors: &[&str], lines_by: &[(u32, usize)]) -> (Program, Repository) {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let mut repo = Repository::new();
        let ids: Vec<AuthorId> = authors.iter().map(|a| repo.add_author(*a)).collect();
        // Author 0 writes the whole file, then each listed line is rewritten
        // by its author (preserving content so the program stays identical:
        // we append a trailing space, which blame sees as a change).
        repo.commit(
            ids[0],
            1_000_000,
            "initial import",
            vec![FileWrite {
                path: "a.c".into(),
                content: src.to_string(),
            }],
        );
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        for (i, (line, author)) in lines_by.iter().enumerate() {
            let idx = (*line - 1) as usize;
            lines[idx] = format!("{} ", lines[idx].trim_end());
            let content = lines.join("\n") + "\n";
            repo.commit(
                ids[*author],
                2_000_000 + i as i64,
                format!("touch line {line}"),
                vec![FileWrite {
                    path: "a.c".into(),
                    content,
                }],
            );
        }
        (prog, repo)
    }

    fn attributed(prog: &Program, repo: &Repository) -> Vec<Attributed> {
        let cands = detect_program(prog, DetectConfig::default());
        AuthorshipCtx::new(prog, repo).attribute_all(&cands)
    }

    #[test]
    fn same_author_overwrite_is_not_cross_scope() {
        let (prog, repo) = setup(
            "void f(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n",
            &["alice"],
            &[],
        );
        let a = attributed(&prog, &repo);
        assert_eq!(a.len(), 1);
        assert!(!a[0].cross_scope);
    }

    #[test]
    fn different_author_overwrite_is_cross_scope() {
        // Line 3 (`x = 2;`) rewritten by bob.
        let (prog, repo) = setup(
            "void f(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n",
            &["alice", "bob"],
            &[(3, 1)],
        );
        let a = attributed(&prog, &repo);
        assert_eq!(a.len(), 1);
        assert!(a[0].cross_scope, "{a:?}");
        assert_eq!(a[0].def_author, Some(AuthorId(0)));
        assert_eq!(a[0].counterpart_authors, vec![AuthorId(1)]);
    }

    #[test]
    fn mixed_branch_overwriters_require_all_different() {
        // One overwriter by alice (same author), one by bob: NOT cross-scope
        // because not all overwriters differ.
        let src =
            "void f(int c) {\nint x = 1;\nif (c) {\nx = 2;\n} else {\nx = 3;\n}\nuse(x);\n}\n";
        let (prog, repo) = setup(src, &["alice", "bob"], &[(4, 1)]);
        let a = attributed(&prog, &repo);
        assert_eq!(a.len(), 1);
        assert!(!a[0].cross_scope);
        // Both overwriters rewritten by bob: cross-scope.
        let (prog, repo) = setup(src, &["alice", "bob"], &[(4, 1), (6, 1)]);
        let a = attributed(&prog, &repo);
        assert!(a[0].cross_scope);
    }

    #[test]
    fn library_retval_counts_as_cross_scope() {
        let (prog, repo) = setup(
            "int ext_call(void);\nvoid f(void) {\nint r = ext_call();\nr = 2;\nuse(r);\n}\n",
            &["alice"],
            &[],
        );
        let a = attributed(&prog, &repo);
        let r = a.iter().find(|x| x.candidate.var_name == "r").unwrap();
        assert!(r.cross_scope, "library callee must count as different");
    }

    #[test]
    fn retval_from_same_author_function_is_not_cross_scope() {
        let src =
            "int mine(void) {\nreturn 4;\n}\nvoid f(void) {\nint r = mine();\nr = 2;\nuse(r);\n}\n";
        let (prog, repo) = setup(src, &["alice"], &[]);
        let a = attributed(&prog, &repo);
        let r = a.iter().find(|x| x.candidate.var_name == "r").unwrap();
        assert!(!r.cross_scope);
    }

    #[test]
    fn retval_from_other_author_function_is_cross_scope() {
        // The `return 4;` line (2) authored by bob.
        let src =
            "int mine(void) {\nreturn 4;\n}\nvoid f(void) {\nint r = mine();\nr = 2;\nuse(r);\n}\n";
        let (prog, repo) = setup(src, &["alice", "bob"], &[(2, 1)]);
        let a = attributed(&prog, &repo);
        let r = a.iter().find(|x| x.candidate.var_name == "r").unwrap();
        assert!(r.cross_scope);
    }

    #[test]
    fn param_overwrite_compares_callsite_to_overwriter() {
        // Figure 1b shape: open() overwrites bufsz (line 2, by alice);
        // the call site (line 6) is by bob -> cross-scope.
        let src = "int open_log(char *p, int bufsz) {\nbufsz = 1400;\nreturn bufsz;\n}\nvoid g(void) {\nopen_log(\"h\", 0);\n}\n";
        let (prog, repo) = setup(src, &["alice", "bob"], &[(6, 1)]);
        let a = attributed(&prog, &repo);
        let p = a
            .iter()
            .find(|x| matches!(x.candidate.scenario, Scenario::Param { .. }))
            .unwrap();
        assert!(p.cross_scope, "{p:?}");
    }

    #[test]
    fn param_same_author_everywhere_is_not_cross_scope() {
        let src = "int open_log(char *p, int bufsz) {\nbufsz = 1400;\nreturn bufsz;\n}\nvoid g(void) {\nopen_log(\"h\", 0);\n}\n";
        let (prog, repo) = setup(src, &["alice"], &[]);
        let a = attributed(&prog, &repo);
        let p = a
            .iter()
            .find(|x| matches!(x.candidate.scenario, Scenario::Param { .. }))
            .unwrap();
        assert!(!p.cross_scope);
    }

    #[test]
    fn unknown_blame_degrades_to_conservative_cross_scope() {
        // Empty repository: no blame data at all. The robustness ladder
        // keeps such candidates (flagged) instead of silently dropping them.
        let prog = Program::build(
            &[("a.c", "void f(void) { int x = 1; x = 2; use(x); }")],
            &[],
        )
        .unwrap();
        let repo = Repository::new();
        let a = attributed(&prog, &repo);
        assert!(!a.is_empty());
        assert!(a.iter().all(|x| x.cross_scope && x.authorship_unknown));
    }

    #[test]
    fn known_blame_is_not_flagged_unknown() {
        let (prog, repo) = setup(
            "void f(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n",
            &["alice", "bob"],
            &[(3, 1)],
        );
        let a = attributed(&prog, &repo);
        assert!(a.iter().all(|x| !x.authorship_unknown));
    }
}
