//! Unused-definition candidates and their scenario classification.

use vc_ir::{
    FuncId,
    Span,
    StoreInfo,
    VarKey, //
};

/// Which of the paper's three cross-scope scenarios (§3.1) a candidate
/// belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Scenario 1: an ignored or unused return value. `callees` lists the
    /// possible called functions (one for direct calls; the points-to set
    /// for calls through function pointers).
    RetVal {
        /// Possible callees.
        callees: Vec<String>,
    },
    /// Scenario 2: a function argument whose incoming value is overwritten
    /// or ignored inside the function.
    Param {
        /// Zero-based parameter index.
        index: usize,
    },
    /// Scenario 3: an ordinary definition overwritten by later definitions
    /// on all successor paths (or never read before the function returns).
    Overwritten,
}

/// One unused definition found by the detector, before authorship filtering
/// and pruning.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The containing function.
    pub func: FuncId,
    /// Its name (for reports).
    pub func_name: String,
    /// The defined variable (or field).
    pub key: VarKey,
    /// Human-readable variable name (`buf`, `sctx#2`, `$ret_printf_12`).
    pub var_name: String,
    /// Span of the defining store.
    pub span: Span,
    /// Scenario classification.
    pub scenario: Scenario,
    /// Spans of the definitions that overwrite this one downstream
    /// (the define-set of Fig. 3/4 at this point). Empty when the value is
    /// simply never read before the function returns.
    pub overwriters: Vec<Span>,
    /// Provenance of the stored value (cursor detection, synthetic slots).
    pub info: StoreInfo,
    /// Whether the destination is a compiler-synthesized slot (a call whose
    /// result the source ignores entirely).
    pub synthetic: bool,
    /// Whether the destination variable carries an `unused` attribute.
    pub unused_attr: bool,
    /// Whether the liveness facts backing this candidate were cut short by
    /// a budget (the degradation ladder keeps the candidate but flags it
    /// instead of dropping it).
    pub low_confidence: bool,
}

impl Candidate {
    /// A stable identity for deduplication and diffing: function, variable,
    /// and definition line.
    pub fn identity(&self) -> (String, String, u32) {
        (
            self.func_name.clone(),
            self.var_name.clone(),
            self.span.line(),
        )
    }
}
