//! `vcheck serve` — a crash-tolerant warm scan daemon.
//!
//! A long-lived loop speaking a JSON-lines protocol over stdin/stdout:
//! one request object per line, one reply object per line. The daemon
//! keeps parsed IR (a [`ParseCache`]), per-function detection results (a
//! content-keyed unit cache), and the previous response's fingerprints
//! warm, so re-scanning after a small edit re-analyzes only the dirty
//! function closure — changed functions plus their callers and callees —
//! while replying with bytes identical to a cold `vcheck scan` of the
//! same tree.
//!
//! ## Protocol
//!
//! ```text
//! → {"op":"scan"}                          full scan of the project tree
//! → {"op":"update","files":["src/a.c"]}    rescan after editing files
//! → {"op":"status"}                        counters + warm-state summary
//! → {"op":"sleep","ms":50}                 diagnostic wedge (tests overload)
//! → {"op":"shutdown"}                      drain, flush snapshot, exit 0
//! ```
//!
//! Every request may carry `"deadline_ms": N` to override the configured
//! per-request deadline. Replies always carry `"ok"` and `"seq"` (the
//! server-assigned request number). Scan/update replies embed the full
//! report (`"csv"` and `"report"`) plus the delta classification of each
//! finding against the previous reply (`new` / `fixed` / `persisting`).
//!
//! ## Robustness (the degradation ladder)
//!
//! - **Deadline**: when a request's wall-clock deadline expires mid-scan,
//!   the remaining functions are skipped, every reported finding is marked
//!   `low_confidence`, a `deadline_exceeded` failure record is appended,
//!   and the reply says `"deadline_exceeded": true` — the daemon never
//!   hangs a request.
//! - **Shed**: the reader thread enqueues at most `queue_depth` pending
//!   requests; beyond that it replies `{"ok":false,"shed":true}` without
//!   blocking (counted under `serve.shed`).
//! - **Quarantine**: each request runs inside `catch_unwind`; a panic (or
//!   a warm-state checksum mismatch detected at the start of a request)
//!   poisons the warm caches — the next request rebuilds cold (counted
//!   under `serve.state_rebuilds`). One bad request cannot corrupt the
//!   answers to the next.
//! - **Bad input**: malformed JSON, non-objects, and unknown ops get an
//!   error reply (`serve.bad_requests`), never a process exit.
//!
//! ## Warm-state invalidation
//!
//! Unit-cache keys bind the *content*: file position, file name, file
//! bytes, function name and ordinal, the function's pointer fingerprint
//! (resolved indirect callees + degradation flag — a constant for the
//! common function with no indirect calls, so no pointer component is
//! solved on its behalf), the preprocessor defines, and the detect/harden
//! configuration. Each cached unit carries the function's [`FnSummary`]
//! alongside its candidates, so a warm hit hands the prune stage its
//! summary without rebuilding dataflow facts (counted under
//! `summary.reused`).
//! Any input that could change a function's analysis changes its key, so
//! a stale entry is unreachable rather than wrong. On top of the keys,
//! the dirty closure (functions in changed files, plus callers and
//! callees of changed functions by name) is re-analyzed unconditionally.
//! Both caches sweep generationally: entries not used by the current
//! request are dropped, bounding memory across thousands of requests.
//!
//! ## Telemetry (DESIGN.md §16)
//!
//! Every request is an observable unit: a monotonic `trace_id` (echoed in
//! the reply), a `serve.request` span tree (parse → dirty-closure →
//! detect → prune → rank → reply), a `serve.latency.<op>` histogram
//! sample, and exactly one outcome counter so the request funnel balances
//! at any instant: `serve.requests == serve.replies + serve.shed +
//! serve.errors + serve.quarantined`. `--trace` / `--metrics-json` flush
//! the Chrome trace and versioned metrics snapshot on shutdown/EOF, with
//! the same export schema as batch `vcheck scan`; `--event-log` appends a
//! size-rotated JSON-lines record per request (see [`crate::eventlog`]
//! and `vcheck tail`). The `status` reply carries per-op p50/p95/p99,
//! uptime, per-op counts, cache-effectiveness gauges, and
//! `schema_version` — and degrades gracefully before the first scan
//! (empty histograms render `null` percentiles, never NaN).
//!
//! Test hooks (used by the chaos harness): the `VCHECK_SERVE_FAILPOINTS`
//! environment variable arms `stage:function` failpoints for the life of
//! the daemon, and `VCHECK_SERVE_PANIC_SEQS` injects one-shot panics at
//! the named request numbers to exercise the quarantine path.

use std::{
    collections::{HashMap, HashSet},
    io::{self, BufRead, Write},
    panic::{catch_unwind, AssertUnwindSafe},
    path::{Path, PathBuf},
    sync::{Arc, Condvar, Mutex},
    time::{Duration, Instant},
};

use vc_dataflow::summary::{FnSummary, SigInterner};
use vc_ir::{
    ir::Callee,
    program::ParseCache,
    FileId,
    FuncId,
    Program, //
};
use vc_obs::{Json, ObsSession};
use vc_pointer::demand::DemandPointer;

use crate::{
    candidate::Candidate,
    delta::{fingerprint_ranked, Finding},
    detect::{demand_oracle, detect_unit, finalize_pointer_stage, DetectOutcome},
    eventlog::{now_ms, EventLog},
    harden::{self, FailStage, FailureRecord},
    incremental::SnapshotStore,
    pipeline::{run_stages, Options},
    project::{load_dir_or_empty, Project},
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pipeline options (same knobs as batch `vcheck scan`).
    pub opts: Options,
    /// Preprocessor defines.
    pub defines: Vec<String>,
    /// Default per-request wall-clock deadline (`None` = unlimited);
    /// requests may override with `"deadline_ms"`.
    pub deadline: Option<Duration>,
    /// Maximum queued requests before the reader sheds.
    pub queue_depth: usize,
    /// Where the shutdown flush writes the latest findings snapshot
    /// (`None` disables the flush).
    pub snapshot: Option<PathBuf>,
    /// Where shutdown/EOF flushes the Chrome trace of every request span
    /// (same format as batch `vcheck scan --trace`).
    pub trace: Option<PathBuf>,
    /// Where shutdown/EOF flushes the versioned metrics snapshot (same
    /// `schema_version` + env-fingerprint shape as batch `--metrics-json`).
    pub metrics_json: Option<PathBuf>,
    /// Append-only JSON-lines event log, one record per request
    /// (`None` disables it). See [`crate::eventlog`].
    pub event_log: Option<PathBuf>,
    /// Event-log rotation threshold in bytes (0 = default 1 MiB).
    pub event_log_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            opts: Options::paper(),
            defines: Vec::new(),
            deadline: None,
            queue_depth: 64,
            snapshot: None,
            trace: None,
            metrics_json: None,
            event_log: None,
            event_log_max_bytes: 0,
        }
    }
}

/// One cached per-function detection result. Only clean units are cached:
/// poisoned (panicking) functions re-run on every request so their failure
/// records keep appearing, and deadline-skipped functions were never
/// analyzed at all.
#[derive(Clone, Debug)]
struct CachedUnit {
    candidates: Vec<Candidate>,
    exhausted: bool,
    /// The function's dataflow summary, reused by the prune stage on a
    /// warm hit instead of re-solving liveness/defs (`summary.reused`).
    summary: FnSummary,
}

/// Warm state carried between requests.
#[derive(Debug)]
struct Warm {
    /// The tree as of the last successful request.
    sources: Vec<(String, String)>,
    /// FNV checksum of `sources`; verified at the start of every request —
    /// a mismatch means the warm state was corrupted in memory and forces
    /// a quarantine.
    checksum: u64,
}

/// How a scan classified one finding relative to the previous reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDelta {
    /// Present now, absent from the previous reply.
    New,
    /// Present in both.
    Persisting,
}

/// The result of one scan/update request, before JSON encoding.
#[derive(Debug)]
pub struct ScanResponse {
    /// The full report — identical bytes to a cold `vcheck scan`.
    pub report: crate::report::Report,
    /// Current findings with their delta class.
    pub findings: Vec<(ServeDelta, Finding)>,
    /// Findings from the previous reply that are now gone.
    pub fixed: Vec<Finding>,
    /// Whether the request's deadline expired (partial, low-confidence).
    pub deadline_exceeded: bool,
    /// Whether this request ran cold (no warm state, or quarantined).
    pub rebuilt: bool,
    /// Unit-cache hits / misses for this request.
    pub unit_hits: u64,
    /// Unit-cache misses for this request.
    pub unit_misses: u64,
    /// Funnel numbers for the summary line.
    pub raw_candidates: usize,
    /// Candidates surviving the cross-scope filter.
    pub cross_scope_candidates: usize,
    /// Candidates pruned.
    pub pruned: usize,
}

const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a_field(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    (h ^ 0xFF).wrapping_mul(FNV_PRIME)
}

fn tree_checksum(sources: &[(String, String)]) -> u64 {
    let mut h = FNV_SEED;
    for (name, content) in sources {
        h = fnv1a_field(h, name.as_bytes());
        h = fnv1a_field(h, content.as_bytes());
    }
    h
}

/// The part of the pointer analysis one function's detection can observe:
/// how its indirect calls resolve, and whether the demand solves degraded.
/// Two requests whose pointer analyses agree on this fingerprint give the
/// function byte-identical candidates. Functions with no indirect calls
/// cannot observe the pointer stage at all (the precise aliased-read set
/// is subsumed by the content-derived escape set), so they hash to a
/// constant and never force a component solve.
fn pointer_fingerprint(fid: FuncId, f: &vc_ir::Function, oracle: Option<&DemandPointer>) -> u64 {
    let mut h = FNV_SEED;
    let mut any = false;
    for bb in &f.blocks {
        for inst in &bb.insts {
            if let vc_ir::ir::Inst::Call {
                callee: Callee::Indirect(t),
                ..
            } = inst
            {
                any = true;
                let names = match oracle {
                    Some(o) => o.resolve_fn_ptr(fid, *t),
                    None => Vec::new(),
                };
                h = fnv1a_field(h, &t.0.to_le_bytes());
                for n in &names {
                    h = fnv1a_field(h, n.as_bytes());
                }
            }
        }
    }
    if !any {
        return fnv1a_field(h, &[0]);
    }
    let degraded = oracle.map(|o| o.degraded()).unwrap_or(false);
    fnv1a_field(h, &[1, oracle.is_some() as u8, degraded as u8])
}

/// The warm scan engine: everything `vcheck serve` does to a request,
/// minus the wire protocol. Usable in-process (the perf harness and the
/// memory-stability test drive it directly).
pub struct ServeEngine {
    dir: PathBuf,
    config: ServeConfig,
    /// Cumulative observability session for the daemon's whole life:
    /// funnel counters, `serve.*` counters, recovery stats all accumulate
    /// here across requests.
    obs: ObsSession,
    parse_cache: ParseCache,
    units: HashMap<u64, CachedUnit>,
    warm: Option<Warm>,
    /// Fingerprinted findings of the previous successful reply.
    prev: Option<Vec<Finding>>,
    /// One-shot request numbers that panic on arrival (test hook).
    panic_seqs: HashSet<u64>,
    /// Daemon start time (the `status` reply's uptime).
    start: Instant,
    /// Last assigned request trace id; monotonic from 1.
    next_trace_id: u64,
    /// The structured event log, shared with the reader thread (shed
    /// records are written there, off the worker).
    event_log: Option<Arc<Mutex<EventLog>>>,
}

impl ServeEngine {
    /// Creates an engine for `dir`. Fails (daemon startup error, exit 2)
    /// when the directory cannot be read at all.
    pub fn new(dir: &Path, config: ServeConfig) -> io::Result<ServeEngine> {
        // Probe the tree once so a bad path is a startup error, not a
        // per-request error loop.
        load_dir_or_empty(dir)?;
        let event_log = config
            .event_log
            .as_ref()
            .map(|p| Arc::new(Mutex::new(EventLog::open(p, config.event_log_max_bytes))));
        Ok(ServeEngine {
            dir: dir.to_path_buf(),
            config,
            obs: ObsSession::new(),
            parse_cache: ParseCache::default(),
            units: HashMap::new(),
            warm: None,
            prev: None,
            panic_seqs: HashSet::new(),
            start: Instant::now(),
            next_trace_id: 0,
            event_log,
        })
    }

    /// The engine's cumulative observability session.
    pub fn obs(&self) -> &ObsSession {
        &self.obs
    }

    /// Poisons all warm state: the next request rebuilds cold.
    pub fn quarantine(&mut self) {
        self.parse_cache.clear();
        self.units.clear();
        self.warm = None;
        self.obs
            .registry
            .add(vc_obs::names::SERVE_STATE_REBUILDS, 1);
    }

    /// Handles one scan/update request. `deadline_ms` overrides the
    /// configured per-request deadline.
    pub fn scan(&mut self, deadline_ms: Option<u64>) -> io::Result<ScanResponse> {
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .or(self.config.deadline)
            .map(|d| Instant::now() + d);

        // Quarantine on checksum mismatch BEFORE trusting any cache.
        if let Some(w) = &self.warm {
            if tree_checksum(&w.sources) != w.checksum {
                self.quarantine();
            }
        }
        let rebuilt = self.warm.is_none();

        let project = load_dir_or_empty(&self.dir)?;
        let refs = project.source_refs();
        let opts = self.config.opts;
        let obs = self.obs.clone();
        let _guard = obs.install();
        let run_span = obs.span("pipeline.run", "pipeline");

        // --- Front end (warm): cached parse recovery, fresh assembly. ---
        let parse_span = obs.span("serve.parse", "serve");
        let parse_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_PARSE);
        let (prog, parse_errors, stats) =
            Program::build_recovering_cached(&refs, &self.config.defines, &mut self.parse_cache);
        parse_mem.finish();
        parse_span.end();
        obs.registry.add(
            vc_obs::names::HARDEN_PARSE_FAILURES,
            parse_errors.len() as u64,
        );
        obs.registry
            .add(vc_obs::names::RECOVER_LEX_ERRORS, stats.lex_errors);
        obs.registry
            .add(vc_obs::names::RECOVER_PARSE_ERRORS, stats.parse_errors);
        obs.registry
            .add(vc_obs::names::RECOVER_POISONED_STMTS, stats.poisoned_stmts);
        obs.registry.add(
            vc_obs::names::RECOVER_FUNCTIONS_DROPPED,
            stats.functions_dropped,
        );
        obs.registry
            .add(vc_obs::names::RECOVER_FILES_DROPPED, stats.files_dropped);

        // --- Dirty closure: changed files, plus callers/callees of their
        // functions by name. Everything in it re-runs unconditionally
        // (the content-keyed unit cache would catch these anyway; the
        // closure is belt and braces against key-collision bugs). ---
        let dirty_span = obs.span("serve.dirty_closure", "serve");
        let dirty = self.dirty_closure(&prog, &project);
        dirty_span.end();

        // --- Detection (warm): pointer stage fresh, units cached. ---
        let detect_span = obs.span("stage.detect", "pipeline");
        let detect_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_DETECT);
        let (outcome, deadline_exceeded, unit_hits, unit_misses) =
            self.detect_warm(&prog, &dirty, deadline);
        detect_mem.finish();
        let detect_time = detect_span.end();

        // Cache-effectiveness gauges: how much of the tree the warm state
        // actually saved this request.
        let lookups = unit_hits + unit_misses;
        obs.registry.set_gauge(
            vc_obs::names::SERVE_WARM_HIT_RATE,
            if lookups == 0 {
                0.0
            } else {
                unit_hits as f64 / lookups as f64
            },
        );
        obs.registry.set_gauge(
            vc_obs::names::SERVE_DIRTY_RATIO,
            // `dirty` holds names (possibly including undefined externals
            // named at call sites), so clamp into [0, 1].
            (dirty.len() as f64 / prog.funcs.len().max(1) as f64).min(1.0),
        );

        // --- Back end: shared with batch scan, byte-for-byte. ---
        let mut analysis = run_stages(
            &prog,
            &project.repo,
            &opts,
            obs.clone(),
            outcome,
            detect_time,
            run_span,
        );
        // Front-end failures splice ahead, mirroring `vcheck scan`.
        let front: Vec<FailureRecord> = parse_errors
            .iter()
            .map(|e| FailureRecord {
                stage: FailStage::Parse,
                file: e.file().to_string(),
                function: e.function().map(str::to_string),
                message: e.to_string(),
            })
            .collect();
        analysis.report.failures.splice(0..0, front);

        // --- Delta classification against the previous reply. ---
        let current = fingerprint_ranked(&prog, &analysis.ranked);
        let prev_set: HashSet<u64> = self
            .prev
            .as_ref()
            .map(|p| p.iter().map(|f| f.fingerprint.0).collect())
            .unwrap_or_default();
        let cur_set: HashSet<u64> = current.iter().map(|f| f.fingerprint.0).collect();
        let findings: Vec<(ServeDelta, Finding)> = current
            .iter()
            .map(|f| {
                let class = if prev_set.contains(&f.fingerprint.0) {
                    ServeDelta::Persisting
                } else {
                    ServeDelta::New
                };
                (class, f.clone())
            })
            .collect();
        let fixed: Vec<Finding> = self
            .prev
            .as_ref()
            .map(|p| {
                p.iter()
                    .filter(|f| !cur_set.contains(&f.fingerprint.0))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();

        // --- Commit warm state (only after full success). ---
        let sources = project.sources;
        let checksum = tree_checksum(&sources);
        self.warm = Some(Warm { sources, checksum });
        if !deadline_exceeded {
            // A partial scan must not masquerade as the delta baseline:
            // findings in skipped functions would read as "fixed" next
            // request.
            self.prev = Some(current);
        }

        Ok(ScanResponse {
            raw_candidates: analysis.raw_candidates,
            cross_scope_candidates: analysis.cross_scope_candidates,
            pruned: analysis.prune_outcome.total_pruned(),
            report: analysis.report,
            findings,
            fixed,
            deadline_exceeded,
            rebuilt,
            unit_hits,
            unit_misses,
        })
    }

    /// Function names defined in files whose content changed since the
    /// warm snapshot, expanded to callers and callees by name.
    fn dirty_closure(&self, prog: &Program, project: &Project) -> HashSet<String> {
        let warm = match &self.warm {
            Some(w) => w,
            None => return prog.funcs.iter().map(|f| f.name.clone()).collect(),
        };
        let old: HashMap<&str, &str> = warm
            .sources
            .iter()
            .map(|(p, c)| (p.as_str(), c.as_str()))
            .collect();
        let mut changed_files: HashSet<&str> = HashSet::new();
        for (path, content) in &project.sources {
            if old.get(path.as_str()) != Some(&content.as_str()) {
                changed_files.insert(path);
            }
        }
        let mut dirty: HashSet<String> = HashSet::new();
        let mut changed_fns: Vec<FuncId> = Vec::new();
        for (i, _) in project.sources.iter().enumerate() {
            let fid = FileId(i as u32);
            if changed_files.contains(prog.source.name(fid)) {
                for (id, f) in prog.funcs_in_file(fid) {
                    dirty.insert(f.name.clone());
                    changed_fns.push(id);
                }
            }
        }
        // Callers of changed functions (by callee name).
        let call_index = prog.call_index();
        for name in dirty.clone() {
            if let Some(sites) = call_index.get(&name) {
                for site in sites {
                    dirty.insert(prog.func(site.caller).name.clone());
                }
            }
        }
        // Direct callees of changed functions.
        for fid in changed_fns {
            let f = prog.func(fid);
            for bb in &f.blocks {
                for inst in &bb.insts {
                    if let vc_ir::ir::Inst::Call {
                        callee: Callee::Direct(n),
                        ..
                    } = inst
                    {
                        dirty.insert(n.clone());
                    }
                }
            }
        }
        dirty
    }

    /// The warm detection pass: the demand pointer oracle is partitioned
    /// fresh (components solve lazily, only when an indirect call's
    /// fingerprint or detection needs them), per-function results come
    /// from the unit cache when clean and not dirty. Mirrors
    /// `detect_program_hardened` exactly on a cold cache.
    fn detect_warm(
        &mut self,
        prog: &Program,
        dirty: &HashSet<String>,
        deadline: Option<Instant>,
    ) -> (DetectOutcome, bool, u64, u64) {
        let opts = &self.config.opts;
        let hconf = opts.harden;
        let mut out = DetectOutcome::default();
        let oracle = demand_oracle(prog, opts.detect, hconf);
        let interner = SigInterner::new(prog);
        let config_salt = {
            let mut h = FNV_SEED;
            h = fnv1a_field(h, format!("{:?}", opts.detect).as_bytes());
            h = fnv1a_field(h, format!("{:?}", hconf).as_bytes());
            for d in &self.config.defines {
                h = fnv1a_field(h, d.as_bytes());
            }
            h
        };

        vc_obs::counter_add(vc_obs::names::DETECT_FUNCTIONS, prog.funcs.len() as u64);
        // Per-file content hashes, computed once: the unit key must bind
        // the file's bytes, but hashing the whole file again for every
        // function in it would make the warm loop O(functions x bytes).
        let mut file_hash: HashMap<FileId, u64> = HashMap::new();
        let mut next_units: HashMap<u64, CachedUnit> = HashMap::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut deadline_exceeded = false;
        // Ordinal of each function within its file, so two same-named
        // (static) functions in one file get distinct unit keys.
        let mut file_ordinal: HashMap<FileId, u32> = HashMap::new();

        for fi in 0..prog.funcs.len() {
            let fid = FuncId(fi as u32);
            let f = prog.func(fid);
            let ordinal = {
                let slot = file_ordinal.entry(f.file).or_insert(0);
                let o = *slot;
                *slot += 1;
                o
            };
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    deadline_exceeded = true;
                    vc_obs::counter_inc(vc_obs::names::SERVE_DEADLINE_EXCEEDED);
                    out.failures.push(FailureRecord {
                        stage: FailStage::Detect,
                        file: "<serve>".to_string(),
                        function: None,
                        message: format!(
                            "deadline exceeded after {fi} of {} functions; remaining functions \
                             skipped and all findings marked low-confidence",
                            prog.funcs.len()
                        ),
                    });
                    break;
                }
            }
            let pf = pointer_fingerprint(fid, f, oracle.as_ref());
            let key = {
                let mut h = config_salt;
                h = fnv1a_field(h, &f.file.0.to_le_bytes());
                h = fnv1a_field(h, prog.source.name(f.file).as_bytes());
                let ch = *file_hash.entry(f.file).or_insert_with(|| {
                    let content = prog
                        .source
                        .file(f.file)
                        .map(|s| s.content.as_str())
                        .unwrap_or("");
                    fnv1a_field(FNV_SEED, content.as_bytes())
                });
                h = fnv1a_field(h, &ch.to_le_bytes());
                h = fnv1a_field(h, f.name.as_bytes());
                h = fnv1a_field(h, &ordinal.to_le_bytes());
                fnv1a_field(h, &pf.to_le_bytes())
            };
            if !dirty.contains(&f.name) {
                if let Some(unit) = self.units.get(&key) {
                    hits += 1;
                    vc_obs::counter_inc(vc_obs::names::SERVE_UNIT_HITS);
                    vc_obs::counter_inc(vc_obs::names::SUMMARY_REUSED);
                    if unit.exhausted {
                        out.liveness_degraded += 1;
                        vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_LIVENESS);
                    }
                    // Rebind: the function's global id may have shifted
                    // when other files gained or lost functions; its file,
                    // spans, and locals are pinned by the key.
                    out.candidates.extend(unit.candidates.iter().map(|c| {
                        let mut c = c.clone();
                        c.func = fid;
                        c
                    }));
                    let mut summary = unit.summary.clone();
                    summary.sig = interner.sig_of(fid);
                    out.summaries.insert(fid, summary);
                    next_units.insert(key, unit.clone());
                    continue;
                }
            }
            misses += 1;
            vc_obs::counter_inc(vc_obs::names::SERVE_UNIT_MISSES);
            let detected = harden::isolated(hconf.isolate, || {
                harden::failpoint(FailStage::Detect, &f.name);
                detect_unit(
                    prog,
                    fid,
                    interner.sig_of(fid),
                    oracle.as_ref(),
                    hconf.liveness_budget,
                )
            });
            match detected {
                Ok((summary, cands)) => {
                    let exhausted = summary.exhausted;
                    if exhausted {
                        out.liveness_degraded += 1;
                        vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_LIVENESS);
                    }
                    next_units.insert(
                        key,
                        CachedUnit {
                            candidates: cands.clone(),
                            exhausted,
                            summary: summary.clone(),
                        },
                    );
                    out.summaries.insert(fid, summary);
                    out.candidates.extend(cands);
                }
                Err(message) => {
                    vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_DETECT);
                    out.failures.push(FailureRecord {
                        stage: FailStage::Detect,
                        file: prog.source.name(f.file).to_string(),
                        function: Some(f.name.clone()),
                        message,
                    });
                }
            }
        }
        // Generational sweep: entries the current tree did not touch die.
        let swept = self
            .units
            .keys()
            .filter(|k| !next_units.contains_key(k))
            .count() as u64;
        vc_obs::counter_add(vc_obs::names::SERVE_UNITS_SWEPT, swept);
        self.units = next_units;
        finalize_pointer_stage(oracle.as_ref(), &mut out);
        if deadline_exceeded {
            for c in &mut out.candidates {
                c.low_confidence = true;
            }
        }
        (out, deadline_exceeded, hits, misses)
    }

    /// Handles one protocol line. Returns the reply and whether the daemon
    /// should shut down after sending it.
    ///
    /// Every request is a first-class observable unit: it gets a monotonic
    /// `trace_id` (echoed in the reply and the `serve.trace_id` gauge), a
    /// `serve.request` span enclosing its whole lifetime, a
    /// `serve.latency.<op>` observation, exactly one outcome counter
    /// (`serve.replies` / `serve.errors` / `serve.quarantined` — together
    /// with `serve.shed` these partition `serve.requests`), and one
    /// event-log record.
    pub fn handle_line(&mut self, line: &str, seq: u64) -> (Json, bool) {
        self.obs.registry.add(vc_obs::names::SERVE_REQUESTS, 1);
        self.next_trace_id += 1;
        let trace_id = self.next_trace_id;
        self.obs
            .registry
            .set_gauge(vc_obs::names::SERVE_TRACE_ID, trace_id as f64);
        let started = Instant::now();
        let req_span = self.obs.span("serve.request", "serve");
        let (reply, shutdown, tel) = self.dispatch(line, seq);
        req_span.end();
        let latency_us = started.elapsed().as_micros() as u64;
        if tel.known_op {
            // Only protocol ops get latency histograms and per-op counters:
            // arbitrary op strings from the wire must not mint metric names.
            self.obs
                .registry
                .observe(&vc_obs::names::serve_latency(&tel.op), latency_us);
        }
        self.log_event(event_record(now_ms(), trace_id, seq, &tel, latency_us));
        (with_trace(reply, trace_id), shutdown)
    }

    /// Parses and executes one request; returns the reply, the shutdown
    /// flag, and the request's telemetry. Outcome counters are bumped here,
    /// *before* the reply is encoded, so a `status` reply's own funnel is
    /// balanced at the instant it reads the counters.
    fn dispatch(&mut self, line: &str, seq: u64) -> (Json, bool, ReqTelemetry) {
        let tel = ReqTelemetry::unknown();
        let req = match vc_obs::json::parse(line) {
            Ok(j @ Json::Obj(_)) => j,
            Ok(_) => {
                return (
                    self.bad_request(seq, "request must be a JSON object"),
                    false,
                    tel,
                )
            }
            Err(e) => {
                return (
                    self.bad_request(seq, &format!("malformed JSON: {e}")),
                    false,
                    tel,
                )
            }
        };
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return (self.bad_request(seq, "missing \"op\""), false, tel),
        };
        match op.as_str() {
            "scan" | "update" => {
                let mut tel = self.known_op(&op);
                let deadline_ms = req
                    .get("deadline_ms")
                    .and_then(Json::as_i64)
                    .map(|n| n.max(0) as u64);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if self.panic_seqs.remove(&seq) {
                        panic!("injected serve fault at request {seq}");
                    }
                    self.scan(deadline_ms)
                }));
                match result {
                    Ok(Ok(resp)) => {
                        self.obs.registry.add(vc_obs::names::SERVE_REPLIES, 1);
                        tel.outcome = "ok";
                        tel.deadline_exceeded = resp.deadline_exceeded;
                        tel.rebuilt = resp.rebuilt;
                        tel.funnel =
                            Some((resp.raw_candidates as u64, resp.report.rows.len() as u64));
                        let reply_span = self.obs.span("serve.reply", "serve");
                        let reply = scan_reply(seq, &op, &resp);
                        reply_span.end();
                        (reply, false, tel)
                    }
                    Ok(Err(e)) => {
                        self.obs.registry.add(vc_obs::names::SERVE_ERRORS, 1);
                        (error_reply(seq, &format!("scan failed: {e}")), false, tel)
                    }
                    Err(payload) => {
                        // The request died mid-flight: warm state may be
                        // torn, so poison it all. The daemon survives.
                        self.quarantine();
                        self.obs.registry.add(vc_obs::names::SERVE_QUARANTINED, 1);
                        tel.outcome = "quarantined";
                        let msg = harden::panic_message(payload);
                        (
                            error_reply(
                                seq,
                                &format!("request panicked (state quarantined): {msg}"),
                            ),
                            false,
                            tel,
                        )
                    }
                }
            }
            "status" => {
                let mut tel = self.known_op(&op);
                tel.outcome = "ok";
                self.obs.registry.add(vc_obs::names::SERVE_REPLIES, 1);
                (self.status_reply(seq), false, tel)
            }
            "sleep" => {
                let mut tel = self.known_op(&op);
                tel.outcome = "ok";
                let ms = req
                    .get("ms")
                    .and_then(Json::as_i64)
                    .unwrap_or(0)
                    .clamp(0, 10_000);
                std::thread::sleep(Duration::from_millis(ms as u64));
                self.obs.registry.add(vc_obs::names::SERVE_REPLIES, 1);
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("seq".into(), Json::Int(seq as i64)),
                        ("op".into(), Json::Str("sleep".into())),
                    ]),
                    false,
                    tel,
                )
            }
            "shutdown" => {
                let mut tel = self.known_op(&op);
                tel.outcome = "ok";
                self.flush_snapshot();
                self.obs.registry.add(vc_obs::names::SERVE_REPLIES, 1);
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("seq".into(), Json::Int(seq as i64)),
                        ("op".into(), Json::Str("shutdown".into())),
                    ]),
                    true,
                    tel,
                )
            }
            other => (
                self.bad_request(seq, &format!("unknown op `{other}`")),
                false,
                tel,
            ),
        }
    }

    /// Marks `op` as a recognized protocol op: bumps its `serve.op.<op>`
    /// counter and returns a telemetry record carrying it.
    fn known_op(&self, op: &str) -> ReqTelemetry {
        self.obs.registry.add(&vc_obs::names::serve_op(op), 1);
        ReqTelemetry {
            op: op.to_string(),
            known_op: true,
            ..ReqTelemetry::unknown()
        }
    }

    /// Appends one record to the event log, if one is configured.
    fn log_event(&self, record: Json) {
        if let Some(log) = &self.event_log {
            log.lock().unwrap().append(&record);
        }
    }

    fn bad_request(&self, seq: u64, msg: &str) -> Json {
        self.obs.registry.add(vc_obs::names::SERVE_BAD_REQUESTS, 1);
        self.obs.registry.add(vc_obs::names::SERVE_ERRORS, 1);
        error_reply(seq, msg)
    }

    /// The `status` reply: request-funnel counters, per-op latency
    /// percentiles, cache effectiveness, and uptime. Must never panic —
    /// before the first scan every histogram is empty, and empty
    /// percentiles render as `null`, not NaN or garbage.
    fn status_reply(&self, seq: u64) -> Json {
        let reg = &self.obs.registry;
        let counters = [
            vc_obs::names::SERVE_REQUESTS,
            vc_obs::names::SERVE_REPLIES,
            vc_obs::names::SERVE_ERRORS,
            vc_obs::names::SERVE_QUARANTINED,
            vc_obs::names::SERVE_BAD_REQUESTS,
            vc_obs::names::SERVE_SHED,
            vc_obs::names::SERVE_STATE_REBUILDS,
            vc_obs::names::SERVE_DEADLINE_EXCEEDED,
            vc_obs::names::SERVE_UNIT_HITS,
            vc_obs::names::SERVE_UNIT_MISSES,
            vc_obs::names::SERVE_UNITS_SWEPT,
            vc_obs::names::FUNNEL_RAW,
            vc_obs::names::FUNNEL_CROSS_SCOPE,
            vc_obs::names::FUNNEL_FAILED,
            vc_obs::names::FUNNEL_REPORTED,
            vc_obs::names::HARDEN_POISONED_DETECT,
            vc_obs::names::HARDEN_DEGRADED_POINTER,
        ]
        .iter()
        .map(|n| ((*n).to_string(), Json::Int(reg.counter(n) as i64)))
        .collect::<Vec<_>>();
        let pruned: u64 = crate::prune::PruneReason::ALL
            .iter()
            .map(|r| reg.counter(&vc_obs::names::funnel_pruned(r.label())))
            .sum();
        // Per-op latency percentiles; `null` until the op has a sample.
        let ops: Vec<(String, Json)> = ["scan", "update", "status"]
            .iter()
            .map(|op| {
                let h = reg.histogram(&vc_obs::names::serve_latency(op));
                let pct = |v: u64| {
                    if h.count == 0 {
                        Json::Null
                    } else {
                        Json::Int(v as i64)
                    }
                };
                (
                    (*op).to_string(),
                    Json::Obj(vec![
                        (
                            "count".into(),
                            Json::Int(reg.counter(&vc_obs::names::serve_op(op)) as i64),
                        ),
                        ("p50_us".into(), pct(h.p50)),
                        ("p95_us".into(), pct(h.p95)),
                        ("p99_us".into(), pct(h.p99)),
                    ]),
                )
            })
            .collect();
        let gauge = |name: &str| Json::Float(reg.gauge(name).unwrap_or(0.0));
        let mut fields = vec![
            ("ok".into(), Json::Bool(true)),
            ("seq".into(), Json::Int(seq as i64)),
            ("op".into(), Json::Str("status".into())),
            (
                "schema_version".into(),
                Json::Int(vc_obs::METRICS_SCHEMA_VERSION),
            ),
            (
                "uptime_ms".into(),
                Json::Int(self.start.elapsed().as_millis() as i64),
            ),
            ("warm".into(), Json::Bool(self.warm.is_some())),
            ("counters".into(), Json::Obj(counters)),
            ("funnel_pruned".into(), Json::Int(pruned as i64)),
            ("ops".into(), Json::Obj(ops)),
            (
                "cache".into(),
                Json::Obj(vec![
                    (
                        "warm_hit_rate".into(),
                        gauge(vc_obs::names::SERVE_WARM_HIT_RATE),
                    ),
                    (
                        "dirty_ratio".into(),
                        gauge(vc_obs::names::SERVE_DIRTY_RATIO),
                    ),
                    (
                        "units_swept".into(),
                        Json::Int(reg.counter(vc_obs::names::SERVE_UNITS_SWEPT) as i64),
                    ),
                ]),
            ),
        ];
        fields.push((
            "parse_cache".into(),
            Json::Obj(vec![
                ("files".into(), Json::Int(self.parse_cache.len() as i64)),
                ("hits".into(), Json::Int(self.parse_cache.hits() as i64)),
                ("misses".into(), Json::Int(self.parse_cache.misses() as i64)),
            ]),
        ));
        if let Some(log) = &self.event_log {
            fields.push((
                "event_log_dropped".into(),
                Json::Int(log.lock().unwrap().dropped() as i64),
            ));
        }
        Json::Obj(fields)
    }

    /// Persists the latest findings through the atomic snapshot writer
    /// (best-effort: a failure is counted, never fatal).
    fn flush_snapshot(&self) {
        let (path, prev) = match (&self.config.snapshot, &self.prev) {
            (Some(p), Some(f)) => (p, f),
            _ => return,
        };
        let store = SnapshotStore::from_findings(vc_vcs::CommitId(0), prev);
        let _g = self.obs.install();
        let _ = store.save(path);
    }

    /// Arms the env-driven test hooks (failpoints and one-shot panics).
    /// Called once by the daemon loop on its worker thread.
    fn arm_env_hooks(&mut self) {
        if let Ok(spec) = std::env::var("VCHECK_SERVE_FAILPOINTS") {
            for part in spec.split(';').filter(|s| !s.is_empty()) {
                if let Some((stage, needle)) = part.split_once(':') {
                    if let Some(stage) = FailStage::from_label(stage) {
                        // Leak the guard: armed for the daemon's lifetime.
                        std::mem::forget(harden::arm_failpoint(stage, needle));
                    }
                }
            }
        }
        if let Ok(spec) = std::env::var("VCHECK_SERVE_PANIC_SEQS") {
            self.panic_seqs = spec
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect();
        }
    }
}

fn error_reply(seq: u64, msg: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("seq".into(), Json::Int(seq as i64)),
        ("error".into(), Json::Str(msg.to_string())),
    ])
}

/// Per-request telemetry accumulated during dispatch, consumed by the
/// latency histogram and the event-log record.
struct ReqTelemetry {
    /// The request op (`"?"` when unparseable or unknown).
    op: String,
    /// Whether `op` is a recognized protocol op (gates the dynamic
    /// `serve.latency.<op>` / `serve.op.<op>` metric families).
    known_op: bool,
    /// `ok` / `error` / `quarantined` (the reader thread logs `shed`).
    outcome: &'static str,
    deadline_exceeded: bool,
    rebuilt: bool,
    /// Scan-request funnel deltas: (raw candidates, reported rows).
    funnel: Option<(u64, u64)>,
}

impl ReqTelemetry {
    fn unknown() -> ReqTelemetry {
        ReqTelemetry {
            op: "?".to_string(),
            known_op: false,
            outcome: "error",
            deadline_exceeded: false,
            rebuilt: false,
            funnel: None,
        }
    }
}

/// Stamps the request's trace id into a reply object.
fn with_trace(mut reply: Json, trace_id: u64) -> Json {
    if let Json::Obj(fields) = &mut reply {
        fields.push(("trace_id".into(), Json::Int(trace_id as i64)));
    }
    reply
}

/// One event-log record (see [`crate::eventlog`] for the read side).
fn event_record(ts_ms: u64, trace_id: u64, seq: u64, tel: &ReqTelemetry, latency_us: u64) -> Json {
    let mut fields = vec![
        ("ts_ms".into(), Json::Int(ts_ms as i64)),
        ("trace_id".into(), Json::Int(trace_id as i64)),
        ("seq".into(), Json::Int(seq as i64)),
        ("op".into(), Json::Str(tel.op.clone())),
        ("outcome".into(), Json::Str(tel.outcome.to_string())),
        ("latency_us".into(), Json::Int(latency_us as i64)),
        (
            "deadline_exceeded".into(),
            Json::Bool(tel.deadline_exceeded),
        ),
        ("rebuilt".into(), Json::Bool(tel.rebuilt)),
    ];
    if let Some((raw, reported)) = tel.funnel {
        fields.push((
            "funnel".into(),
            Json::Obj(vec![
                ("raw".into(), Json::Int(raw as i64)),
                ("reported".into(), Json::Int(reported as i64)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// A shed record, written by the reader thread (no trace id: the request
/// never reached the engine that assigns them).
fn shed_record(seq: u64) -> Json {
    Json::Obj(vec![
        ("ts_ms".into(), Json::Int(now_ms() as i64)),
        ("trace_id".into(), Json::Int(0)),
        ("seq".into(), Json::Int(seq as i64)),
        ("op".into(), Json::Str("?".into())),
        ("outcome".into(), Json::Str("shed".into())),
        ("latency_us".into(), Json::Int(0)),
        ("deadline_exceeded".into(), Json::Bool(false)),
        ("rebuilt".into(), Json::Bool(false)),
    ])
}

fn finding_json(f: &Finding) -> Json {
    Json::Obj(vec![
        ("fingerprint".into(), Json::Str(f.fingerprint.to_hex())),
        ("file".into(), Json::Str(f.file.clone())),
        ("line".into(), Json::Int(f.line as i64)),
        ("function".into(), Json::Str(f.function.clone())),
        ("variable".into(), Json::Str(f.variable.clone())),
        ("scenario".into(), Json::Str(f.scenario.clone())),
    ])
}

fn scan_reply(seq: u64, op: &str, resp: &ScanResponse) -> Json {
    let class = |want: ServeDelta| -> Json {
        Json::Arr(
            resp.findings
                .iter()
                .filter(|(c, _)| *c == want)
                .map(|(_, f)| finding_json(f))
                .collect(),
        )
    };
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("seq".into(), Json::Int(seq as i64)),
        ("op".into(), Json::Str(op.to_string())),
        (
            "deadline_exceeded".into(),
            Json::Bool(resp.deadline_exceeded),
        ),
        ("rebuilt".into(), Json::Bool(resp.rebuilt)),
        ("unit_hits".into(), Json::Int(resp.unit_hits as i64)),
        ("unit_misses".into(), Json::Int(resp.unit_misses as i64)),
        (
            "funnel".into(),
            Json::Obj(vec![
                ("raw".into(), Json::Int(resp.raw_candidates as i64)),
                (
                    "cross_scope".into(),
                    Json::Int(resp.cross_scope_candidates as i64),
                ),
                ("pruned".into(), Json::Int(resp.pruned as i64)),
                ("reported".into(), Json::Int(resp.report.rows.len() as i64)),
            ]),
        ),
        (
            "delta".into(),
            Json::Obj(vec![
                ("new".into(), class(ServeDelta::New)),
                ("persisting".into(), class(ServeDelta::Persisting)),
                (
                    "fixed".into(),
                    Json::Arr(resp.fixed.iter().map(finding_json).collect()),
                ),
            ]),
        ),
        // The full report, bit-exact: `csv` + pretty-printed `report` are
        // the two halves of `Report::canonical_bytes()`.
        ("csv".into(), Json::Str(resp.report.to_csv())),
        ("report".into(), resp.report.to_json_value()),
    ])
}

/// Shared reader/worker queue state.
struct QueueState {
    queue: std::collections::VecDeque<(u64, String)>,
    eof: bool,
}

/// Runs the daemon loop over arbitrary I/O (stdin/stdout in production,
/// pipes in tests). Returns the process exit code: 0 on graceful shutdown
/// or input EOF — startup errors are the caller's to map to exit 2.
pub fn run_daemon<R, W>(mut engine: ServeEngine, input: R, output: W) -> i32
where
    R: BufRead + Send + 'static,
    W: Write + Send + 'static,
{
    engine.arm_env_hooks();
    let obs = engine.obs.clone();
    let shed_log = engine.event_log.clone();
    let depth = engine.config.queue_depth.max(1);
    let state = Arc::new((
        Mutex::new(QueueState {
            queue: std::collections::VecDeque::new(),
            eof: false,
        }),
        Condvar::new(),
    ));
    let out = Arc::new(Mutex::new(output));

    // Reader thread: lines in, queue (or shed) out. It never analyzes
    // anything, so a wedged scan cannot stop shed replies.
    let reader_state = Arc::clone(&state);
    let reader_out = Arc::clone(&out);
    let reader = std::thread::spawn(move || {
        let mut seq = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            seq += 1;
            let (lock, cvar) = &*reader_state;
            let mut st = lock.lock().unwrap();
            if st.queue.len() >= depth {
                drop(st);
                // Requests before shed: mid-update observers may see a
                // request still "in flight", never an outcome without one.
                obs.registry.add(vc_obs::names::SERVE_REQUESTS, 1);
                obs.registry.add(vc_obs::names::SERVE_SHED, 1);
                if let Some(log) = &shed_log {
                    log.lock().unwrap().append(&shed_record(seq));
                }
                let mut w = reader_out.lock().unwrap();
                let reply = Json::Obj(vec![
                    ("ok".into(), Json::Bool(false)),
                    ("seq".into(), Json::Int(seq as i64)),
                    ("shed".into(), Json::Bool(true)),
                    (
                        "error".into(),
                        Json::Str(format!("queue full ({depth} pending)")),
                    ),
                ]);
                let _ = writeln!(w, "{}", reply.to_string());
                let _ = w.flush();
                continue;
            }
            st.queue.push_back((seq, line));
            cvar.notify_one();
        }
        let (lock, cvar) = &*reader_state;
        lock.lock().unwrap().eof = true;
        cvar.notify_one();
    });

    // Worker loop (current thread): FIFO processing; thread-local
    // failpoints armed above therefore apply to every request.
    let exit_code = loop {
        let item = {
            let (lock, cvar) = &*state;
            let mut st = lock.lock().unwrap();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    break Some(item);
                }
                if st.eof {
                    break None;
                }
                st = cvar.wait(st).unwrap();
            }
        };
        let (seq, line) = match item {
            Some(x) => x,
            None => {
                // EOF without an explicit shutdown: still a graceful exit.
                engine.flush_snapshot();
                break 0;
            }
        };
        let (reply, shutdown) = engine.handle_line(&line, seq);
        {
            let mut w = out.lock().unwrap();
            let _ = writeln!(w, "{}", reply.to_string());
            let _ = w.flush();
        }
        if shutdown {
            // Drain: everything still queued gets a terminal error reply
            // rather than silence. Drained requests still count — the
            // funnel (`requests == replies + shed + errors + quarantined`)
            // balances at any observation point, including the final
            // metrics flush.
            let (lock, _) = &*state;
            let drained: Vec<(u64, String)> = lock.lock().unwrap().queue.drain(..).collect();
            let mut w = out.lock().unwrap();
            for (dseq, _) in drained {
                engine.obs.registry.add(vc_obs::names::SERVE_REQUESTS, 1);
                engine.obs.registry.add(vc_obs::names::SERVE_ERRORS, 1);
                let tel = ReqTelemetry::unknown();
                engine.log_event(event_record(now_ms(), 0, dseq, &tel, 0));
                let _ = writeln!(w, "{}", error_reply(dseq, "shutting down").to_string());
            }
            let _ = w.flush();
            break 0;
        }
    };
    // Telemetry flush: same export shapes as batch `vcheck scan`
    // (`--metrics-json` = versioned snapshot, `--trace` = Chrome trace).
    // Best-effort by design — the daemon is already exiting.
    if let Some(path) = &engine.config.metrics_json {
        let text = engine
            .obs
            .registry
            .snapshot()
            .to_json_export()
            .to_string_pretty();
        let _ = std::fs::write(path, text);
    }
    if let Some(path) = &engine.config.trace {
        let text = engine.obs.tracer.to_chrome_json().to_string_pretty();
        let _ = std::fs::write(path, text);
    }
    // The reader may still be blocked on stdin; do not join unless it
    // already saw EOF. Dropping the handle detaches it — the process exit
    // tears it down.
    if reader.is_finished() {
        let _ = reader.join();
    }
    exit_code
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// A `Write` the test can keep reading after the daemon takes it.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    const BUGGY: &str = "int lib_a(void);\n\
                         int has_bug(void) {\n\
                         int got = lib_a();\n\
                         got = 2;\n\
                         return got;\n\
                         }\n";
    const CLEAN: &str = "int clean_fn(void) { return 1; }\n";

    fn tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vc-serve-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for (f, text) in files {
            fs::write(dir.join(f), text).unwrap();
        }
        dir
    }

    /// A cold batch scan of the same tree, through the standard pipeline —
    /// the oracle the warm engine must match byte-for-byte.
    fn cold_canonical(dir: &Path, opts: &Options) -> Vec<u8> {
        let project = load_dir_or_empty(dir).unwrap();
        let (prog, errors, _) = Program::build_recovering(&project.source_refs(), &[]);
        let mut analysis =
            crate::pipeline::run_with_obs(&prog, &project.repo, opts, ObsSession::new());
        let front: Vec<FailureRecord> = errors
            .iter()
            .map(|e| FailureRecord {
                stage: FailStage::Parse,
                file: e.file().to_string(),
                function: e.function().map(str::to_string),
                message: e.to_string(),
            })
            .collect();
        analysis.report.failures.splice(0..0, front);
        analysis.report.canonical_bytes()
    }

    fn canonical_of(resp: &ScanResponse) -> Vec<u8> {
        resp.report.canonical_bytes()
    }

    #[test]
    fn warm_rescan_is_byte_identical_to_cold() {
        let dir = tree("warmcold", &[("a.c", BUGGY), ("b.c", CLEAN)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let first = eng.scan(None).unwrap();
        assert!(first.rebuilt);
        assert_eq!(
            canonical_of(&first),
            cold_canonical(&dir, &Options::paper())
        );
        // Unchanged tree: all units hit, bytes identical.
        let second = eng.scan(None).unwrap();
        assert!(!second.rebuilt);
        assert_eq!(second.unit_hits, 2, "has_bug + clean_fn both stay warm");
        assert_eq!(
            canonical_of(&second),
            cold_canonical(&dir, &Options::paper())
        );
        // Edit b.c: a.c's unit stays warm, report matches cold.
        fs::write(dir.join("b.c"), "int clean_fn(void) { return 2; }\n").unwrap();
        let third = eng.scan(None).unwrap();
        assert!(third.unit_hits >= 1, "unchanged file units stay warm");
        assert_eq!(
            canonical_of(&third),
            cold_canonical(&dir, &Options::paper())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_classification_tracks_edits() {
        let dir = tree("delta", &[("a.c", BUGGY), ("b.c", CLEAN)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let first = eng.scan(None).unwrap();
        assert!(first.findings.iter().all(|(c, _)| *c == ServeDelta::New));
        let n = first.findings.len();
        assert!(n >= 1);
        // No edit: everything persists.
        let second = eng.scan(None).unwrap();
        assert!(second
            .findings
            .iter()
            .all(|(c, _)| *c == ServeDelta::Persisting));
        // Fix the bug: the finding flips to fixed.
        fs::write(
            dir.join("a.c"),
            "int lib_a(void);\nint has_bug(void) { return lib_a(); }\n",
        )
        .unwrap();
        let third = eng.scan(None).unwrap();
        assert_eq!(third.fixed.len(), n);
        assert!(third.findings.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_file_degrades_and_matches_cold() {
        let dir = tree(
            "corrupt",
            &[
                ("a.c", BUGGY),
                (
                    "bad.c",
                    "vc_mangled_t broken(void) {\nint x = 1;\nreturn x;\n}\n",
                ),
            ],
        );
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let warm = eng.scan(None).unwrap();
        assert_eq!(canonical_of(&warm), cold_canonical(&dir, &Options::paper()));
        assert!(warm
            .report
            .failures
            .iter()
            .any(|f| f.stage == FailStage::Parse));
        // Corrupt further mid-session: still matches cold.
        fs::write(dir.join("bad.c"), "@@ %% ?? garbage ## $$\n").unwrap();
        let worse = eng.scan(None).unwrap();
        assert_eq!(
            canonical_of(&worse),
            cold_canonical(&dir, &Options::paper())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_produces_partial_low_confidence_response() {
        let dir = tree("deadline", &[("a.c", BUGGY), ("b.c", CLEAN)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        // Zero deadline: expires before the first function.
        let resp = eng.scan(Some(0)).unwrap();
        assert!(resp.deadline_exceeded);
        assert!(resp.report.rows.iter().all(|r| r.low_confidence));
        assert!(resp
            .report
            .failures
            .iter()
            .any(|f| f.message.contains("deadline exceeded")));
        assert_eq!(
            eng.obs
                .registry
                .counter(vc_obs::names::SERVE_DEADLINE_EXCEEDED),
            1
        );
        // A partial scan is not a delta baseline: the next full scan still
        // reports the finding as new, not as regressed-after-fixed.
        let full = eng.scan(None).unwrap();
        assert!(!full.deadline_exceeded);
        assert!(full.findings.iter().any(|(c, _)| *c == ServeDelta::New));
        assert_eq!(canonical_of(&full), cold_canonical(&dir, &Options::paper()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_quarantines_and_next_request_rebuilds_cold() {
        let dir = tree("panicq", &[("a.c", BUGGY)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let ok = eng.handle_line("{\"op\":\"scan\"}", 1);
        assert_eq!(ok.0.get("ok").and_then(Json::as_bool), Some(true));
        // Inject a one-shot panic at seq 2.
        eng.panic_seqs.insert(2);
        let (reply, shutdown) = eng.handle_line("{\"op\":\"scan\"}", 2);
        assert!(!shutdown);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert!(reply
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("quarantined"));
        assert_eq!(
            eng.obs
                .registry
                .counter(vc_obs::names::SERVE_STATE_REBUILDS),
            1
        );
        // Recovery: the next request rebuilds cold and matches the oracle.
        let resp = eng.scan(None).unwrap();
        assert!(resp.rebuilt);
        assert_eq!(canonical_of(&resp), cold_canonical(&dir, &Options::paper()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_forces_rebuild() {
        let dir = tree("cksum", &[("a.c", BUGGY)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        eng.scan(None).unwrap();
        // Corrupt the warm state in memory.
        if let Some(w) = &mut eng.warm {
            w.sources[0].1.push_str("/* torn */");
        }
        let resp = eng.scan(None).unwrap();
        assert!(
            resp.rebuilt,
            "checksum mismatch must trigger a cold rebuild"
        );
        assert_eq!(
            eng.obs
                .registry
                .counter(vc_obs::names::SERVE_STATE_REBUILDS),
            1
        );
        assert_eq!(canonical_of(&resp), cold_canonical(&dir, &Options::paper()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_and_unknown_requests_reply_with_errors() {
        let dir = tree("badreq", &[("a.c", CLEAN)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        for line in ["not json at all", "[1,2]", "{}", "{\"op\":\"fry\"}"] {
            let (reply, shutdown) = eng.handle_line(line, 1);
            assert!(!shutdown);
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line}"
            );
        }
        assert_eq!(
            eng.obs.registry.counter(vc_obs::names::SERVE_BAD_REQUESTS),
            4
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_tree_scans_clean() {
        let dir = tree("emptytree", &[]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let resp = eng.scan(None).unwrap();
        assert!(resp.report.rows.is_empty());
        assert!(resp.report.failures.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_loop_scan_shutdown_roundtrip() {
        let dir = tree("loop", &[("a.c", BUGGY)]);
        let engine = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let input = io::Cursor::new(
            b"{\"op\":\"scan\"}\n{\"op\":\"status\"}\n{\"op\":\"shutdown\"}\n".to_vec(),
        );
        let out = SharedBuf::default();
        let code = run_daemon(engine, input, out.clone());
        assert_eq!(code, 0);
        let text = out.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let scan = vc_obs::json::parse(lines[0]).unwrap();
        assert_eq!(scan.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(scan.get("seq").and_then(Json::as_i64), Some(1));
        assert!(scan
            .get("csv")
            .and_then(Json::as_str)
            .unwrap()
            .contains("has_bug"));
        let status = vc_obs::json::parse(lines[1]).unwrap();
        assert_eq!(status.get("warm").and_then(Json::as_bool), Some(true));
        let bye = vc_obs::json::parse(lines[2]).unwrap();
        assert_eq!(bye.get("op").and_then(Json::as_str), Some("shutdown"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_before_first_scan_degrades_gracefully() {
        let dir = tree("coldstatus", &[("a.c", BUGGY)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        // No scan has ever run: every histogram is empty. The reply must
        // be well-formed (null percentiles, not NaN), never a panic.
        let (reply, shutdown) = eng.handle_line("{\"op\":\"status\"}", 1);
        assert!(!shutdown);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("warm").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply.get("schema_version").and_then(Json::as_i64),
            Some(vc_obs::METRICS_SCHEMA_VERSION)
        );
        assert!(reply.get("uptime_ms").and_then(Json::as_i64).unwrap() >= 0);
        let scan_ops = reply.get("ops").and_then(|o| o.get("scan")).unwrap();
        assert_eq!(scan_ops.get("count").and_then(Json::as_i64), Some(0));
        for pct in ["p50_us", "p95_us", "p99_us"] {
            assert_eq!(scan_ops.get(pct), Some(&Json::Null), "{pct} must be null");
        }
        // The status op itself already has one sample, so its percentiles
        // will be live on the *next* status. The text must never say NaN.
        assert!(!reply.to_string().contains("NaN"));
        // Funnel balance holds with only a status request processed.
        let reg = &eng.obs.registry;
        assert_eq!(
            reg.counter(vc_obs::names::SERVE_REQUESTS),
            reg.counter(vc_obs::names::SERVE_REPLIES)
                + reg.counter(vc_obs::names::SERVE_SHED)
                + reg.counter(vc_obs::names::SERVE_ERRORS)
                + reg.counter(vc_obs::names::SERVE_QUARANTINED)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_ids_are_monotonic_and_outcomes_partition_requests() {
        let dir = tree("traceid", &[("a.c", BUGGY)]);
        let mut eng = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        eng.panic_seqs.insert(3);
        let lines = [
            "{\"op\":\"scan\"}",
            "not json",
            "{\"op\":\"scan\"}", // panics (seq 3)
            "{\"op\":\"status\"}",
        ];
        let mut trace_ids = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let (reply, _) = eng.handle_line(line, i as u64 + 1);
            trace_ids.push(reply.get("trace_id").and_then(Json::as_i64).unwrap());
        }
        assert_eq!(trace_ids, vec![1, 2, 3, 4], "every reply, every outcome");
        let reg = &eng.obs.registry;
        assert_eq!(reg.counter(vc_obs::names::SERVE_REQUESTS), 4);
        assert_eq!(reg.counter(vc_obs::names::SERVE_REPLIES), 2); // scan + status
        assert_eq!(reg.counter(vc_obs::names::SERVE_ERRORS), 1); // bad JSON
        assert_eq!(reg.counter(vc_obs::names::SERVE_QUARANTINED), 1); // panic
        assert_eq!(
            reg.gauge(vc_obs::names::SERVE_TRACE_ID),
            Some(4.0),
            "gauge tracks the last assigned id"
        );
        // Latency histograms exist for the ops that ran.
        assert_eq!(
            reg.histogram(&vc_obs::names::serve_latency("scan")).count,
            2
        );
        assert_eq!(
            reg.histogram(&vc_obs::names::serve_latency("status")).count,
            1
        );
        // Every emitted serve metric name is registered.
        let snap = reg.snapshot();
        for (name, _) in snap.counters.iter() {
            assert!(vc_obs::names::is_known(name), "stray counter {name}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_keeps_warm_replies_byte_identical_and_flushes_files() {
        let dir = tree("telemetry", &[("a.c", BUGGY), ("b.c", CLEAN)]);
        let trace_path = dir.join("serve.trace.json");
        let metrics_path = dir.join("serve.metrics.json");
        let log_path = dir.join("serve.eventlog");
        let engine = ServeEngine::new(
            &dir,
            ServeConfig {
                trace: Some(trace_path.clone()),
                metrics_json: Some(metrics_path.clone()),
                event_log: Some(log_path.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let input = io::Cursor::new(
            b"{\"op\":\"scan\"}\n{\"op\":\"scan\"}\n{\"op\":\"shutdown\"}\n".to_vec(),
        );
        let out = SharedBuf::default();
        assert_eq!(run_daemon(engine, input, out.clone()), 0);

        // Warm reply bytes (csv + report) match a cold scan of the tree
        // even with full telemetry enabled.
        let text = out.text();
        let warm = vc_obs::json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));
        let cold = cold_canonical(&dir, &Options::paper());
        let cold_text = String::from_utf8(cold).unwrap();
        let warm_csv = warm.get("csv").and_then(Json::as_str).unwrap();
        assert!(
            cold_text.starts_with(warm_csv),
            "warm csv must be a byte-exact prefix of the cold canonical bytes"
        );

        // The flushed metrics export carries the batch schema.
        let metrics = vc_obs::json::parse(&fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(
            metrics.get("schema_version").and_then(Json::as_i64),
            Some(vc_obs::METRICS_SCHEMA_VERSION)
        );
        assert_eq!(
            metrics.get("env").and_then(Json::as_str),
            Some(vc_obs::env_fingerprint().as_str())
        );
        assert!(metrics
            .get("histograms")
            .and_then(|h| h.get("serve.latency.scan"))
            .is_some());

        // The Chrome trace contains the request span tree.
        let trace_text = fs::read_to_string(&trace_path).unwrap();
        for span in ["serve.request", "serve.parse", "serve.dirty_closure"] {
            assert!(trace_text.contains(span), "trace must contain {span}");
        }

        // The event log has one record per request, trace ids monotonic.
        let events = crate::eventlog::read_events(&log_path);
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(events[0].op, "scan");
        assert!(events[0].rebuilt && !events[1].rebuilt);
        assert_eq!(events[2].op, "shutdown");
        assert!(events[0].funnel.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_loop_eof_is_graceful() {
        let dir = tree("eof", &[("a.c", CLEAN)]);
        let engine = ServeEngine::new(&dir, ServeConfig::default()).unwrap();
        let input = io::Cursor::new(b"{\"op\":\"scan\"}\n".to_vec());
        assert_eq!(run_daemon(engine, input, SharedBuf::default()), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_flushes_snapshot_with_current_findings() {
        let dir = tree("flush", &[("a.c", BUGGY)]);
        let snap = dir.join("serve.snap");
        let engine = ServeEngine::new(
            &dir,
            ServeConfig {
                snapshot: Some(snap.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let input = io::Cursor::new(b"{\"op\":\"scan\"}\n{\"op\":\"shutdown\"}\n".to_vec());
        assert_eq!(run_daemon(engine, input, SharedBuf::default()), 0);
        let store = SnapshotStore::load(&snap);
        assert!(!store.findings.is_empty(), "flush persisted the findings");
        let _ = fs::remove_dir_all(&dir);
    }
}
