//! Familiarity-based ranking (§6 of the paper).
//!
//! Each surviving candidate is attributed to the developer who *introduced*
//! the unused-ness — the author of the first overwriting definition when one
//! exists (Fig. 8: the bug appears when author 2 commits line 239), or the
//! author of the definition itself for never-read values. That author is
//! scored with the DOK model against the defining file; candidates whose
//! responsible authors are *least* familiar rank first, since unfamiliar
//! developers are the ones most likely to have intercepted a data flow they
//! did not know about (§6).

use vc_familiarity::{
    DokModel,
    EaModel,
    FactorMask,
    Metrics, //
};
use vc_ir::Program;
use vc_vcs::{
    AuthorId,
    Repository, //
};

use crate::authorship::Attributed;

/// Which familiarity model drives the ranking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FamiliarityModel {
    /// The degree-of-knowledge model (§6, the paper's choice).
    Dok(DokModel),
    /// The EA expertise model (§9.2's alternative): no developer
    /// participation needed, commit-kind weighted.
    Ea(EaModel),
}

/// Ranking configuration.
#[derive(Clone, Copy, Debug)]
pub struct RankConfig {
    /// Rank by familiarity; when false, detection order is kept
    /// (the "w/o Familiarity" ablation of Table 6).
    pub enabled: bool,
    /// Which DOK factors participate (Table 6: w/o AC, w/o DL, w/o FA).
    /// Ignored by the EA model.
    pub mask: FactorMask,
    /// The familiarity model.
    pub model: FamiliarityModel,
}

impl Default for RankConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            mask: FactorMask::ALL,
            model: FamiliarityModel::Dok(DokModel::PAPER),
        }
    }
}

impl RankConfig {
    /// DOK ranking with explicit weights.
    pub fn dok(model: DokModel) -> RankConfig {
        RankConfig {
            model: FamiliarityModel::Dok(model),
            ..RankConfig::default()
        }
    }

    /// EA ranking (§9.2).
    pub fn ea() -> RankConfig {
        RankConfig {
            model: FamiliarityModel::Ea(EaModel::default()),
            ..RankConfig::default()
        }
    }
}

/// A ranked finding.
#[derive(Clone, Debug)]
pub struct Ranked {
    /// The attributed candidate.
    pub item: Attributed,
    /// Familiarity score of the responsible author (lower = less familiar =
    /// higher priority). `None` when blame failed or the model produced a
    /// NaN score (counted as `rank.familiarity_nan`); such items sort last.
    pub familiarity: Option<f64>,
    /// The scored author.
    pub author: Option<AuthorId>,
}

/// The developer responsible for the unused definition: the author of the
/// first overwriting definition when the value was overwritten, otherwise
/// the author of the definition line itself.
fn responsible_author(prog: &Program, repo: &Repository, item: &Attributed) -> Option<AuthorId> {
    for span in &item.candidate.overwriters {
        if span.is_synthetic() {
            continue;
        }
        let file = prog.source.name(span.file);
        if let Some(a) = repo.blame_author(file, span.line()) {
            return Some(a);
        }
    }
    item.def_author
}

/// Scores and sorts candidates by ascending familiarity.
///
/// The sort is stable: equal scores keep detection order, so re-running the
/// pipeline yields identical reports.
pub fn rank(
    prog: &Program,
    repo: &Repository,
    config: &RankConfig,
    items: Vec<Attributed>,
) -> Vec<Ranked> {
    let mut out: Vec<Ranked> = items
        .into_iter()
        .map(|item| {
            let author = responsible_author(prog, repo, &item);
            let familiarity = author.and_then(|a| {
                let file = prog.source.name(item.candidate.span.file);
                let score = match &config.model {
                    FamiliarityModel::Dok(model) => {
                        let m = Metrics::compute(repo, file, a);
                        model.score_masked(&m, config.mask)
                    }
                    FamiliarityModel::Ea(model) => model.score(repo, file, a),
                };
                if score.is_nan() {
                    // Pathological weights (e.g. a fitted model fed
                    // degenerate data) can produce NaN; comparing NaN as
                    // `Equal` would scramble the sort, so treat the score
                    // as unknown — such items sort last, like blame
                    // failures.
                    vc_obs::counter_inc(vc_obs::names::RANK_FAMILIARITY_NAN);
                    return None;
                }
                Some(score)
            });
            if let Some(f) = familiarity {
                // Scores are recorded as milli-units so the integer
                // histogram keeps three decimal places; negative scores
                // (possible under ablated factor masks) floor at zero.
                vc_obs::observe(
                    vc_obs::names::RANK_DOK_SCORE_MILLI,
                    (f.max(0.0) * 1000.0).round() as u64,
                );
            }
            Ranked {
                item,
                familiarity,
                author,
            }
        })
        .collect();
    if config.enabled {
        out.sort_by(|a, b| match (a.familiarity, b.familiarity) {
            // Scores are NaN-free by construction (NaN maps to `None`
            // above), so `total_cmp` only serves as a belt-and-braces
            // total order here.
            (Some(x), Some(y)) => x.total_cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        authorship::AuthorshipCtx,
        detect::{
            detect_program,
            DetectConfig, //
        },
    };
    use vc_vcs::FileWrite;

    #[test]
    fn ranking_is_a_permutation_and_sorted() {
        // Two files: one authored by a newcomer (1 commit), one by a veteran
        // with many commits. The newcomer's finding must rank first.
        let src_a = "void fa(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n";
        let src_b = "void fb(void) {\nint y = 1;\ny = 2;\nuse(y);\n}\n";
        let prog = Program::build(&[("vet.c", src_a), ("new.c", src_b)], &[]).unwrap();
        let mut repo = Repository::new();
        let vet = repo.add_author("veteran");
        let newbie = repo.add_author("newcomer");
        repo.commit(
            vet,
            1,
            "init vet",
            vec![FileWrite {
                path: "vet.c".into(),
                content: src_a.into(),
            }],
        );
        // Many veteran deliveries to vet.c.
        for i in 0..20 {
            repo.commit(
                vet,
                2 + i,
                "work",
                vec![FileWrite {
                    path: "vet.c".into(),
                    content: format!("{src_a}// rev {i}\n"),
                }],
            );
        }
        repo.commit(
            newbie,
            100,
            "first contribution",
            vec![FileWrite {
                path: "new.c".into(),
                content: src_b.into(),
            }],
        );

        let cands = detect_program(&prog, DetectConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&cands);
        let n = attributed.len();
        assert_eq!(n, 2);
        let ranked = rank(&prog, &repo, &RankConfig::default(), attributed);
        assert_eq!(ranked.len(), n, "ranking must be a permutation");
        assert_eq!(ranked[0].author, Some(newbie), "least familiar first");
        let f0 = ranked[0].familiarity.unwrap();
        let f1 = ranked[1].familiarity.unwrap();
        assert!(f0 <= f1);
    }

    #[test]
    fn nan_scores_sort_last_and_are_counted() {
        // A pathologically fitted model (NaN intercept) scores every author
        // as NaN. Those scores must degrade to `None` familiarity (sorting
        // last, like blame failures), not silently scramble the order.
        let src_a = "void fa(void) {\nint x = 1;\nx = 2;\nuse(x);\n}\n";
        let src_b = "void fb(void) {\nint y = 1;\ny = 2;\nuse(y);\n}\n";
        let prog = Program::build(&[("a.c", src_a), ("b.c", src_b)], &[]).unwrap();
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let other = repo.add_author("other");
        repo.commit(
            dev,
            1,
            "init",
            vec![
                FileWrite {
                    path: "a.c".into(),
                    content: src_a.into(),
                },
                FileWrite {
                    path: "b.c".into(),
                    content: src_b.into(),
                },
            ],
        );
        // `other` rewrites only a.c's overwriting line, so a.c's finding is
        // cross-scope and ranked against a real history.
        repo.commit(
            other,
            2,
            "rework",
            vec![FileWrite {
                path: "a.c".into(),
                content: src_a.replace("x = 2;", "x = 2; ").into(),
            }],
        );

        let cands = detect_program(&prog, DetectConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&cands);
        assert_eq!(attributed.len(), 2);
        let order: Vec<String> = attributed
            .iter()
            .map(|a| a.candidate.var_name.clone())
            .collect();

        let bad = vc_familiarity::DokModel {
            alpha0: f64::NAN,
            ..vc_familiarity::DokModel::PAPER
        };
        let obs = vc_obs::ObsSession::new();
        let _g = obs.install();
        let ranked = rank(&prog, &repo, &RankConfig::dok(bad), attributed);
        assert_eq!(ranked.len(), 2, "ranking must stay a permutation");
        assert!(
            ranked.iter().all(|r| r.familiarity.is_none()),
            "NaN scores degrade to None"
        );
        // All-None comparisons are Equal, so the stable sort keeps
        // detection order instead of scrambling it.
        let ranked_order: Vec<String> = ranked
            .iter()
            .map(|r| r.item.candidate.var_name.clone())
            .collect();
        assert_eq!(order, ranked_order);
        assert_eq!(obs.registry.counter(vc_obs::names::RANK_FAMILIARITY_NAN), 2);
    }

    #[test]
    fn disabled_ranking_keeps_detection_order() {
        let src = "void f(void) {\nint a = 1;\na = 2;\nint b = 3;\nb = 4;\nuse(a);\nuse(b);\n}\n";
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        repo.commit(
            dev,
            1,
            "init",
            vec![FileWrite {
                path: "a.c".into(),
                content: src.into(),
            }],
        );
        let cands = detect_program(&prog, DetectConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&cands);
        let order: Vec<String> = attributed
            .iter()
            .map(|a| a.candidate.var_name.clone())
            .collect();
        let config = RankConfig {
            enabled: false,
            ..Default::default()
        };
        let ranked = rank(&prog, &repo, &config, attributed);
        let ranked_order: Vec<String> = ranked
            .iter()
            .map(|r| r.item.candidate.var_name.clone())
            .collect();
        assert_eq!(order, ranked_order);
    }
}
