//! False-positive pruning — the four patterns of §5, applied as a pipeline
//! in the order of Fig. 2 / Table 4: configuration dependency → cursor →
//! unused hints → peer definitions. A candidate matching several patterns is
//! counted against the first one that fires, exactly as the paper's prune
//! accounting works ("some false positives may match multiple patterns but
//! are pruned by the earlier stage").

use std::collections::{
    HashMap,
    HashSet, //
};

use vc_dataflow::dead_stores;
use vc_ir::{
    cfg::Cfg,
    ir::{
        Inst,
        StoreInfo, //
    },
    types::Type,
    Program,
    VarKey, //
};

use crate::{
    authorship::Attributed,
    candidate::Scenario, //
};

/// Which pruner removed a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PruneReason {
    /// §5.1 — a use exists under a preprocessor guard in the same function.
    ConfigDependency,
    /// §5.2 — the definition is a cursor (repeated constant self-increment).
    Cursor,
    /// §5.3 — the developer marked the definition as intentionally unused.
    UnusedHint,
    /// §5.4 — most peer definitions are also unused.
    PeerDefinition,
}

impl PruneReason {
    /// Stable snake-case label, used in metric names
    /// (`funnel.pruned.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            PruneReason::ConfigDependency => "config_dependency",
            PruneReason::Cursor => "cursor",
            PruneReason::UnusedHint => "unused_hint",
            PruneReason::PeerDefinition => "peer_definition",
        }
    }

    /// Every reason, in pipeline order.
    pub const ALL: [PruneReason; 4] = [
        PruneReason::ConfigDependency,
        PruneReason::Cursor,
        PruneReason::UnusedHint,
        PruneReason::PeerDefinition,
    ];
}

/// Pruning configuration; every pattern can be toggled for ablations.
#[derive(Clone, Copy, Debug)]
pub struct PruneConfig {
    /// Enable §5.1.
    pub config_dependency: bool,
    /// Enable §5.2.
    pub cursor: bool,
    /// Enable §5.3.
    pub unused_hints: bool,
    /// Enable §5.4.
    pub peer_definitions: bool,
    /// Peer pruning: minimum number of peer occurrences (the paper's
    /// "≥ 10 peer call sites"; the threshold itself counts).
    pub peer_min_occurrences: usize,
    /// Peer pruning: minimum unused fraction ("over half").
    pub peer_unused_ratio: f64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            config_dependency: true,
            cursor: true,
            unused_hints: true,
            peer_definitions: true,
            peer_min_occurrences: 10,
            peer_unused_ratio: 0.5,
        }
    }
}

/// The outcome of the pruning pipeline.
#[derive(Clone, Debug, Default)]
pub struct PruneOutcome {
    /// Candidates that survived every pruner.
    pub kept: Vec<Attributed>,
    /// Pruned candidates with the (first) reason that fired.
    pub pruned: Vec<(Attributed, PruneReason)>,
}

impl PruneOutcome {
    /// Number pruned by a particular pattern.
    pub fn count(&self, reason: PruneReason) -> usize {
        self.pruned.iter().filter(|(_, r)| *r == reason).count()
    }

    /// Total number pruned.
    pub fn total_pruned(&self) -> usize {
        self.pruned.len()
    }
}

/// Program-wide usage statistics backing peer-definition pruning:
/// per callee, how many call sites exist and how many ignore the result;
/// per function signature and parameter index, how many functions leave the
/// parameter unused.
#[derive(Clone, Debug, Default)]
pub struct PeerStats {
    /// callee name → (call sites, sites whose result is unused).
    pub retval: HashMap<String, (usize, usize)>,
    /// (signature, param index) → (functions with that signature, functions
    /// whose parameter at the index is unused).
    pub params: HashMap<(Vec<Type>, usize), (usize, usize)>,
}

impl PeerStats {
    /// Computes peer statistics for a program.
    ///
    /// A call site's return value counts as unused when the store of the
    /// result (explicit or synthetic) is a dead store; call sites whose
    /// result feeds an expression directly have no such store and count as
    /// used. A parameter counts as unused when its entry definition is dead.
    pub fn compute(prog: &Program) -> PeerStats {
        Self::compute_filtered(prog, None, None)
    }

    /// Computes peer statistics restricted to the given callees and
    /// parameter signatures — the incremental analyzer's fast path (§8.6):
    /// only functions that call a relevant callee or share a relevant
    /// signature need their dead stores computed.
    pub fn compute_scoped(
        prog: &Program,
        callees: &std::collections::HashSet<String>,
        sigs: &std::collections::HashSet<Vec<Type>>,
    ) -> PeerStats {
        Self::compute_filtered(prog, Some(callees), Some(sigs))
    }

    fn compute_filtered(
        prog: &Program,
        callees: Option<&std::collections::HashSet<String>>,
        sigs: Option<&std::collections::HashSet<Vec<Type>>>,
    ) -> PeerStats {
        let mut stats = PeerStats::default();
        // Count call sites per callee (an index scan; no analysis).
        for (callee, sites) in prog.call_index() {
            if callees.map(|cs| cs.contains(&callee)).unwrap_or(true) {
                stats.retval.entry(callee).or_default().0 = sites.len();
            }
        }
        for f in &prog.funcs {
            let sig: Vec<Type> = f.params.iter().map(|p| p.ty.clone()).collect();
            let sig_relevant = sigs.map(|ss| ss.contains(&sig)).unwrap_or(true);
            let calls_relevant = match callees {
                None => true,
                Some(cs) => f.blocks.iter().any(|bb| {
                    bb.insts.iter().any(|inst| {
                        matches!(
                            inst,
                            Inst::Call {
                                callee: vc_ir::ir::Callee::Direct(name),
                                ..
                            } if cs.contains(name)
                        )
                    })
                }),
            };
            if !sig_relevant && !calls_relevant {
                continue;
            }
            Self::accumulate(&mut stats, f, &sig, sig_relevant, calls_relevant, callees);
        }
        stats
    }

    fn accumulate(
        stats: &mut PeerStats,
        f: &vc_ir::Function,
        sig: &[Type],
        sig_relevant: bool,
        calls_relevant: bool,
        callees: Option<&std::collections::HashSet<String>>,
    ) {
        let cfg = Cfg::new(f);
        let dead = dead_stores(f, &cfg);
        let dead_keys: HashSet<(u32, usize)> =
            dead.iter().map(|d| (d.block.0, d.inst_idx)).collect();
        // Dead retval stores.
        if calls_relevant {
            for (bid, bb) in f.iter_blocks() {
                for (idx, inst) in bb.insts.iter().enumerate() {
                    if let Inst::Store {
                        info: StoreInfo::RetVal { callee, .. },
                        ..
                    } = inst
                    {
                        let wanted = callees.map(|cs| cs.contains(callee)).unwrap_or(true);
                        if wanted && dead_keys.contains(&(bid.0, idx)) {
                            stats.retval.entry(callee.clone()).or_default().1 += 1;
                        }
                    }
                }
            }
        }
        // Parameter usage per signature.
        if sig_relevant {
            for (i, p) in f.params.iter().enumerate() {
                let entry = stats.params.entry((sig.to_vec(), i)).or_default();
                entry.0 += 1;
                let param_dead = dead.iter().any(|d| {
                    d.key == VarKey::Local(p.local) && matches!(d.info, StoreInfo::ParamInit { .. })
                });
                if param_dead {
                    entry.1 += 1;
                }
            }
        }
    }
}

/// Runs the pruning pipeline over attributed candidates.
pub fn prune(
    prog: &Program,
    config: &PruneConfig,
    peers: &PeerStats,
    items: Vec<Attributed>,
) -> PruneOutcome {
    let mut out = PruneOutcome::default();
    for item in items {
        match prune_one(prog, config, peers, &item) {
            Some(reason) => out.pruned.push((item, reason)),
            None => out.kept.push(item),
        }
    }
    out
}

/// Applies the pipeline to one candidate; returns the first reason that
/// fires, or `None` to keep it.
fn prune_one(
    prog: &Program,
    config: &PruneConfig,
    peers: &PeerStats,
    item: &Attributed,
) -> Option<PruneReason> {
    let cand = &item.candidate;
    let f = prog.func(cand.func);

    // §5.1 Configuration dependency: a use of this variable appears under a
    // preprocessor directive in the same function (possibly compiled out).
    if config.config_dependency {
        let base_name = cand.var_name.split('#').next().unwrap_or(&cand.var_name);
        if f.guarded_mentions.contains(base_name) {
            return Some(PruneReason::ConfigDependency);
        }
    }

    // §5.2 Cursor: the definition is a constant self-offset and every
    // self-offset of this variable in the function uses the same constant.
    if config.cursor {
        if let StoreInfo::SelfOffset { delta } = cand.info {
            let mut all_same = true;
            for bb in &f.blocks {
                for inst in &bb.insts {
                    if let Inst::Store {
                        place,
                        info: StoreInfo::SelfOffset { delta: d },
                        ..
                    } = inst
                    {
                        if place.var_key() == Some(cand.key) && *d != delta {
                            all_same = false;
                        }
                    }
                }
            }
            if all_same {
                return Some(PruneReason::Cursor);
            }
        }
    }

    // §5.3 Unused hints: attributes, or the keyword `unused` on the
    // definition's source line.
    if config.unused_hints {
        if cand.unused_attr {
            return Some(PruneReason::UnusedHint);
        }
        if let Some(file) = prog.source.file(cand.span.file) {
            if let Some(line) = file
                .content
                .lines()
                .nth((cand.span.line() as usize).saturating_sub(1))
            {
                if line.to_ascii_lowercase().contains("unused") {
                    return Some(PruneReason::UnusedHint);
                }
            }
        }
    }

    // §5.4 Peer definitions: if most peers are also unused, developers
    // evidently do not care about this value.
    if config.peer_definitions {
        match &cand.scenario {
            Scenario::RetVal { callees } => {
                for callee in callees {
                    if let Some((total, unused)) = peers.retval.get(callee) {
                        if *total >= config.peer_min_occurrences
                            && (*unused as f64) > (*total as f64) * config.peer_unused_ratio
                        {
                            return Some(PruneReason::PeerDefinition);
                        }
                    }
                }
            }
            Scenario::Param { index } => {
                let sig: Vec<Type> = f.params.iter().map(|p| p.ty.clone()).collect();
                if let Some((total, unused)) = peers.params.get(&(sig, *index)) {
                    if *total >= config.peer_min_occurrences
                        && (*unused as f64) > (*total as f64) * config.peer_unused_ratio
                    {
                        return Some(PruneReason::PeerDefinition);
                    }
                }
            }
            Scenario::Overwritten => {}
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        authorship::AuthorshipCtx,
        detect::{
            detect_program,
            DetectConfig, //
        },
    };
    use vc_vcs::{
        FileWrite,
        Repository, //
    };

    fn run_prune(src: &str) -> (PruneOutcome, Program) {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let mut repo = Repository::new();
        let a = repo.add_author("solo");
        repo.commit(
            a,
            1,
            "init",
            vec![FileWrite {
                path: "a.c".into(),
                content: src.into(),
            }],
        );
        let cands = detect_program(&prog, DetectConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&cands);
        let peers = PeerStats::compute(&prog);
        let outcome = prune(&prog, &PruneConfig::default(), &peers, attributed);
        (outcome, prog)
    }

    #[test]
    fn config_dependency_prunes_guarded_use() {
        let src = "void f(void) {\nint host = 1;\n#ifdef USE_ICMP\nlookup(host);\n#endif\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.count(PruneReason::ConfigDependency), 1);
        assert!(out.kept.iter().all(|k| k.candidate.var_name != "host"));
    }

    #[test]
    fn cursor_increment_is_pruned() {
        // The final `o++` writes a value never read: a cursor, not a bug.
        let src = "void f(char *o, int n) {\nfor (int i = 0; i < n; i = i + 1) {\n*o++ = '_';\n}\n*o++ = '\\0';\n}\n";
        let (out, _) = run_prune(src);
        assert!(out.count(PruneReason::Cursor) >= 1, "{:?}", out.pruned);
    }

    #[test]
    fn unused_attr_is_pruned_as_hint() {
        let src = "int f(int force [[maybe_unused]]) {\nreturn 0;\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.count(PruneReason::UnusedHint), 1);
    }

    #[test]
    fn unused_keyword_on_line_is_pruned_as_hint() {
        let src = "void f(void) {\nint x_unused = compute();\nx_unused = 0;\nuse(x_unused);\n}\nint compute(void);\n";
        let (out, _) = run_prune(src);
        assert!(out.count(PruneReason::UnusedHint) >= 1, "{:?}", out.pruned);
    }

    #[test]
    fn peer_definition_prunes_commonly_ignored_retval() {
        // 12 call sites ignore log_msg's result; one assigns it but never
        // reads it. All are peers; the unused fraction is > 50%.
        let mut src = String::from("int log_msg(char *m);\n");
        for i in 0..12 {
            src.push_str(&format!("void f{i}(void) {{\nlog_msg(\"x\");\n}}\n"));
        }
        src.push_str("void g(void) {\nint r = log_msg(\"y\");\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.count(PruneReason::PeerDefinition) >= 12,
            "pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.var_name.clone(), *r))
                .collect::<Vec<_>>()
        );
        assert!(out.kept.iter().all(|k| k.candidate.func_name != "g"));
    }

    #[test]
    fn rarely_ignored_retval_survives_peer_pruning() {
        // Only 3 call sites: below the "≥ 10 occurrences" threshold.
        let mut src = String::from("int read_cfg(void);\n");
        src.push_str("void a(void) {\nint x = read_cfg();\nuse(x);\n}\n");
        src.push_str("void b(void) {\nint y = read_cfg();\nuse(y);\n}\n");
        src.push_str("void g(void) {\nint r = read_cfg();\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert_eq!(out.count(PruneReason::PeerDefinition), 0);
        assert!(out.kept.iter().any(|k| k.candidate.func_name == "g"));
    }

    #[test]
    fn peer_pruning_fires_at_exactly_ten_retval_sites() {
        // 9 call sites ignore the result + 1 assigns-but-never-reads:
        // exactly 10 occurrences, all unused. The paper's "≥ 10 peer call
        // sites" threshold is inclusive, so pruning must fire here.
        let mut src = String::from("int log_ev(char *m);\n");
        for i in 0..9 {
            src.push_str(&format!("void f{i}(void) {{\nlog_ev(\"x\");\n}}\n"));
        }
        src.push_str("void g(void) {\nint r = log_ev(\"y\");\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.count(PruneReason::PeerDefinition) >= 1,
            "threshold is inclusive; pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.var_name.clone(), *r))
                .collect::<Vec<_>>()
        );
        assert!(out.kept.iter().all(|k| k.candidate.func_name != "g"));
    }

    #[test]
    fn peer_pruning_stays_quiet_at_nine_retval_sites() {
        // One fewer site than the boundary: the candidate must survive.
        let mut src = String::from("int log_ev(char *m);\n");
        for i in 0..8 {
            src.push_str(&format!("void f{i}(void) {{\nlog_ev(\"x\");\n}}\n"));
        }
        src.push_str("void g(void) {\nint r = log_ev(\"y\");\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(out.kept.iter().any(|k| k.candidate.func_name == "g"));
    }

    #[test]
    fn peer_pruning_fires_at_exactly_ten_param_peers() {
        // 9 functions with signature (int) never touch the parameter + 1
        // overwrites it before any read: 10 peers, all with a dead entry
        // definition, so the boundary fires for the param scenario too.
        let mut src = String::new();
        for i in 0..9 {
            src.push_str(&format!("void p{i}(int v) {{\n}}\n"));
        }
        src.push_str("void q(int v) {\nv = 5;\nuse(v);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.pruned
                .iter()
                .any(|(a, r)| a.candidate.func_name == "q" && *r == PruneReason::PeerDefinition),
            "pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.func_name.clone(), *r))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn peer_pruning_stays_quiet_at_nine_param_peers() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("void p{i}(int v) {{\n}}\n"));
        }
        src.push_str("void q(int v) {\nv = 5;\nuse(v);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.kept.iter().any(|k| k.candidate.func_name == "q"),
            "below the boundary the finding survives; pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.func_name.clone(), *r))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn pipeline_counts_first_matching_stage() {
        // Guarded use AND unused keyword: config dependency fires first.
        let src =
            "void f(void) {\nint flag_unused = 1;\n#ifdef DBG\ncheck(flag_unused);\n#endif\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.count(PruneReason::ConfigDependency), 1);
        assert_eq!(out.count(PruneReason::UnusedHint), 0);
    }

    #[test]
    fn clean_bug_candidate_is_kept() {
        let src = "int get_permset(void);\nint calc_mask(void);\nvoid f(void) {\nint ret = get_permset();\nret = calc_mask();\nif (ret) { handle(); }\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.total_pruned(), 0, "{:?}", out.pruned);
        assert_eq!(out.kept.len(), 1);
    }
}
