//! False-positive pruning — the four patterns of §5, applied as a pipeline
//! in the order of Fig. 2 / Table 4: configuration dependency → cursor →
//! unused hints → peer definitions. A candidate matching several patterns is
//! counted against the first one that fires, exactly as the paper's prune
//! accounting works ("some false positives may match multiple patterns but
//! are pruned by the earlier stage").

use std::collections::{
    HashMap,
    HashSet, //
};

use vc_dataflow::summary::{
    SelfDelta,
    SigId,
    SigInterner,
    Summaries, //
};
use vc_ir::{
    ir::{
        Inst,
        StoreInfo, //
    },
    FileId,
    FuncId,
    Program,
    VarKey, //
};

use crate::{
    authorship::Attributed,
    candidate::Scenario, //
};

/// Which pruner removed a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PruneReason {
    /// §5.1 — a use exists under a preprocessor guard in the same function.
    ConfigDependency,
    /// §5.2 — the definition is a cursor (repeated constant self-increment).
    Cursor,
    /// §5.3 — the developer marked the definition as intentionally unused.
    UnusedHint,
    /// §5.4 — most peer definitions are also unused.
    PeerDefinition,
}

impl PruneReason {
    /// Stable snake-case label, used in metric names
    /// (`funnel.pruned.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            PruneReason::ConfigDependency => "config_dependency",
            PruneReason::Cursor => "cursor",
            PruneReason::UnusedHint => "unused_hint",
            PruneReason::PeerDefinition => "peer_definition",
        }
    }

    /// Every reason, in pipeline order.
    pub const ALL: [PruneReason; 4] = [
        PruneReason::ConfigDependency,
        PruneReason::Cursor,
        PruneReason::UnusedHint,
        PruneReason::PeerDefinition,
    ];
}

/// Pruning configuration; every pattern can be toggled for ablations.
#[derive(Clone, Copy, Debug)]
pub struct PruneConfig {
    /// Enable §5.1.
    pub config_dependency: bool,
    /// Enable §5.2.
    pub cursor: bool,
    /// Enable §5.3.
    pub unused_hints: bool,
    /// Enable §5.4.
    pub peer_definitions: bool,
    /// Peer pruning: minimum number of peer occurrences (the paper's
    /// "≥ 10 peer call sites"; the threshold itself counts).
    pub peer_min_occurrences: usize,
    /// Peer pruning: minimum unused fraction ("over half").
    pub peer_unused_ratio: f64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            config_dependency: true,
            cursor: true,
            unused_hints: true,
            peer_definitions: true,
            peer_min_occurrences: 10,
            peer_unused_ratio: 0.5,
        }
    }
}

/// The outcome of the pruning pipeline.
#[derive(Clone, Debug, Default)]
pub struct PruneOutcome {
    /// Candidates that survived every pruner.
    pub kept: Vec<Attributed>,
    /// Pruned candidates with the (first) reason that fired.
    pub pruned: Vec<(Attributed, PruneReason)>,
}

impl PruneOutcome {
    /// Number pruned by a particular pattern.
    pub fn count(&self, reason: PruneReason) -> usize {
        self.pruned.iter().filter(|(_, r)| *r == reason).count()
    }

    /// Total number pruned.
    pub fn total_pruned(&self) -> usize {
        self.pruned.len()
    }
}

/// The cross-scope questions a candidate set can ask of the peer
/// statistics: which callees' retval-ignore rates matter, and which
/// (interned) signatures' parameter-unuse rates matter. Redundant-summary
/// elimination drops every function that can answer neither question
/// before its summary is ever built.
#[derive(Clone, Debug, Default)]
pub struct PeerScope {
    /// Callees some candidate's RetVal scenario names.
    pub callees: HashSet<String>,
    /// Signatures some candidate's Param scenario belongs to.
    pub sigs: HashSet<SigId>,
}

impl PeerScope {
    /// The scope induced by a candidate set: the only peer questions the
    /// prune stage will ever ask about these items.
    pub fn from_items(interner: &SigInterner, items: &[Attributed]) -> PeerScope {
        let mut scope = PeerScope::default();
        for item in items {
            match &item.candidate.scenario {
                Scenario::RetVal { callees } => {
                    scope.callees.extend(callees.iter().cloned());
                }
                Scenario::Param { .. } => {
                    scope.sigs.insert(interner.sig_of(item.candidate.func));
                }
                Scenario::Overwritten => {}
            }
        }
        scope
    }
}

/// Program-wide usage statistics backing peer-definition pruning:
/// per callee, how many call sites exist and how many ignore the result;
/// per function signature and parameter index, how many functions leave the
/// parameter unused.
#[derive(Clone, Debug, Default)]
pub struct PeerStats {
    /// callee name → (call sites, sites whose result is unused).
    pub retval: HashMap<String, (usize, usize)>,
    /// (interned signature, param index) → (functions with that signature,
    /// functions whose parameter at the index is unused).
    pub params: HashMap<(SigId, usize), (usize, usize)>,
    /// The signature interner the `params` keys were minted from.
    sigs: SigInterner,
}

impl PeerStats {
    /// Computes peer statistics for a program, building summaries as
    /// needed into a throwaway store. Pipeline callers use
    /// [`PeerStats::compute_with`] to share the detect stage's summaries
    /// and scope the work to the surviving candidates.
    pub fn compute(prog: &Program) -> PeerStats {
        let mut summaries = Summaries::default();
        Self::compute_with(prog, SigInterner::new(prog), &mut summaries, None)
    }

    /// Computes peer statistics from shared per-function summaries.
    ///
    /// A call site's return value counts as unused when the store of the
    /// result (explicit or synthetic) is a dead store; call sites whose
    /// result feeds an expression directly have no such store and count as
    /// used. A parameter counts as unused when its entry definition is dead.
    ///
    /// With a [`PeerScope`], redundant-summary elimination applies: a
    /// function that neither calls a scoped callee nor shares a scoped
    /// signature cannot contribute to any peer question the candidate set
    /// will ask, so its summary is skipped entirely (counted as
    /// `summary.eliminated`). Cached summaries are reused (counted as
    /// `summary.reused`); missing ones are built on demand.
    pub fn compute_with(
        prog: &Program,
        sigs: SigInterner,
        summaries: &mut Summaries,
        scope: Option<&PeerScope>,
    ) -> PeerStats {
        let mut stats = PeerStats {
            retval: HashMap::new(),
            params: HashMap::new(),
            sigs,
        };
        // Count call sites per callee (an index scan; no analysis) and,
        // when scoped, collect the callers whose summaries can still
        // contribute retval-unused counts.
        let mut relevant_callers: HashSet<FuncId> = HashSet::new();
        for (callee, sites) in prog.call_index() {
            let wanted = scope.map(|s| s.callees.contains(callee)).unwrap_or(true);
            if wanted {
                if scope.is_some() {
                    relevant_callers.extend(sites.iter().map(|s| s.caller));
                }
                stats.retval.entry(callee.clone()).or_default().0 = sites.len();
            }
        }
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            let sig = stats.sigs.sig_of(fid);
            let (sig_relevant, calls_relevant) = match scope {
                None => (true, true),
                Some(s) => (s.sigs.contains(&sig), relevant_callers.contains(&fid)),
            };
            if !sig_relevant && !calls_relevant {
                // Redundant-summary elimination: no peer question this
                // candidate set asks can reach this function.
                vc_obs::counter_inc(vc_obs::names::SUMMARY_ELIMINATED);
                continue;
            }
            let summary = summaries.get_or_build(f, fid, sig);
            // Dead retval stores.
            if calls_relevant {
                for d in &summary.dead {
                    if let StoreInfo::RetVal { callee, .. } = &d.info {
                        let wanted = scope.map(|s| s.callees.contains(callee)).unwrap_or(true);
                        if wanted {
                            stats.retval.entry(callee.clone()).or_default().1 += 1;
                        }
                    }
                }
            }
            // Parameter usage per signature.
            if sig_relevant {
                for (i, p) in f.params.iter().enumerate() {
                    let entry = stats.params.entry((sig, i)).or_default();
                    entry.0 += 1;
                    let param_dead = summary.dead.iter().any(|d| {
                        d.key == VarKey::Local(p.local)
                            && matches!(d.info, StoreInfo::ParamInit { .. })
                    });
                    if param_dead {
                        entry.1 += 1;
                    }
                }
            }
        }
        stats
    }

    /// The interned signature of `fid` under the interner these stats were
    /// built with.
    pub fn sig_of(&self, fid: FuncId) -> SigId {
        self.sigs.sig_of(fid)
    }
}

/// Runs the pruning pipeline over attributed candidates, consulting the
/// shared per-function summaries (cursor facts) and a per-file line index
/// built lazily, once per file (unused hints).
pub fn prune(
    prog: &Program,
    config: &PruneConfig,
    peers: &PeerStats,
    summaries: &Summaries,
    items: Vec<Attributed>,
) -> PruneOutcome {
    let mut out = PruneOutcome::default();
    let mut lines: HashMap<FileId, Vec<&str>> = HashMap::new();
    for item in items {
        match prune_one(prog, config, peers, summaries, &mut lines, &item) {
            Some(reason) => out.pruned.push((item, reason)),
            None => out.kept.push(item),
        }
    }
    out
}

/// Applies the pipeline to one candidate; returns the first reason that
/// fires, or `None` to keep it.
fn prune_one<'p>(
    prog: &'p Program,
    config: &PruneConfig,
    peers: &PeerStats,
    summaries: &Summaries,
    lines: &mut HashMap<FileId, Vec<&'p str>>,
    item: &Attributed,
) -> Option<PruneReason> {
    let cand = &item.candidate;
    let f = prog.func(cand.func);

    // §5.1 Configuration dependency: a use of this variable appears under a
    // preprocessor directive in the same function (possibly compiled out).
    if config.config_dependency {
        let base_name = cand.var_name.split('#').next().unwrap_or(&cand.var_name);
        if f.guarded_mentions.contains(base_name) {
            return Some(PruneReason::ConfigDependency);
        }
    }

    // §5.2 Cursor: the definition is a constant self-offset and every
    // self-offset of this variable in the function uses the same constant.
    // The summary's per-key delta map answers this without rescanning the
    // instruction stream per candidate.
    if config.cursor {
        if let StoreInfo::SelfOffset { delta } = cand.info {
            let uniform = match summaries.get(cand.func) {
                Some(s) => matches!(s.self_offsets.get(&cand.key), Some(SelfDelta::Uniform(_))),
                // Defensive fallback when no summary reached the prune
                // stage for this function: the original inline scan.
                None => !f.blocks.iter().any(|bb| {
                    bb.insts.iter().any(|inst| {
                        matches!(
                            inst,
                            Inst::Store {
                                place,
                                info: StoreInfo::SelfOffset { delta: d },
                                ..
                            } if place.var_key() == Some(cand.key) && *d != delta
                        )
                    })
                }),
            };
            if uniform {
                return Some(PruneReason::Cursor);
            }
        }
    }

    // §5.3 Unused hints: attributes, or the keyword `unused` on the
    // definition's source line. Synthetic spans carry no real source line
    // (`line() == 0`) and must not be matched against any text.
    if config.unused_hints {
        if cand.unused_attr {
            return Some(PruneReason::UnusedHint);
        }
        let line_no = cand.span.line() as usize;
        if line_no > 0 {
            if let Some(file) = prog.source.file(cand.span.file) {
                let index = lines
                    .entry(cand.span.file)
                    .or_insert_with(|| file.content.lines().collect());
                if let Some(line) = index.get(line_no - 1) {
                    if line.to_ascii_lowercase().contains("unused") {
                        return Some(PruneReason::UnusedHint);
                    }
                }
            }
        }
    }

    // §5.4 Peer definitions: if most peers are also unused, developers
    // evidently do not care about this value.
    if config.peer_definitions {
        match &cand.scenario {
            Scenario::RetVal { callees } => {
                for callee in callees {
                    if let Some((total, unused)) = peers.retval.get(callee) {
                        if *total >= config.peer_min_occurrences
                            && (*unused as f64) > (*total as f64) * config.peer_unused_ratio
                        {
                            return Some(PruneReason::PeerDefinition);
                        }
                    }
                }
            }
            Scenario::Param { index } => {
                let sig = peers.sig_of(cand.func);
                if let Some((total, unused)) = peers.params.get(&(sig, *index)) {
                    if *total >= config.peer_min_occurrences
                        && (*unused as f64) > (*total as f64) * config.peer_unused_ratio
                    {
                        return Some(PruneReason::PeerDefinition);
                    }
                }
            }
            Scenario::Overwritten => {}
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        authorship::AuthorshipCtx,
        detect::{
            detect_program_hardened,
            DetectConfig, //
        },
        harden::HardenConfig,
    };
    use vc_vcs::{
        FileWrite,
        Repository, //
    };

    fn run_prune(src: &str) -> (PruneOutcome, Program) {
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let mut repo = Repository::new();
        let a = repo.add_author("solo");
        repo.commit(
            a,
            1,
            "init",
            vec![FileWrite {
                path: "a.c".into(),
                content: src.into(),
            }],
        );
        let out = detect_program_hardened(&prog, DetectConfig::default(), HardenConfig::default());
        let attributed = AuthorshipCtx::new(&prog, &repo).attribute_all(&out.candidates);
        let mut summaries = out.summaries;
        let peers = PeerStats::compute_with(&prog, SigInterner::new(&prog), &mut summaries, None);
        let outcome = prune(
            &prog,
            &PruneConfig::default(),
            &peers,
            &summaries,
            attributed,
        );
        (outcome, prog)
    }

    #[test]
    fn config_dependency_prunes_guarded_use() {
        let src = "void f(void) {\nint host = 1;\n#ifdef USE_ICMP\nlookup(host);\n#endif\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.count(PruneReason::ConfigDependency), 1);
        assert!(out.kept.iter().all(|k| k.candidate.var_name != "host"));
    }

    #[test]
    fn cursor_increment_is_pruned() {
        // The final `o++` writes a value never read: a cursor, not a bug.
        let src = "void f(char *o, int n) {\nfor (int i = 0; i < n; i = i + 1) {\n*o++ = '_';\n}\n*o++ = '\\0';\n}\n";
        let (out, _) = run_prune(src);
        assert!(out.count(PruneReason::Cursor) >= 1, "{:?}", out.pruned);
    }

    #[test]
    fn unused_attr_is_pruned_as_hint() {
        let src = "int f(int force [[maybe_unused]]) {\nreturn 0;\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.count(PruneReason::UnusedHint), 1);
    }

    #[test]
    fn unused_keyword_on_line_is_pruned_as_hint() {
        let src = "void f(void) {\nint x_unused = compute();\nx_unused = 0;\nuse(x_unused);\n}\nint compute(void);\n";
        let (out, _) = run_prune(src);
        assert!(out.count(PruneReason::UnusedHint) >= 1, "{:?}", out.pruned);
    }

    #[test]
    fn peer_definition_prunes_commonly_ignored_retval() {
        // 12 call sites ignore log_msg's result; one assigns it but never
        // reads it. All are peers; the unused fraction is > 50%.
        let mut src = String::from("int log_msg(char *m);\n");
        for i in 0..12 {
            src.push_str(&format!("void f{i}(void) {{\nlog_msg(\"x\");\n}}\n"));
        }
        src.push_str("void g(void) {\nint r = log_msg(\"y\");\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.count(PruneReason::PeerDefinition) >= 12,
            "pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.var_name.clone(), *r))
                .collect::<Vec<_>>()
        );
        assert!(out.kept.iter().all(|k| k.candidate.func_name != "g"));
    }

    #[test]
    fn rarely_ignored_retval_survives_peer_pruning() {
        // Only 3 call sites: below the "≥ 10 occurrences" threshold.
        let mut src = String::from("int read_cfg(void);\n");
        src.push_str("void a(void) {\nint x = read_cfg();\nuse(x);\n}\n");
        src.push_str("void b(void) {\nint y = read_cfg();\nuse(y);\n}\n");
        src.push_str("void g(void) {\nint r = read_cfg();\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert_eq!(out.count(PruneReason::PeerDefinition), 0);
        assert!(out.kept.iter().any(|k| k.candidate.func_name == "g"));
    }

    #[test]
    fn peer_pruning_fires_at_exactly_ten_retval_sites() {
        // 9 call sites ignore the result + 1 assigns-but-never-reads:
        // exactly 10 occurrences, all unused. The paper's "≥ 10 peer call
        // sites" threshold is inclusive, so pruning must fire here.
        let mut src = String::from("int log_ev(char *m);\n");
        for i in 0..9 {
            src.push_str(&format!("void f{i}(void) {{\nlog_ev(\"x\");\n}}\n"));
        }
        src.push_str("void g(void) {\nint r = log_ev(\"y\");\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.count(PruneReason::PeerDefinition) >= 1,
            "threshold is inclusive; pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.var_name.clone(), *r))
                .collect::<Vec<_>>()
        );
        assert!(out.kept.iter().all(|k| k.candidate.func_name != "g"));
    }

    #[test]
    fn peer_pruning_stays_quiet_at_nine_retval_sites() {
        // One fewer site than the boundary: the candidate must survive.
        let mut src = String::from("int log_ev(char *m);\n");
        for i in 0..8 {
            src.push_str(&format!("void f{i}(void) {{\nlog_ev(\"x\");\n}}\n"));
        }
        src.push_str("void g(void) {\nint r = log_ev(\"y\");\nr = 0;\nuse(r);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(out.kept.iter().any(|k| k.candidate.func_name == "g"));
    }

    #[test]
    fn peer_pruning_fires_at_exactly_ten_param_peers() {
        // 9 functions with signature (int) never touch the parameter + 1
        // overwrites it before any read: 10 peers, all with a dead entry
        // definition, so the boundary fires for the param scenario too.
        let mut src = String::new();
        for i in 0..9 {
            src.push_str(&format!("void p{i}(int v) {{\n}}\n"));
        }
        src.push_str("void q(int v) {\nv = 5;\nuse(v);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.pruned
                .iter()
                .any(|(a, r)| a.candidate.func_name == "q" && *r == PruneReason::PeerDefinition),
            "pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.func_name.clone(), *r))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn peer_pruning_stays_quiet_at_nine_param_peers() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("void p{i}(int v) {{\n}}\n"));
        }
        src.push_str("void q(int v) {\nv = 5;\nuse(v);\n}\n");
        let (out, _) = run_prune(&src);
        assert!(
            out.kept.iter().any(|k| k.candidate.func_name == "q"),
            "below the boundary the finding survives; pruned: {:?}",
            out.pruned
                .iter()
                .map(|(a, r)| (a.candidate.func_name.clone(), *r))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn line_zero_span_is_never_matched_against_line_one() {
        // Regression: a span with no real source line (`line() == 0`) used
        // to saturate to line 1 via `saturating_sub`-style arithmetic and
        // get matched against the file's first line — falsely pruning
        // whenever line 1 happened to contain "unused".
        let src = "int unused_helper(void);\nvoid f(void) {\nint a = 1;\nuse(a);\n}\n";
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let item = Attributed {
            candidate: crate::candidate::Candidate {
                func: FuncId(0),
                func_name: "f".into(),
                key: VarKey::Local(vc_ir::ir::LocalId(0)),
                var_name: "a".into(),
                span: vc_ir::Span::point(FileId(0), 0, 0),
                scenario: Scenario::Overwritten,
                overwriters: Vec::new(),
                info: StoreInfo::Normal,
                synthetic: false,
                unused_attr: false,
                low_confidence: false,
            },
            def_author: None,
            counterpart_authors: Vec::new(),
            cross_scope: true,
            authorship_unknown: false,
        };
        let summaries = Summaries::default();
        let peers = PeerStats::compute(&prog);
        let out = prune(
            &prog,
            &PruneConfig::default(),
            &peers,
            &summaries,
            vec![item],
        );
        assert_eq!(
            out.count(PruneReason::UnusedHint),
            0,
            "a line-0 span must not match line 1's text: {:?}",
            out.pruned
        );
        assert_eq!(out.kept.len(), 1);
    }

    #[test]
    fn pipeline_counts_first_matching_stage() {
        // Guarded use AND unused keyword: config dependency fires first.
        let src =
            "void f(void) {\nint flag_unused = 1;\n#ifdef DBG\ncheck(flag_unused);\n#endif\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.count(PruneReason::ConfigDependency), 1);
        assert_eq!(out.count(PruneReason::UnusedHint), 0);
    }

    #[test]
    fn clean_bug_candidate_is_kept() {
        let src = "int get_permset(void);\nint calc_mask(void);\nvoid f(void) {\nint ret = get_permset();\nret = calc_mask();\nif (ret) { handle(); }\n}\n";
        let (out, _) = run_prune(src);
        assert_eq!(out.total_pruned(), 0, "{:?}", out.pruned);
        assert_eq!(out.kept.len(), 1);
    }
}
