//! Project loading for the `vcheck` command-line tool: a directory of MiniC
//! sources plus an optional `history.json` ([`vc_vcs::HistorySpec`]).

use std::{fs, io, path::Path};

use vc_vcs::{
    HistorySpec,
    Repository, //
};

/// A loaded project ready for analysis.
#[derive(Debug)]
pub struct Project {
    /// `(relative path, content)` pairs, sorted by path.
    pub sources: Vec<(String, String)>,
    /// The version-control history (synthesized single-author history when
    /// the project ships no `history.json`).
    pub repo: Repository,
    /// Whether a real history was found.
    pub has_history: bool,
}

impl Project {
    /// Sources as `(&str, &str)` pairs for `Program::build`.
    pub fn source_refs(&self) -> Vec<(&str, &str)> {
        self.sources
            .iter()
            .map(|(p, c)| (p.as_str(), c.as_str()))
            .collect()
    }
}

/// Loads a project directory: every `*.c` file under `dir` (recursively,
/// relative paths as file names) plus `dir/history.json` when present.
///
/// With a history, analysis uses its blame; without one, a synthetic
/// single-author history is built from the working tree — cross-scope
/// findings are then limited to library-return-value cases, and `vcheck`
/// warns accordingly.
pub fn load_dir(dir: &Path) -> io::Result<Project> {
    let project = load_dir_or_empty(dir)?;
    if project.sources.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .c files under {}", dir.display()),
        ));
    }
    Ok(project)
}

/// [`load_dir`] that accepts a directory with zero `.c` files, returning an
/// empty project instead of `NotFound`. This is the contract `vcheck scan`
/// exposes (empty report, exit 0): a repository that happens to contain no
/// C sources is clean, not broken. The directory itself must still exist.
pub fn load_dir_or_empty(dir: &Path) -> io::Result<Project> {
    let mut sources: Vec<(String, String)> = Vec::new();
    collect_c_files(dir, dir, &mut sources)?;
    sources.sort_by(|a, b| a.0.cmp(&b.0));

    let history_path = dir.join("history.json");
    if history_path.exists() {
        let text = fs::read_to_string(&history_path)?;
        let spec = HistorySpec::from_json(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("history.json: {e}"))
        })?;
        let repo = spec.build();
        // The working tree must match the history head, or blame lines
        // would not line up with the parsed sources.
        for (path, content) in &sources {
            let head = repo.file_content(path).map(|c| c + "\n");
            if head.as_deref() != Some(content.as_str())
                && head.as_deref() != Some(content.trim_end_matches('\n'))
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("history.json head does not match working tree for {path}"),
                ));
            }
        }
        Ok(Project {
            sources,
            repo,
            has_history: true,
        })
    } else {
        let repo = HistorySpec::single_author(&sources).build();
        Ok(Project {
            sources,
            repo,
            has_history: false,
        })
    }
}

fn collect_c_files(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_c_files(root, &path, out)?;
        } else if path.extension().map(|e| e == "c").unwrap_or(false) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vcheck_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).unwrap();
        dir
    }

    #[test]
    fn loads_tree_without_history() {
        let dir = tmpdir("nohist");
        fs::write(dir.join("src/a.c"), "int f(void) { return 1; }\n").unwrap();
        let p = load_dir(&dir).unwrap();
        assert!(!p.has_history);
        assert_eq!(p.sources.len(), 1);
        assert_eq!(p.sources[0].0, "src/a.c");
        assert_eq!(p.repo.author_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loads_tree_with_matching_history() {
        let dir = tmpdir("hist");
        let content = "int f(void) { return 1; }\n";
        fs::write(dir.join("src/a.c"), content).unwrap();
        let spec = vc_vcs::HistorySpec {
            commits: vec![vc_vcs::spec::CommitSpec {
                author: "alice".into(),
                timestamp: 5,
                message: "init".into(),
                writes: vec![vc_vcs::spec::WriteSpec {
                    path: "src/a.c".into(),
                    content: content.into(),
                }],
            }],
        };
        fs::write(dir.join("history.json"), spec.to_json_pretty()).unwrap();
        let p = load_dir(&dir).unwrap();
        assert!(p.has_history);
        assert_eq!(
            p.repo
                .blame_author("src/a.c", 1)
                .map(|a| p.repo.author(a).name.clone()),
            Some("alice".to_string())
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_loads_as_empty_project() {
        let dir = tmpdir("empty");
        // `tmpdir` creates `src/` but writes no files: zero `.c` sources.
        assert!(load_dir(&dir).is_err(), "strict load still rejects");
        let p = load_dir_or_empty(&dir).unwrap();
        assert!(p.sources.is_empty());
        assert!(!p.has_history);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_still_an_error() {
        let dir = std::env::temp_dir().join(format!("vc-no-such-dir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(load_dir_or_empty(&dir).is_err());
    }

    #[test]
    fn rejects_mismatched_history() {
        let dir = tmpdir("mismatch");
        fs::write(dir.join("src/a.c"), "int f(void) { return 2; }\n").unwrap();
        let spec = vc_vcs::HistorySpec {
            commits: vec![vc_vcs::spec::CommitSpec {
                author: "alice".into(),
                timestamp: 5,
                message: "init".into(),
                writes: vec![vc_vcs::spec::WriteSpec {
                    path: "src/a.c".into(),
                    content: "int f(void) { return 1; }\n".into(),
                }],
            }],
        };
        fs::write(dir.join("history.json"), spec.to_json()).unwrap();
        assert!(load_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
