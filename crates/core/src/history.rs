//! Whole-history lifecycle replay (`vcheck history`).
//!
//! [`history_scan`] replays **every commit** of a repository through the
//! scan pipeline — each revision runs under the sentinel executor with its
//! own journal suffix (`.c<N>`), so a replay is parallel, crash-safe, and
//! resumable — and threads the per-revision findings through the
//! [`classify`](crate::delta::classify) matcher to follow each
//! drift-stable fingerprint from the commit it was born at to the commit
//! it was fixed, suppressed, or last seen at. The event stream and the
//! per-commit candidate funnels land in a [`LifeDb`]; the suppression
//! state (inline `// vcheck:allow(...)` annotations plus the persisted
//! [`SuppressStore`]) is re-evaluated at every commit, and the store's
//! coordinates are advanced through each revision's edit script so
//! entries survive refactors.
//!
//! Track continuity rides on [`DeltaRow::old_fingerprint`]: a line-map
//! match re-keys the *current* fingerprint while the track keeps the
//! fingerprint it was born with, so one finding is one track even when
//! its own definition line gets edited along the way.
//!
//! Everything here is deterministic: classified rows arrive in canonical
//! order, so the serialized [`LifeDb`] is byte-identical for any
//! `--jobs` value and across `--resume` after a mid-replay kill.

use std::collections::{
    HashMap,
    HashSet, //
};

use vc_ir::program::BuildError;
use vc_obs::{
    names,
    ObsSession, //
};
use vc_vcs::{
    CommitId,
    Repository, //
};

use crate::{
    delta::{
        classify,
        scan_revision,
        side_sentinel,
        DeltaRow,
        DeltaStatus,
        Finding,
        Fingerprint,
        RevScan, //
    },
    lifedb::{
        CommitAgg,
        FinalState,
        LifeDb,
        LifeEvent,
        LifeEventKind, //
    },
    pipeline::Options,
    prune::PruneReason,
    sentinel::SentinelConfig,
    suppress::{
        InlineSuppressions,
        SuppressStore, //
    },
};

/// The result of a whole-history replay.
#[derive(Clone, Debug)]
pub struct HistoryOutcome {
    /// The findings database: events plus per-commit funnels.
    pub db: LifeDb,
    /// The suppression store after the replay (advanced lines, healed
    /// fingerprints) — save it back to persist the maintenance.
    pub suppress: SuppressStore,
    /// The last replayed commit.
    pub head: Option<CommitId>,
    /// Number of commits replayed.
    pub commits: usize,
}

/// One track summarised for the CLI table: born-at, last-seen, final
/// state, and last-known coordinates.
#[derive(Clone, Debug)]
pub struct TrackRow {
    /// Track id (the born fingerprint).
    pub track: Fingerprint,
    /// Commit the track was born at.
    pub born: CommitId,
    /// Commit of the track's last event.
    pub last: CommitId,
    /// Final state.
    pub state: FinalState,
    /// Last-known file.
    pub file: String,
    /// Last-known line.
    pub line: u32,
    /// Containing function.
    pub function: String,
    /// Variable name.
    pub variable: String,
    /// Scenario label.
    pub scenario: String,
}

/// Summarises a [`LifeDb`] into one row per track, sorted by (file,
/// function, variable, track) — the `vcheck history` CSV body.
pub fn track_rows(db: &LifeDb) -> Vec<TrackRow> {
    let finals = db.final_states();
    let mut rows: HashMap<Fingerprint, TrackRow> = HashMap::new();
    for e in &db.events {
        let row = rows.entry(e.track).or_insert_with(|| TrackRow {
            track: e.track,
            born: e.commit,
            last: e.commit,
            state: FinalState::Live,
            file: e.file.clone(),
            line: e.line,
            function: e.function.clone(),
            variable: e.variable.clone(),
            scenario: e.scenario.clone(),
        });
        row.last = e.commit;
        row.file = e.file.clone();
        row.line = e.line;
    }
    let mut rows: Vec<TrackRow> = rows
        .into_iter()
        .map(|(track, mut row)| {
            row.state = finals.get(&track).copied().unwrap_or(FinalState::Live);
            row
        })
        .collect();
    rows.sort_by(|a, b| {
        (&a.file, &a.function, &a.variable, a.track).cmp(&(
            &b.file,
            &b.function,
            &b.variable,
            b.track,
        ))
    });
    rows
}

/// Renders the track summary as CSV (header + rows).
pub fn tracks_to_csv(db: &LifeDb) -> String {
    let mut out = String::from("track,state,born,last,file,line,function,variable,scenario\n");
    for r in track_rows(db) {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.track.to_hex(),
            r.state.label(),
            r.born.0,
            r.last.0,
            r.file,
            r.line,
            r.function,
            r.variable,
            r.scenario
        ));
    }
    out
}

/// A finding's canonical iteration key within one commit.
fn canon_key(f: &Finding) -> (String, String, String, u32, Fingerprint) {
    (
        f.file.clone(),
        f.function.clone(),
        f.variable.clone(),
        f.line,
        f.fingerprint,
    )
}

fn event_for(commit: CommitId, track: Fingerprint, f: &Finding, kind: LifeEventKind) -> LifeEvent {
    LifeEvent {
        commit,
        track,
        fingerprint: f.fingerprint,
        kind,
        file: f.file.clone(),
        line: f.line,
        function: f.function.clone(),
        variable: f.variable.clone(),
        scenario: f.scenario.clone(),
    }
}

/// Replays every commit of `repo` and assembles the lifecycle database.
///
/// `suppress` is the loaded suppression store (possibly empty); the
/// returned outcome carries its advanced/healed successor. Counters
/// (`life.*`, `suppress.*`) are recorded into `obs`.
pub fn history_scan(
    repo: &Repository,
    defines: &[String],
    opts: &Options,
    sconf: &SentinelConfig,
    mut suppress: SuppressStore,
    obs: ObsSession,
) -> Result<HistoryOutcome, BuildError> {
    let _guard = obs.install();
    let span = obs.span("history.scan", "history");
    let mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_HISTORY);

    let commits: Vec<CommitId> = repo.commits().iter().map(|c| c.id).collect();
    let mut db = LifeDb::default();
    // Current fingerprint → track id (born fingerprint) of each live track.
    let mut live: HashMap<u64, Fingerprint> = HashMap::new();
    let mut prev: Option<RevScan> = None;

    for &commit in &commits {
        vc_obs::counter_inc(names::LIFE_COMMITS);
        let scan = scan_revision(
            repo,
            commit,
            defines,
            opts,
            &side_sentinel(sconf, &format!("c{}", commit.0)),
            obs.clone(),
        )?;

        // Lifecycle events: the first commit births everything; later
        // commits ride the delta classifier, using `old_fingerprint` to
        // stay on a track across line-map re-keys.
        let mut next_live: HashMap<u64, Fingerprint> = HashMap::new();
        match &prev {
            None => {
                let mut born: Vec<&Finding> = scan.findings.iter().collect();
                born.sort_by_key(|f| canon_key(f));
                for f in born {
                    let track = f.fingerprint;
                    next_live.insert(f.fingerprint.0, track);
                    vc_obs::counter_inc(names::LIFE_BORN);
                    db.push_event(event_for(commit, track, f, LifeEventKind::Born));
                }
            }
            Some(p) => {
                // The store's coordinates move with this revision step so
                // the nearby-line fallback keeps working under drift.
                suppress.advance(&p.sources, &scan.sources);
                let report = classify(
                    &p.findings,
                    &scan.findings,
                    &p.sources,
                    &scan.sources,
                    &HashSet::new(),
                );
                for row in &report.rows {
                    record_row(commit, row, &live, &mut next_live, &mut db);
                }
            }
        }
        live = next_live;

        // Suppression: re-evaluated at every commit against the inline
        // annotations of *this* revision plus the persisted store. The
        // suppressed event lands after the track's lifecycle event, so a
        // track suppressed at head finishes in the `suppressed` bucket.
        let inline = InlineSuppressions::from_sources(&scan.sources);
        let mut present: Vec<&Finding> = scan.findings.iter().collect();
        present.sort_by_key(|f| canon_key(f));
        for f in present {
            let by_inline = inline.allows(&f.file, f.line, &f.scenario);
            if by_inline {
                vc_obs::counter_inc(names::SUPPRESS_INLINE);
            }
            let by_store = !by_inline && suppress.match_and_heal(f).is_some();
            if by_inline || by_store {
                let track = live.get(&f.fingerprint.0).copied().unwrap_or(f.fingerprint);
                db.push_event(event_for(commit, track, f, LifeEventKind::Suppressed));
            }
        }

        // The commit's candidate funnel, prune patterns broken out.
        let analysis = &scan.rev.analysis;
        db.aggs.push(CommitAgg {
            commit,
            raw: analysis.raw_candidates as u64,
            cross_scope: analysis.cross_scope_candidates as u64,
            pruned: PruneReason::ALL
                .iter()
                .map(|&r| {
                    (
                        r.label().to_string(),
                        analysis.prune_outcome.count(r) as u64,
                    )
                })
                .collect(),
            reported: analysis.ranked.len() as u64,
        });

        prev = Some(scan);
    }

    let funnel = db.funnel();
    vc_obs::counter_add(names::LIFE_SUPPRESSED, funnel.suppressed);
    vc_obs::counter_add(names::LIFE_LIVE, funnel.live);

    mem.finish();
    span.end();
    Ok(HistoryOutcome {
        db,
        suppress,
        head: commits.last().copied(),
        commits: commits.len(),
    })
}

/// Applies one classified row to the track state and the event stream.
fn record_row(
    commit: CommitId,
    row: &DeltaRow,
    live: &HashMap<u64, Fingerprint>,
    next_live: &mut HashMap<u64, Fingerprint>,
    db: &mut LifeDb,
) {
    // A matched row's track comes from the *old* side's live map; an
    // untracked old fingerprint (scan started mid-history) starts a track
    // under its own name.
    let old_track = row
        .old_fingerprint
        .map(|fp| live.get(&fp.0).copied().unwrap_or(fp));
    match row.status {
        DeltaStatus::New => {
            let track = row.finding.fingerprint;
            next_live.insert(row.finding.fingerprint.0, track);
            vc_obs::counter_inc(names::LIFE_BORN);
            db.push_event(event_for(commit, track, &row.finding, LifeEventKind::Born));
        }
        DeltaStatus::Persisting => {
            let track = old_track.expect("matched row carries old_fingerprint");
            next_live.insert(row.finding.fingerprint.0, track);
            vc_obs::counter_inc(names::LIFE_PERSISTING);
            db.push_event(event_for(
                commit,
                track,
                &row.finding,
                LifeEventKind::Persisting,
            ));
        }
        DeltaStatus::Churned => {
            let track = old_track.expect("matched row carries old_fingerprint");
            next_live.insert(row.finding.fingerprint.0, track);
            vc_obs::counter_inc(names::LIFE_CHURNED);
            db.push_event(event_for(
                commit,
                track,
                &row.finding,
                LifeEventKind::Churned,
            ));
        }
        DeltaStatus::Fixed => {
            let track = old_track.expect("fixed row carries old_fingerprint");
            vc_obs::counter_inc(names::LIFE_FIXED);
            db.push_event(event_for(commit, track, &row.finding, LifeEventKind::Fixed));
        }
        // The replay classifies with an empty baseline; `suppressed` rows
        // cannot occur (suppression is handled by the annotation/store
        // pass above).
        DeltaStatus::Suppressed => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_vcs::FileWrite;

    fn write(path: &str, content: &str) -> FileWrite {
        FileWrite {
            path: path.into(),
            content: content.into(),
        }
    }

    /// One library-retval bug (cross-scope even in single-author repos).
    fn bug_fn(name: &str) -> String {
        format!(
            "int get_{name}(void);\nint calc_{name}(void);\nvoid {name}(void) {{\nint ret = \
             get_{name}();\nret = calc_{name}();\nif (ret) {{ sink(ret); }}\n}}\n"
        )
    }

    fn clean_fn(name: &str) -> String {
        format!(
            "int get_{name}(void);\nvoid {name}(void) {{\nint ret = get_{name}();\nif (ret) {{ \
             sink(ret); }}\n}}\n"
        )
    }

    fn run(repo: &Repository, obs: &ObsSession) -> HistoryOutcome {
        history_scan(
            repo,
            &[],
            &Options::paper(),
            &SentinelConfig::default(),
            SuppressStore::default(),
            obs.clone(),
        )
        .unwrap()
    }

    #[test]
    fn born_then_fixed_track_ends_fixed() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &bug_fn("alpha"))]);
        repo.commit(
            dev,
            2,
            "still there",
            vec![write("b.c", "int unrelated;\n")],
        );
        let c3 = repo.commit(dev, 3, "fix", vec![write("a.c", &clean_fn("alpha"))]);
        let obs = ObsSession::new();
        let out = run(&repo, &obs);
        assert_eq!(out.commits, 3);
        let funnel = out.db.funnel();
        assert_eq!(funnel.born, 1);
        assert_eq!(funnel.fixed, 1);
        assert_eq!(funnel.live, 0);
        assert!(funnel.balances());
        assert_eq!(obs.registry.counter(names::LIFE_COMMITS), 3);
        assert_eq!(obs.registry.counter(names::LIFE_BORN), 1);
        assert_eq!(obs.registry.counter(names::LIFE_PERSISTING), 1);
        assert_eq!(obs.registry.counter(names::LIFE_FIXED), 1);
        assert_eq!(obs.registry.counter(names::LIFE_LIVE), 0);
        let kinds: Vec<LifeEventKind> = out.db.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LifeEventKind::Born,
                LifeEventKind::Persisting,
                LifeEventKind::Fixed
            ]
        );
        let rows = track_rows(&out.db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, FinalState::Fixed);
        assert_eq!(rows[0].born, c1);
        assert_eq!(rows[0].last, c3);
    }

    #[test]
    fn inline_annotation_suppresses_at_head() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let body = bug_fn("alpha");
        repo.commit(dev, 1, "v1", vec![write("a.c", &body)]);
        // v2: annotate the definition line; the annotation is a comment,
        // so the fingerprint (and the finding) survive unchanged.
        let annotated = body.replace(
            "int ret = get_alpha();",
            "// vcheck:allow(retval)\nint ret = get_alpha();",
        );
        repo.commit(dev, 2, "triage", vec![write("a.c", &annotated)]);
        let obs = ObsSession::new();
        let out = run(&repo, &obs);
        let funnel = out.db.funnel();
        assert_eq!(funnel.born, 1, "{:#?}", out.db.events);
        assert_eq!(funnel.suppressed, 1);
        assert_eq!(funnel.live, 0);
        assert!(funnel.balances());
        assert_eq!(obs.registry.counter(names::SUPPRESS_INLINE), 1);
        assert_eq!(obs.registry.counter(names::LIFE_SUPPRESSED), 1);
    }

    #[test]
    fn store_suppression_survives_drift() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let body = bug_fn("alpha");
        let c1 = repo.commit(dev, 1, "v1", vec![write("a.c", &body)]);
        // v2: ten declarations above — pure drift.
        let mut padded = String::new();
        for i in 0..10 {
            padded.push_str(&format!("int pad_{i}(void);\n"));
        }
        padded.push_str(&body);
        repo.commit(dev, 2, "pad", vec![write("a.c", &padded)]);

        // Seed the store from the first revision's finding.
        let first = crate::delta::scan_revision(
            &repo,
            c1,
            &[],
            &Options::paper(),
            &SentinelConfig::default(),
            ObsSession::new(),
        )
        .unwrap();
        assert_eq!(first.findings.len(), 1);
        let f = &first.findings[0];
        let store = SuppressStore {
            entries: vec![crate::suppress::SuppressEntry {
                fingerprint: f.fingerprint.0,
                file: f.file.clone(),
                line: f.line,
                scenario: f.scenario.clone(),
                reason: "vetted".into(),
            }],
        };

        let obs = ObsSession::new();
        let out = history_scan(
            &repo,
            &[],
            &Options::paper(),
            &SentinelConfig::default(),
            store,
            obs.clone(),
        )
        .unwrap();
        let funnel = out.db.funnel();
        assert_eq!(funnel.suppressed, 1, "{:#?}", out.db.events);
        assert_eq!(funnel.live, 0);
        // Matched by fingerprint at both commits, and the entry's line
        // followed the drift.
        assert_eq!(obs.registry.counter(names::SUPPRESS_STORE), 2);
        assert_eq!(out.suppress.entries[0].line, f.line + 10);
    }

    #[test]
    fn db_bytes_are_identical_across_jobs() {
        let mut repo = Repository::new();
        let dev = repo.add_author("dev");
        let v1 = format!("{}{}", bug_fn("keep"), bug_fn("gone"));
        repo.commit(dev, 1, "v1", vec![write("a.c", &v1)]);
        let v2 = format!("{}{}{}", bug_fn("keep"), clean_fn("gone"), bug_fn("fresh"));
        repo.commit(dev, 2, "v2", vec![write("a.c", &v2)]);

        let mut texts = Vec::new();
        for jobs in [1, 4] {
            let sconf = SentinelConfig {
                jobs,
                ..SentinelConfig::default()
            };
            let out = history_scan(
                &repo,
                &[],
                &Options::paper(),
                &sconf,
                SuppressStore::default(),
                ObsSession::new(),
            )
            .unwrap();
            texts.push(out.db.to_text());
        }
        assert_eq!(texts[0], texts[1], "lifedb bytes must not depend on --jobs");
    }
}
