//! Fault isolation, per-stage budgets, and the graceful-degradation ladder.
//!
//! ValueCheck's value comes from scanning huge, messy codebases where one
//! malformed function or pathological CFG must never take down the whole
//! run. This module is the discipline layer that makes every pipeline run
//! survivable and bounded:
//!
//! - **Per-function fault isolation.** Each function's detect/liveness/alias
//!   work runs under [`std::panic::catch_unwind`]; a panic poisons that one
//!   function, producing a [`FailureRecord`] in the [`Report`](crate::report::Report)
//!   instead of aborting the run.
//! - **Per-stage budgets.** [`HardenConfig`] carries step caps and
//!   wall-clock deadlines for the Andersen solver and the liveness
//!   fixpoints, enforced inside the solver loops via
//!   [`vc_obs::BudgetMeter`].
//! - **Degradation ladder.** On pointer budget exhaustion the pipeline
//!   falls back to the conservative field-insensitive may-alias oracle
//!   (`AliasUses::conservative`); on liveness budget exhaustion the
//!   function's candidates are kept but marked low-confidence. Every
//!   downgrade is counted under `harden.*` in the ambient
//!   [`ObsSession`](vc_obs::ObsSession) and surfaced by `vcheck --stats`.
//!
//! For deterministic fault-injection testing, [`arm_failpoint`] plants a
//! thread-local trigger that panics inside a chosen stage for functions
//! whose name contains a needle — the in-tree equivalent of a failpoint
//! library, compiled in release builds too (the check is one thread-local
//! borrow per function, negligible next to a fixpoint solve).

use std::{
    cell::RefCell,
    panic::{
        catch_unwind,
        AssertUnwindSafe, //
    },
    sync::{
        Arc,
        Mutex, //
    },
};

pub use vc_obs::{
    Budget,
    BudgetMeter, //
};

/// Robustness knobs threaded through the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct HardenConfig {
    /// Run each function's detection (and each candidate's authorship
    /// lookup) under an unwind boundary, converting panics into
    /// [`FailureRecord`]s. On by default; disable to let panics escape
    /// (`vcheck --fail-fast`).
    pub isolate: bool,
    /// Budget for each function's liveness/define-set fixpoint.
    pub liveness_budget: Budget,
    /// Budget for the whole-program Andersen solve.
    pub pointer_budget: Budget,
}

impl Default for HardenConfig {
    fn default() -> Self {
        Self {
            isolate: true,
            liveness_budget: Budget::UNLIMITED,
            pointer_budget: Budget::UNLIMITED,
        }
    }
}

impl HardenConfig {
    /// Applies one step cap to both the liveness and pointer budgets.
    pub fn with_step_budget(mut self, steps: u64) -> HardenConfig {
        self.liveness_budget = self.liveness_budget.with_steps(steps);
        self.pointer_budget = self.pointer_budget.with_steps(steps);
        self
    }

    /// Applies one wall-clock cap to both budgets.
    pub fn with_time_budget_ms(mut self, ms: u64) -> HardenConfig {
        self.liveness_budget = self.liveness_budget.with_millis(ms);
        self.pointer_budget = self.pointer_budget.with_millis(ms);
        self
    }
}

/// The pipeline stage a failure was isolated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailStage {
    /// Source-level parse or lowering failure (lenient build).
    Parse,
    /// Per-function detection (liveness, define sets, classification).
    Detect,
    /// The whole-program pointer/alias solve.
    Pointer,
    /// Per-candidate authorship lookup.
    Authorship,
    /// The pruning stage.
    Prune,
    /// The ranking stage.
    Rank,
    /// The sentinel executor's worker loop itself, *outside* the per-unit
    /// isolation boundary — a hit here simulates a poisoned worker thread
    /// rather than a poisoned unit.
    Worker,
}

impl FailStage {
    /// Stable lowercase label, used in counters and report output.
    pub fn label(&self) -> &'static str {
        match self {
            FailStage::Parse => "parse",
            FailStage::Detect => "detect",
            FailStage::Pointer => "pointer",
            FailStage::Authorship => "authorship",
            FailStage::Prune => "prune",
            FailStage::Rank => "rank",
            FailStage::Worker => "worker",
        }
    }

    /// The inverse of [`FailStage::label`], for journal replay.
    pub fn from_label(label: &str) -> Option<FailStage> {
        Some(match label {
            "parse" => FailStage::Parse,
            "detect" => FailStage::Detect,
            "pointer" => FailStage::Pointer,
            "authorship" => FailStage::Authorship,
            "prune" => FailStage::Prune,
            "rank" => FailStage::Rank,
            "worker" => FailStage::Worker,
            _ => return None,
        })
    }
}

/// One poisoned unit of work: the stage, where it happened, and why. A run
/// that hits failures still completes; its [`Report`](crate::report::Report)
/// carries these records alongside the surviving findings.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureRecord {
    /// The stage the failure was contained in.
    pub stage: FailStage,
    /// File of the poisoned unit (the function's file, or the unparseable
    /// source file).
    pub file: String,
    /// The poisoned function, when the unit is function- or
    /// candidate-grained.
    pub function: Option<String>,
    /// Human-readable cause (panic payload or build error).
    pub message: String,
}

impl std::fmt::Display for FailureRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(func) => write!(
                f,
                "[{}] {} in {}: {}",
                self.stage.label(),
                func,
                self.file,
                self.message
            ),
            None => write!(
                f,
                "[{}] {}: {}",
                self.stage.label(),
                self.file,
                self.message
            ),
        }
    }
}

/// Extracts a printable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `work` under an unwind boundary when `isolate` is set, translating
/// a panic into `Err(message)`. With `isolate` off the panic propagates —
/// the fail-fast debugging mode.
///
/// The ambient [`ObsSession`](vc_obs::ObsSession) is per-thread and the
/// closure runs on the calling thread, so counters recorded inside the
/// boundary land in the same session.
pub fn isolated<T>(isolate: bool, work: impl FnOnce() -> T) -> Result<T, String> {
    if !isolate {
        return Ok(work());
    }
    catch_unwind(AssertUnwindSafe(work)).map_err(panic_message)
}

/// A shareable set of armed failpoints.
///
/// Failpoints used to be a plain thread-local `Vec`, which broke under the
/// `sentinel` executor: a failpoint armed on the test thread was invisible
/// to the worker threads actually running detection. A `FailpointPlan` is
/// the same set behind an `Arc<Mutex<..>>`: each thread still has its *own*
/// plan by default (parallel tests stay isolated from each other), but the
/// executor captures [`FailpointPlan::current`] at spawn time and installs
/// it on every worker, so arming — and disarming, including guard drops
/// after spawn — propagates to all workers sharing the plan.
#[derive(Clone, Debug, Default)]
pub struct FailpointPlan {
    points: Arc<Mutex<Vec<(FailStage, String)>>>,
}

impl FailpointPlan {
    /// The plan installed on the current thread (every thread lazily gets
    /// an empty one). Cloning shares the underlying set.
    pub fn current() -> FailpointPlan {
        FAILPOINTS.with(|p| p.borrow().clone())
    }

    /// Installs this plan on the current thread until the returned guard
    /// drops; the previous plan is restored afterwards. Worker threads call
    /// this with the spawning thread's plan so injection is deterministic
    /// under `--jobs > 1`.
    pub fn install(&self) -> FailpointPlanGuard {
        let prev = FAILPOINTS.with(|p| p.replace(self.clone()));
        FailpointPlanGuard { prev }
    }

    /// Whether a failpoint matching `(stage, function)` is armed.
    fn hit(&self, stage: FailStage, function: &str) -> bool {
        self.points
            .lock()
            .unwrap()
            .iter()
            .any(|(s, n)| *s == stage && function.contains(n.as_str()))
    }

    fn arm(&self, stage: FailStage, needle: &str) {
        self.points
            .lock()
            .unwrap()
            .push((stage, needle.to_string()));
    }

    fn disarm(&self, stage: FailStage, needle: &str) {
        let mut pts = self.points.lock().unwrap();
        if let Some(i) = pts.iter().position(|(s, n)| *s == stage && *n == needle) {
            pts.remove(i);
        }
    }
}

/// Restores the previously installed [`FailpointPlan`] when dropped.
#[must_use = "dropping the guard immediately restores the previous plan"]
pub struct FailpointPlanGuard {
    prev: FailpointPlan,
}

impl Drop for FailpointPlanGuard {
    fn drop(&mut self) {
        FAILPOINTS.with(|p| p.replace(self.prev.clone()));
    }
}

thread_local! {
    /// The thread's armed failpoint plan (shareable across worker threads).
    static FAILPOINTS: RefCell<FailpointPlan> = RefCell::new(FailpointPlan::default());
}

/// Disarms the failpoint it was returned for when dropped.
pub struct FailPointGuard {
    plan: FailpointPlan,
    stage: FailStage,
    needle: String,
}

impl Drop for FailPointGuard {
    fn drop(&mut self) {
        self.plan.disarm(self.stage, &self.needle);
    }
}

/// Arms a deterministic failpoint on the current thread's plan: any unit of
/// work in `stage` whose function name contains `needle` will panic when it
/// hits [`failpoint`] — on this thread, or on any executor worker the plan
/// was installed on. Used by the fault-injection harness to prove panics
/// stay inside the isolation boundary. Disarmed when the guard drops.
pub fn arm_failpoint(stage: FailStage, needle: &str) -> FailPointGuard {
    let plan = FailpointPlan::current();
    plan.arm(stage, needle);
    FailPointGuard {
        plan,
        stage,
        needle: needle.to_string(),
    }
}

/// The trigger side of [`arm_failpoint`]: panics iff a matching failpoint
/// is armed on this thread's plan. A no-op (one thread-local borrow and,
/// when the plan is armed at all, one uncontended lock) otherwise.
pub fn failpoint(stage: FailStage, function: &str) {
    let hit = FAILPOINTS.with(|p| p.borrow().hit(stage, function));
    if hit {
        panic!("injected fault: {} in {function}", stage.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_catches_panics_with_message() {
        let r: Result<(), String> = isolated(true, || panic!("boom {}", 42));
        assert_eq!(r.unwrap_err(), "boom 42");
        let ok = isolated(true, || 7);
        assert_eq!(ok.unwrap(), 7);
    }

    #[test]
    fn failpoint_hits_only_matching_stage_and_name() {
        let _g = arm_failpoint(FailStage::Detect, "bad_fn");
        // Non-matching stage and name pass through.
        failpoint(FailStage::Authorship, "bad_fn");
        failpoint(FailStage::Detect, "fine_fn");
        let r = isolated(true, || failpoint(FailStage::Detect, "some_bad_fn_here"));
        assert!(r.unwrap_err().contains("injected fault"));
    }

    #[test]
    fn failpoint_disarms_on_guard_drop() {
        {
            let _g = arm_failpoint(FailStage::Detect, "poof");
        }
        failpoint(FailStage::Detect, "poof_target"); // must not panic
    }

    #[test]
    fn failure_record_display_names_stage_and_function() {
        let r = FailureRecord {
            stage: FailStage::Detect,
            file: "a.c".into(),
            function: Some("f".into()),
            message: "boom".into(),
        };
        assert_eq!(r.to_string(), "[detect] f in a.c: boom");
    }

    #[test]
    fn failpoint_plan_propagates_to_spawned_threads() {
        let _g = arm_failpoint(FailStage::Detect, "worker_bad");
        let plan = FailpointPlan::current();
        let caught = std::thread::spawn(move || {
            let _p = plan.install();
            isolated(true, || failpoint(FailStage::Detect, "worker_bad_fn")).is_err()
        })
        .join()
        .unwrap();
        assert!(caught, "armed failpoint must fire on the worker thread");
    }

    #[test]
    fn failpoint_disarm_propagates_to_shared_plan() {
        let plan = {
            let _g = arm_failpoint(FailStage::Detect, "gone");
            FailpointPlan::current()
        };
        // The guard dropped: the shared plan must no longer fire anywhere.
        let fired = std::thread::spawn(move || {
            let _p = plan.install();
            isolated(true, || failpoint(FailStage::Detect, "gone_fn")).is_err()
        })
        .join()
        .unwrap();
        assert!(!fired);
    }

    #[test]
    fn fail_stage_label_roundtrips() {
        for stage in [
            FailStage::Parse,
            FailStage::Detect,
            FailStage::Pointer,
            FailStage::Authorship,
            FailStage::Prune,
            FailStage::Rank,
            FailStage::Worker,
        ] {
            assert_eq!(FailStage::from_label(stage.label()), Some(stage));
        }
        assert_eq!(FailStage::from_label("bogus"), None);
    }

    #[test]
    fn harden_config_budget_builders() {
        let h = HardenConfig::default().with_step_budget(9);
        assert_eq!(h.liveness_budget.max_steps, Some(9));
        assert_eq!(h.pointer_budget.max_steps, Some(9));
        assert!(h.isolate);
    }
}
