//! Fault isolation, per-stage budgets, and the graceful-degradation ladder.
//!
//! ValueCheck's value comes from scanning huge, messy codebases where one
//! malformed function or pathological CFG must never take down the whole
//! run. This module is the discipline layer that makes every pipeline run
//! survivable and bounded:
//!
//! - **Per-function fault isolation.** Each function's detect/liveness/alias
//!   work runs under [`std::panic::catch_unwind`]; a panic poisons that one
//!   function, producing a [`FailureRecord`] in the [`Report`](crate::report::Report)
//!   instead of aborting the run.
//! - **Per-stage budgets.** [`HardenConfig`] carries step caps and
//!   wall-clock deadlines for the Andersen solver and the liveness
//!   fixpoints, enforced inside the solver loops via
//!   [`vc_obs::BudgetMeter`].
//! - **Degradation ladder.** On pointer budget exhaustion the pipeline
//!   falls back to the conservative field-insensitive may-alias oracle
//!   (`AliasUses::conservative`); on liveness budget exhaustion the
//!   function's candidates are kept but marked low-confidence. Every
//!   downgrade is counted under `harden.*` in the ambient
//!   [`ObsSession`](vc_obs::ObsSession) and surfaced by `vcheck --stats`.
//!
//! For deterministic fault-injection testing, [`arm_failpoint`] plants a
//! thread-local trigger that panics inside a chosen stage for functions
//! whose name contains a needle — the in-tree equivalent of a failpoint
//! library, compiled in release builds too (the check is one thread-local
//! borrow per function, negligible next to a fixpoint solve).

use std::{
    cell::RefCell,
    panic::{
        catch_unwind,
        AssertUnwindSafe, //
    },
};

pub use vc_obs::{
    Budget,
    BudgetMeter, //
};

/// Robustness knobs threaded through the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct HardenConfig {
    /// Run each function's detection (and each candidate's authorship
    /// lookup) under an unwind boundary, converting panics into
    /// [`FailureRecord`]s. On by default; disable to let panics escape
    /// (`vcheck --fail-fast`).
    pub isolate: bool,
    /// Budget for each function's liveness/define-set fixpoint.
    pub liveness_budget: Budget,
    /// Budget for the whole-program Andersen solve.
    pub pointer_budget: Budget,
}

impl Default for HardenConfig {
    fn default() -> Self {
        Self {
            isolate: true,
            liveness_budget: Budget::UNLIMITED,
            pointer_budget: Budget::UNLIMITED,
        }
    }
}

impl HardenConfig {
    /// Applies one step cap to both the liveness and pointer budgets.
    pub fn with_step_budget(mut self, steps: u64) -> HardenConfig {
        self.liveness_budget = self.liveness_budget.with_steps(steps);
        self.pointer_budget = self.pointer_budget.with_steps(steps);
        self
    }

    /// Applies one wall-clock cap to both budgets.
    pub fn with_time_budget_ms(mut self, ms: u64) -> HardenConfig {
        self.liveness_budget = self.liveness_budget.with_millis(ms);
        self.pointer_budget = self.pointer_budget.with_millis(ms);
        self
    }
}

/// The pipeline stage a failure was isolated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailStage {
    /// Source-level parse or lowering failure (lenient build).
    Parse,
    /// Per-function detection (liveness, define sets, classification).
    Detect,
    /// The whole-program pointer/alias solve.
    Pointer,
    /// Per-candidate authorship lookup.
    Authorship,
    /// The pruning stage.
    Prune,
    /// The ranking stage.
    Rank,
}

impl FailStage {
    /// Stable lowercase label, used in counters and report output.
    pub fn label(&self) -> &'static str {
        match self {
            FailStage::Parse => "parse",
            FailStage::Detect => "detect",
            FailStage::Pointer => "pointer",
            FailStage::Authorship => "authorship",
            FailStage::Prune => "prune",
            FailStage::Rank => "rank",
        }
    }
}

/// One poisoned unit of work: the stage, where it happened, and why. A run
/// that hits failures still completes; its [`Report`](crate::report::Report)
/// carries these records alongside the surviving findings.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureRecord {
    /// The stage the failure was contained in.
    pub stage: FailStage,
    /// File of the poisoned unit (the function's file, or the unparseable
    /// source file).
    pub file: String,
    /// The poisoned function, when the unit is function- or
    /// candidate-grained.
    pub function: Option<String>,
    /// Human-readable cause (panic payload or build error).
    pub message: String,
}

impl std::fmt::Display for FailureRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(func) => write!(
                f,
                "[{}] {} in {}: {}",
                self.stage.label(),
                func,
                self.file,
                self.message
            ),
            None => write!(
                f,
                "[{}] {}: {}",
                self.stage.label(),
                self.file,
                self.message
            ),
        }
    }
}

/// Extracts a printable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `work` under an unwind boundary when `isolate` is set, translating
/// a panic into `Err(message)`. With `isolate` off the panic propagates —
/// the fail-fast debugging mode.
///
/// The ambient [`ObsSession`](vc_obs::ObsSession) is per-thread and the
/// closure runs on the calling thread, so counters recorded inside the
/// boundary land in the same session.
pub fn isolated<T>(isolate: bool, work: impl FnOnce() -> T) -> Result<T, String> {
    if !isolate {
        return Ok(work());
    }
    catch_unwind(AssertUnwindSafe(work)).map_err(panic_message)
}

thread_local! {
    /// Armed failpoints: `(stage, function-name substring)` pairs.
    static FAILPOINTS: RefCell<Vec<(FailStage, String)>> = const { RefCell::new(Vec::new()) };
}

/// Disarms the failpoint it was returned for when dropped.
pub struct FailPointGuard {
    stage: FailStage,
    needle: String,
}

impl Drop for FailPointGuard {
    fn drop(&mut self) {
        FAILPOINTS.with(|fps| {
            let mut fps = fps.borrow_mut();
            if let Some(i) = fps
                .iter()
                .position(|(s, n)| *s == self.stage && *n == self.needle)
            {
                fps.remove(i);
            }
        });
    }
}

/// Arms a deterministic failpoint on the current thread: any unit of work
/// in `stage` whose function name contains `needle` will panic when it hits
/// [`failpoint`]. Used by the fault-injection harness to prove panics stay
/// inside the isolation boundary. Disarmed when the guard drops.
pub fn arm_failpoint(stage: FailStage, needle: &str) -> FailPointGuard {
    FAILPOINTS.with(|fps| fps.borrow_mut().push((stage, needle.to_string())));
    FailPointGuard {
        stage,
        needle: needle.to_string(),
    }
}

/// The trigger side of [`arm_failpoint`]: panics iff a matching failpoint
/// is armed on this thread. A no-op (one thread-local borrow) otherwise.
pub fn failpoint(stage: FailStage, function: &str) {
    let hit = FAILPOINTS.with(|fps| {
        fps.borrow()
            .iter()
            .any(|(s, n)| *s == stage && function.contains(n.as_str()))
    });
    if hit {
        panic!("injected fault: {} in {function}", stage.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_catches_panics_with_message() {
        let r: Result<(), String> = isolated(true, || panic!("boom {}", 42));
        assert_eq!(r.unwrap_err(), "boom 42");
        let ok = isolated(true, || 7);
        assert_eq!(ok.unwrap(), 7);
    }

    #[test]
    fn failpoint_hits_only_matching_stage_and_name() {
        let _g = arm_failpoint(FailStage::Detect, "bad_fn");
        // Non-matching stage and name pass through.
        failpoint(FailStage::Authorship, "bad_fn");
        failpoint(FailStage::Detect, "fine_fn");
        let r = isolated(true, || failpoint(FailStage::Detect, "some_bad_fn_here"));
        assert!(r.unwrap_err().contains("injected fault"));
    }

    #[test]
    fn failpoint_disarms_on_guard_drop() {
        {
            let _g = arm_failpoint(FailStage::Detect, "poof");
        }
        failpoint(FailStage::Detect, "poof_target"); // must not panic
    }

    #[test]
    fn failure_record_display_names_stage_and_function() {
        let r = FailureRecord {
            stage: FailStage::Detect,
            file: "a.c".into(),
            function: Some("f".into()),
            message: "boom".into(),
        };
        assert_eq!(r.to_string(), "[detect] f in a.c: boom");
    }

    #[test]
    fn harden_config_budget_builders() {
        let h = HardenConfig::default().with_step_budget(9);
        assert_eq!(h.liveness_budget.max_steps, Some(9));
        assert_eq!(h.pointer_budget.max_steps, Some(9));
        assert!(h.isolate);
    }
}
