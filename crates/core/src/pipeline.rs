//! The end-to-end ValueCheck pipeline (Fig. 2): detection → authorship →
//! pruning → familiarity ranking, with per-stage accounting for the
//! evaluation tables.
//!
//! Every run records spans (`pipeline.run`, `stage.detect`,
//! `stage.authorship`, `stage.prune`, `stage.rank`) and the candidate
//! funnel (`funnel.raw` → `funnel.cross_scope` → `funnel.pruned.<reason>` →
//! `funnel.reported`) into the run's [`ObsSession`]. [`StageTimings`] is a
//! per-run view over those spans, so timing semantics are unchanged from
//! the old ad-hoc `Instant` pairs.

use std::time::Duration;

use vc_dataflow::summary::SigInterner;
use vc_ir::Program;
use vc_obs::ObsSession;
use vc_vcs::Repository;

use crate::{
    authorship::{
        Attributed,
        AuthorshipCtx, //
    },
    detect::{
        detect_program_hardened,
        DetectConfig, //
    },
    harden::{
        self,
        FailStage,
        FailureRecord,
        HardenConfig, //
    },
    prune::{
        prune,
        PeerScope,
        PeerStats,
        PruneConfig,
        PruneOutcome,
        PruneReason, //
    },
    rank::{
        rank,
        RankConfig,
        Ranked, //
    },
    report::Report,
    sentinel::{
        detect_program_sentinel,
        SentinelConfig, //
    },
};

/// Full pipeline configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Detection options.
    pub detect: DetectConfig,
    /// Keep only cross-scope candidates (the paper's default; disabling is
    /// the "w/o Authorship" ablation of Table 6).
    pub cross_scope_only: bool,
    /// Pruning options.
    pub prune: PruneConfig,
    /// Ranking options.
    pub rank: RankConfig,
    /// Fault-isolation and budget knobs.
    pub harden: HardenConfig,
}

impl Options {
    /// The configuration the paper evaluates: cross-scope filtering on,
    /// all pruners on, DOK ranking on.
    pub fn paper() -> Options {
        Options {
            detect: DetectConfig::default(),
            cross_scope_only: true,
            prune: PruneConfig::default(),
            rank: RankConfig::default(),
            harden: HardenConfig::default(),
        }
    }
}

/// Wall-clock timing of each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Liveness + define-set detection (including pointer analysis).
    pub detect: Duration,
    /// Authorship lookup.
    pub authorship: Duration,
    /// Pruning.
    pub prune: Duration,
    /// Ranking.
    pub rank: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.detect + self.authorship + self.prune + self.rank
    }
}

/// The result of one pipeline run, with stage-by-stage accounting.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// All unused definitions found by the detector.
    pub raw_candidates: usize,
    /// Candidates after the cross-scope filter (Table 4's "#Original").
    pub cross_scope_candidates: usize,
    /// Pruning outcome (counts per pattern; Table 4's breakdown).
    pub prune_outcome: PruneOutcome,
    /// Candidates lost to isolated per-candidate failures (each has a
    /// matching entry in `report.failures`).
    pub failed_candidates: usize,
    /// The final ranked findings.
    pub ranked: Vec<Ranked>,
    /// The rendered report.
    pub report: Report,
    /// Stage timings (Table 7).
    pub timings: StageTimings,
    /// The observability session the run recorded into: span trace plus
    /// counter/histogram registry (funnel, fixpoint iterations, DOK scores).
    pub obs: ObsSession,
}

impl Analysis {
    /// Candidates pruned by a given pattern.
    pub fn pruned_by(&self, reason: PruneReason) -> usize {
        self.prune_outcome.count(reason)
    }

    /// Final number of reported findings.
    pub fn detected(&self) -> usize {
        self.ranked.len()
    }
}

/// Runs the full ValueCheck pipeline over a program and its history,
/// recording into the thread's installed [`ObsSession`] (or a fresh
/// detached one when none is installed).
pub fn run(prog: &Program, repo: &Repository, opts: &Options) -> Analysis {
    run_with_obs(prog, repo, opts, ObsSession::current_or_new())
}

/// Runs the full ValueCheck pipeline, recording spans and metrics into
/// `obs`. The session is installed on the current thread for the duration
/// of the run so instrumentation deep in the analysis crates reaches it.
pub fn run_with_obs(
    prog: &Program,
    repo: &Repository,
    opts: &Options,
    obs: ObsSession,
) -> Analysis {
    let _guard = obs.install();
    let run_span = obs.span("pipeline.run", "pipeline");

    let detect_span = obs.span("stage.detect", "pipeline");
    let detect_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_DETECT);
    let outcome = detect_program_hardened(prog, opts.detect, opts.harden);
    detect_mem.finish();
    let detect_time = detect_span.end();

    run_stages(prog, repo, opts, obs, outcome, detect_time, run_span)
}

/// Runs the pipeline with the sentinel executor driving the detection
/// stage: `sconf.jobs` supervised workers, optional journal durability, and
/// `--resume` replay. Everything downstream of detection — and the report
/// bytes — is identical to [`run_with_obs`].
pub fn run_sentinel(
    prog: &Program,
    repo: &Repository,
    opts: &Options,
    sconf: &SentinelConfig,
    obs: ObsSession,
) -> Analysis {
    let _guard = obs.install();
    let run_span = obs.span("pipeline.run", "pipeline");

    let detect_span = obs.span("stage.detect", "pipeline");
    let detect_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_DETECT);
    let outcome = detect_program_sentinel(prog, opts.detect, opts.harden, sconf);
    detect_mem.finish();
    let detect_time = detect_span.end();

    run_stages(prog, repo, opts, obs, outcome, detect_time, run_span)
}

/// A pipeline run against one historical revision: the program built from
/// that revision's snapshot plus the analysis of it. The differential
/// scanner ([`crate::delta`]) runs one of these per side.
#[derive(Clone, Debug)]
pub struct RevisionAnalysis {
    /// The analysed commit.
    pub commit: vc_vcs::CommitId,
    /// The program built from the commit's snapshot (sources sorted by
    /// path, so unit order — and report bytes — are revision-determined).
    pub prog: Program,
    /// The pipeline result.
    pub analysis: Analysis,
}

/// Runs the sentinel pipeline against the snapshot at `commit`: the program
/// is rebuilt from that revision's tree and authorship/blame run against the
/// history truncated at the commit, exactly as a checkout at that point
/// would have seen it.
pub fn run_at_commit(
    repo: &Repository,
    commit: vc_vcs::CommitId,
    defines: &[String],
    opts: &Options,
    sconf: &SentinelConfig,
    obs: ObsSession,
) -> Result<RevisionAnalysis, vc_ir::program::BuildError> {
    let tree = repo.snapshot_at(commit);
    let mut sources: Vec<(&str, &str)> =
        tree.iter().map(|(p, c)| (p.as_str(), c.as_str())).collect();
    sources.sort_by_key(|(p, _)| p.to_string());
    let prog = Program::build(&sources, defines)?;
    let repo_at = repo.checkout(commit);
    let analysis = run_sentinel(&prog, &repo_at, opts, sconf, obs);
    Ok(RevisionAnalysis {
        commit,
        prog,
        analysis,
    })
}

/// Everything downstream of detection: authorship, cross-scope filtering,
/// pruning, ranking, report assembly, and the funnel accounting. Shared by
/// the sequential and sentinel front halves — and by the serve warm path —
/// so all produce identical output for identical detection outcomes.
pub(crate) fn run_stages(
    prog: &Program,
    repo: &Repository,
    opts: &Options,
    obs: ObsSession,
    outcome: crate::detect::DetectOutcome,
    detect_time: Duration,
    run_span: vc_obs::Span,
) -> Analysis {
    let candidates = outcome.candidates;
    let mut summaries = outcome.summaries;
    let mut failures = outcome.failures;
    let interner = SigInterner::new(prog);
    let raw_candidates = candidates.len();

    let authorship_span = obs.span("stage.authorship", "pipeline");
    let authorship_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_AUTHORSHIP);
    let ctx = AuthorshipCtx::new(prog, repo);
    // Authorship is isolated per candidate: one poisoned blame lookup costs
    // that candidate (recorded under `funnel.failed`), not the run.
    let mut attributed: Vec<Attributed> = Vec::with_capacity(candidates.len());
    let mut failed_candidates = 0usize;
    for cand in &candidates {
        let lookup = harden::isolated(opts.harden.isolate, || {
            harden::failpoint(FailStage::Authorship, &cand.func_name);
            ctx.attribute(cand)
        });
        match lookup {
            Ok(a) => attributed.push(a),
            Err(message) => {
                failed_candidates += 1;
                vc_obs::counter_inc(vc_obs::names::HARDEN_POISONED_AUTHORSHIP);
                failures.push(FailureRecord {
                    stage: FailStage::Authorship,
                    file: prog.source.name(cand.span.file).to_string(),
                    function: Some(cand.func_name.clone()),
                    message,
                });
            }
        }
    }
    let filtered: Vec<Attributed> = if opts.cross_scope_only {
        attributed.into_iter().filter(|a| a.cross_scope).collect()
    } else {
        attributed
    };
    let cross_scope_candidates = filtered.len();
    authorship_mem.finish();
    let authorship_time = authorship_span.end();

    let prune_span = obs.span("stage.prune", "pipeline");
    let prune_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_PRUNE);
    // Peer statistics consume the summaries detection already built;
    // redundant-summary elimination skips every function that cannot
    // answer a peer question the surviving candidates ask.
    let scope = PeerScope::from_items(&interner, &filtered);
    let peers = PeerStats::compute_with(prog, interner, &mut summaries, Some(&scope));
    // Pruning degrades whole-stage: a panic keeps every candidate (reports
    // may contain extra false positives, but nothing is lost).
    let prune_outcome = match harden::isolated(opts.harden.isolate, {
        let filtered = filtered.clone();
        let peers = &peers;
        let summaries = &summaries;
        move || {
            harden::failpoint(FailStage::Prune, "<program>");
            prune(prog, &opts.prune, peers, summaries, filtered)
        }
    }) {
        Ok(outcome) => outcome,
        Err(message) => {
            vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_PRUNE);
            failures.push(FailureRecord {
                stage: FailStage::Prune,
                file: "<program>".to_string(),
                function: None,
                message,
            });
            PruneOutcome {
                kept: filtered,
                pruned: Vec::new(),
            }
        }
    };
    prune_mem.finish();
    let prune_time = prune_span.end();

    let rank_span = obs.span("stage.rank", "pipeline");
    let rank_mem = vc_obs::MemScope::enter(vc_obs::alloc::SCOPE_RANK);
    // Ranking degrades whole-stage: a panic falls back to the unranked
    // (detection) order with no familiarity scores.
    let ranked = match harden::isolated(opts.harden.isolate, {
        let kept = prune_outcome.kept.clone();
        move || {
            harden::failpoint(FailStage::Rank, "<program>");
            rank(prog, repo, &opts.rank, kept)
        }
    }) {
        Ok(ranked) => ranked,
        Err(message) => {
            vc_obs::counter_inc(vc_obs::names::HARDEN_DEGRADED_RANK);
            failures.push(FailureRecord {
                stage: FailStage::Rank,
                file: "<program>".to_string(),
                function: None,
                message,
            });
            prune_outcome
                .kept
                .iter()
                .map(|a| Ranked {
                    item: a.clone(),
                    familiarity: None,
                    author: None,
                })
                .collect()
        }
    };
    let mut report = Report::from_ranked(prog, repo, &ranked);
    report.failures = failures;
    rank_mem.finish();
    let rank_time = rank_span.end();

    // Candidate funnel (Table 4). Recorded here — not inside prune()/rank()
    // — so direct calls to those stages (incremental mode, ablations) don't
    // double-count. Balance invariant (checked by the fault harness):
    // raw = (raw - cross_scope - failed) + failed + pruned + reported.
    obs.registry
        .add(vc_obs::names::FUNNEL_RAW, raw_candidates as u64);
    obs.registry.add(
        vc_obs::names::FUNNEL_CROSS_SCOPE,
        cross_scope_candidates as u64,
    );
    obs.registry
        .add(vc_obs::names::FUNNEL_FAILED, failed_candidates as u64);
    for reason in PruneReason::ALL {
        obs.registry.add(
            &vc_obs::names::funnel_pruned(reason.label()),
            prune_outcome.count(reason) as u64,
        );
    }
    obs.registry
        .add(vc_obs::names::FUNNEL_REPORTED, ranked.len() as u64);

    run_span.end();
    Analysis {
        raw_candidates,
        cross_scope_candidates,
        prune_outcome,
        failed_candidates,
        ranked,
        report,
        timings: StageTimings {
            detect: detect_time,
            authorship: authorship_time,
            prune: prune_time,
            rank: rank_time,
        },
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_vcs::FileWrite;

    /// The Figure 1a + Figure 8 programs with a two-author history.
    fn two_author_setup() -> (Program, Repository) {
        let src = "int next_attr(int *bm);\n\
                   int get_permset(void);\n\
                   int calc_mask(void);\n\
                   int conv(int *bm) {\n\
                   int attr = next_attr(bm);\n\
                   for (attr = next_attr(bm); attr != -1; attr = next_attr(bm)) { use(attr); }\n\
                   return 0;\n\
                   }\n\
                   void acl(void) {\n\
                   int ret = get_permset();\n\
                   ret = calc_mask();\n\
                   if (ret) { handle(); }\n\
                   }\n";
        let prog = Program::build(&[("nfs.c", src)], &[]).unwrap();
        let mut repo = Repository::new();
        let author1 = repo.add_author("author1");
        let author2 = repo.add_author("author2");
        repo.commit(
            author1,
            1_000,
            "original implementation",
            vec![FileWrite {
                path: "nfs.c".into(),
                content: src.to_string(),
            }],
        );
        // author2 rewrites the overwriting lines (6 and 11).
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        lines[5] = format!("{} ", lines[5]);
        lines[10] = format!("{} ", lines[10]);
        repo.commit(
            author2,
            2_000,
            "rework loop and mask computation",
            vec![FileWrite {
                path: "nfs.c".into(),
                content: lines.join("\n") + "\n",
            }],
        );
        (prog, repo)
    }

    #[test]
    fn paper_pipeline_reports_cross_scope_bugs() {
        let (prog, repo) = two_author_setup();
        let analysis = run(&prog, &repo, &Options::paper());
        let vars: Vec<&str> = analysis
            .report
            .rows
            .iter()
            .map(|r| r.variable.as_str())
            .collect();
        assert!(vars.contains(&"attr"), "vars: {vars:?}");
        assert!(vars.contains(&"ret"), "vars: {vars:?}");
        assert!(analysis.report.rows.iter().all(|r| r.cross_scope));
    }

    #[test]
    fn single_author_history_reports_nothing_cross_scope() {
        let src = "void f(void) { int x = 1; x = 2; use(x); }";
        let prog = Program::build(&[("a.c", src)], &[]).unwrap();
        let mut repo = Repository::new();
        let a = repo.add_author("solo");
        repo.commit(
            a,
            1,
            "init",
            vec![FileWrite {
                path: "a.c".into(),
                content: src.into(),
            }],
        );
        let analysis = run(&prog, &repo, &Options::paper());
        assert_eq!(analysis.detected(), 0);
        assert_eq!(analysis.raw_candidates, 1);
    }

    #[test]
    fn without_authorship_ablation_reports_more() {
        let (prog, repo) = two_author_setup();
        let with = run(&prog, &repo, &Options::paper());
        let without = run(
            &prog,
            &repo,
            &Options {
                cross_scope_only: false,
                ..Options::paper()
            },
        );
        assert!(without.detected() >= with.detected());
        assert!(without.cross_scope_candidates >= with.cross_scope_candidates);
    }

    #[test]
    fn stage_timings_are_recorded() {
        let (prog, repo) = two_author_setup();
        let analysis = run(&prog, &repo, &Options::paper());
        assert!(analysis.timings.total() > Duration::ZERO);
    }

    #[test]
    fn run_records_stage_spans_and_funnel() {
        let (prog, repo) = two_author_setup();
        let analysis = run(&prog, &repo, &Options::paper());
        let names: Vec<String> = analysis
            .obs
            .tracer
            .records()
            .into_iter()
            .map(|r| r.name)
            .collect();
        for stage in [
            "stage.detect",
            "stage.authorship",
            "stage.prune",
            "stage.rank",
            "pipeline.run",
        ] {
            assert!(names.contains(&stage.to_string()), "missing span {stage}");
        }
        let reg = &analysis.obs.registry;
        assert_eq!(
            reg.counter(vc_obs::names::FUNNEL_RAW),
            analysis.raw_candidates as u64
        );
        assert_eq!(
            reg.counter(vc_obs::names::FUNNEL_REPORTED),
            analysis.detected() as u64
        );
    }

    #[test]
    fn poisoned_authorship_loses_one_candidate_not_the_run() {
        let (prog, repo) = two_author_setup();
        let clean = run(&prog, &repo, &Options::paper());

        let _g = harden::arm_failpoint(FailStage::Authorship, "acl");
        let analysis = run(&prog, &repo, &Options::paper());
        assert_eq!(analysis.failed_candidates, 1);
        assert_eq!(analysis.raw_candidates, clean.raw_candidates);
        assert_eq!(analysis.detected(), clean.detected() - 1);
        let fail = &analysis.report.failures[0];
        assert_eq!(fail.stage, FailStage::Authorship);
        assert_eq!(fail.function.as_deref(), Some("acl"));
        assert!(fail.message.contains("injected fault"));
        assert_eq!(
            analysis.obs.registry.counter(vc_obs::names::FUNNEL_FAILED),
            1
        );
    }

    #[test]
    fn poisoned_prune_stage_degrades_to_keeping_everything() {
        let (prog, repo) = two_author_setup();
        let clean = run(&prog, &repo, &Options::paper());
        let _g = harden::arm_failpoint(FailStage::Prune, "<program>");
        let analysis = run(&prog, &repo, &Options::paper());
        // Nothing pruned: every cross-scope candidate survives to ranking.
        assert_eq!(analysis.prune_outcome.pruned.len(), 0);
        assert_eq!(analysis.detected(), analysis.cross_scope_candidates);
        assert!(analysis.detected() >= clean.detected());
        assert!(analysis
            .report
            .failures
            .iter()
            .any(|f| f.stage == FailStage::Prune));
    }

    #[test]
    fn poisoned_rank_stage_degrades_to_unranked_findings() {
        let (prog, repo) = two_author_setup();
        let clean = run(&prog, &repo, &Options::paper());
        let _g = harden::arm_failpoint(FailStage::Rank, "<program>");
        let analysis = run(&prog, &repo, &Options::paper());
        assert_eq!(analysis.detected(), clean.detected());
        assert!(analysis.ranked.iter().all(|r| r.familiarity.is_none()));
        assert!(analysis
            .report
            .failures
            .iter()
            .any(|f| f.stage == FailStage::Rank));
    }

    #[test]
    fn sentinel_pipeline_matches_sequential_bytes() {
        let (prog, repo) = two_author_setup();
        let seq = run(&prog, &repo, &Options::paper());
        for jobs in [1, 2, 8] {
            let sconf = SentinelConfig {
                jobs,
                ..SentinelConfig::default()
            };
            let par = run_sentinel(
                &prog,
                &repo,
                &Options::paper(),
                &sconf,
                ObsSession::current_or_new(),
            );
            assert_eq!(
                par.report.canonical_bytes(),
                seq.report.canonical_bytes(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn funnel_balances_with_failures() {
        let (prog, repo) = two_author_setup();
        let _g = harden::arm_failpoint(FailStage::Authorship, "conv");
        let analysis = run(&prog, &repo, &Options::paper());
        let reg = &analysis.obs.registry;
        let raw = reg.counter(vc_obs::names::FUNNEL_RAW);
        let cross = reg.counter(vc_obs::names::FUNNEL_CROSS_SCOPE);
        let failed = reg.counter(vc_obs::names::FUNNEL_FAILED);
        let pruned: u64 = PruneReason::ALL
            .iter()
            .map(|r| reg.counter(&vc_obs::names::funnel_pruned(r.label())))
            .sum();
        let reported = reg.counter(vc_obs::names::FUNNEL_REPORTED);
        assert!(failed > 0);
        // filtered-out = (raw - failed) - cross; everything must add up.
        assert_eq!(raw, (raw - failed - cross) + failed + cross);
        assert_eq!(cross, pruned + reported);
    }
}
